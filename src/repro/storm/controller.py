"""Batched mass re-reservation: the storm controller.

When a brownout sheds dozens of holders at once, the naive active-phase
loop runs the full §4 adaptation procedure for every victim on every
monitor sweep — each one re-walking the whole classified offer list
against servers that mostly cannot commit.  The controller replaces
that per-session reflex with a **wave** discipline:

* violations are buffered (the runtime's ``on_violation`` seam) and
  processed together shortly after the sweep, one wave per burst;
* victims are **batched by capability class** — ``(document_id,
  current_offer_id)`` — because sessions playing the same offer of the
  same document have identical downgrade options: the first member's
  walk discovers the class target, and the rest of the batch starts
  there instead of re-discovering it;
* the **downgrade-in-place fast path** hands each member a short
  candidate list (alternates avoiding the browned-out server first,
  plus the current offer so break-before-make can still revert) —
  :meth:`~repro.core.adaptation.AdaptationManager.adapt` does the
  actual transition, journaling included;
* members the fast path cannot place fall back to the full
  renegotiation walk, and sessions that still fail go on **cooldown**
  until the manager's own ``retry_after_s`` hint (jittered) expires —
  not back into the next sweep's wave;
* sessions that lost their resources entirely are retried on the same
  hint schedule until they recover or exhaust the retry budget (they
  keep playing without guarantees either way, so every session still
  reaches a terminal state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.classification import ClassifiedOffer
from ..util.rng import RngLike, make_rng
from ..util.validation import check_at_least, check_fraction, check_positive
from ..session.playout import PlayoutSession, SessionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.monitor import Violation
    from ..session.runtime import SessionRuntime
    from ..telemetry import Telemetry

__all__ = ["StormControllerStats", "StormController"]

_TERMINAL = (SessionState.COMPLETED, SessionState.ABORTED)


@dataclass(slots=True)
class StormControllerStats:
    """Wave ledger, reported by the storm scenario."""

    waves: int = 0
    sessions_processed: int = 0
    inplace_switches: int = 0
    fallback_switches: int = 0
    failed_downgrades: int = 0
    cooldown_skips: int = 0
    lost_retries: int = 0
    lost_recovered: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "waves": self.waves,
            "sessions_processed": self.sessions_processed,
            "inplace_switches": self.inplace_switches,
            "fallback_switches": self.fallback_switches,
            "failed_downgrades": self.failed_downgrades,
            "cooldown_skips": self.cooldown_skips,
            "lost_retries": self.lost_retries,
            "lost_recovered": self.lost_recovered,
        }


class StormController:
    """Turns per-session adaptation reflexes into batched waves.

    Attaching the controller takes over the runtime's violation
    handling (``adaptation_enabled`` is switched off; the sweep only
    marks victims degraded and hands them here).
    """

    def __init__(
        self,
        runtime: "SessionRuntime",
        *,
        wave_delay_s: float = 0.5,
        max_class_candidates: int = 4,
        retry_budget: int = 8,
        jitter: float = 0.2,
        seed: RngLike = 0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if telemetry is None:
            telemetry = runtime.telemetry
        self.runtime = runtime
        self.loop = runtime.loop
        self.telemetry = telemetry
        self.wave_delay_s = check_positive(wave_delay_s, "wave_delay_s")
        self.max_class_candidates = int(
            check_at_least(
                max_class_candidates, 1, "max_class_candidates", integer=True
            )
        )
        self.retry_budget = int(
            check_at_least(retry_budget, 0, "retry_budget", integer=True)
        )
        self.jitter = check_fraction(jitter, "jitter")
        self.stats = StormControllerStats()
        self._rng = make_rng(seed)
        self._pending: "dict[str, None]" = {}  # ordered session-id set
        self._wave_scheduled = False
        self._cooldown_until: "dict[str, float]" = {}
        self._lost_retries_left: "dict[str, int]" = {}
        # Cross-wave class-plan memo: the fast-path candidate list of a
        # capability class depends only on the representative's (stable)
        # classified list, its current offer, and which servers are
        # degraded — so storms that hit the same classes wave after
        # wave rediscover nothing.  Any change in the degraded set
        # invalidates wholesale.
        self._class_plan_memo: "dict[tuple, list[ClassifiedOffer]]" = {}
        self._memo_degraded: "frozenset[str] | None" = None
        # Take over the runtime's violation handling.
        runtime.adaptation_enabled = False
        runtime.on_violation = self.on_violation

    # -- violation intake ----------------------------------------------------------

    def on_violation(self, violation: "Violation") -> None:
        """Buffer one sweep-detected violation into the next wave."""
        self._pending[violation.session_id] = None
        if not self._wave_scheduled:
            self._wave_scheduled = True
            self.loop.after(
                self.wave_delay_s, self._run_wave, label="storm:wave"
            )

    # -- the wave ------------------------------------------------------------------

    def _run_wave(self) -> None:
        self._wave_scheduled = False
        now = self.loop.now
        victims: "list[PlayoutSession]" = []
        for session_id in self._pending:
            session = self.runtime.sessions.get(session_id)
            if session is None or session.state in _TERMINAL:
                continue
            if self._cooldown_until.get(session_id, 0.0) > now:
                self.stats.cooldown_skips += 1
                continue
            victims.append(session)
        self._pending.clear()
        if not victims:
            return
        self.stats.waves += 1
        self.telemetry.count("storm.waves")
        with self.telemetry.span(
            "storm.wave", size=len(victims)
        ) as span:
            batches = self._batch_by_class(victims)
            span.set_attribute("classes", len(batches))
            for key in sorted(batches):
                self._process_batch(batches[key], now)

    @staticmethod
    def _batch_by_class(
        victims: "list[PlayoutSession]",
    ) -> "dict[tuple[str, str], list[PlayoutSession]]":
        batches: "dict[tuple[str, str], list[PlayoutSession]]" = {}
        for session in victims:
            space = session.result.offer_space
            document_id = (
                space.document.document_id if space is not None else "?"
            )
            key = (document_id, session.current_offer_id)
            batches.setdefault(key, []).append(session)
        for batch in batches.values():
            batch.sort(key=lambda s: s.session_id)
        return batches

    def _process_batch(
        self, batch: "list[PlayoutSession]", now: float
    ) -> None:
        self.telemetry.observe(
            "storm.wave.batch_size", float(len(batch))
        )
        candidates = self._class_candidates(batch[0])
        for session in batch:
            self.stats.sessions_processed += 1
            outcome_label = self._downgrade(session, candidates, now)
            self.telemetry.count(
                "storm.downgrades", outcome=outcome_label
            )

    def _class_candidates(
        self, representative: PlayoutSession
    ) -> "list[ClassifiedOffer]":
        """The short fast-path list for one capability class: the best
        alternates that avoid degraded machinery, in classified order.
        The representative's exclusions are per-session, so they are
        filtered later, per member — this list is class-wide."""
        degraded = self._degraded_servers()
        if degraded != self._memo_degraded:
            self._class_plan_memo.clear()
            self._memo_degraded = degraded
        space = representative.result.offer_space
        memo_key = (
            space.document.document_id if space is not None else "?",
            representative.current_offer_id,
            representative.session_id,
        )
        cached = self._class_plan_memo.get(memo_key)
        if cached is not None:
            self.telemetry.count("batch.coalesced", site="storm")
            return cached
        classified = representative.result.ensure_classified()
        current_id = representative.current_offer_id
        healthy: "list[ClassifiedOffer]" = []
        tainted: "list[ClassifiedOffer]" = []
        for candidate in classified:
            if candidate.offer.offer_id == current_id:
                continue
            if candidate.offer.servers_used() & degraded:
                tainted.append(candidate)
            else:
                healthy.append(candidate)
        picked = (healthy + tainted)[: self.max_class_candidates]
        self._class_plan_memo[memo_key] = picked
        return picked

    def _degraded_servers(self) -> "frozenset[str]":
        servers = self.runtime.manager.committer.servers
        return frozenset(
            server_id
            for server_id, server in servers.items()
            if server.is_crashed or server.degradation > 0.0
        )

    def _downgrade(
        self,
        session: PlayoutSession,
        candidates: "list[ClassifiedOffer]",
        now: float,
    ) -> str:
        """Fast path, then full fallback; returns the outcome label."""
        usable = [
            c
            for c in candidates
            if c.offer.offer_id not in session.excluded_offers
        ]
        if session.result.chosen is not None:
            # Keep the current offer in the walk so break-before-make
            # can still revert onto it when no alternate fits.
            usable = usable + [session.result.chosen]
        if usable:
            outcome = session.adapt(
                self.runtime.adaptation, now, candidates=usable
            )
            if outcome.switched:
                self.stats.inplace_switches += 1
                return "in-place"
        # The class target does not fit this member: full walk.
        outcome = session.adapt(self.runtime.adaptation, now)
        if outcome.switched:
            self.stats.fallback_switches += 1
            return "fallback"
        self.stats.failed_downgrades += 1
        self._set_cooldown(session.session_id, now)
        if session.record.resources_lost:
            self._schedule_lost_retry(session, now)
        return "failed"

    # -- hint-driven retries -------------------------------------------------------

    def _set_cooldown(self, session_id: str, now: float) -> None:
        hint = self.runtime.manager.retry_after_hint()
        self._cooldown_until[session_id] = now + self._jittered(hint)

    def _schedule_lost_retry(
        self, session: PlayoutSession, now: float
    ) -> None:
        """A session without resources gets its own retry schedule: the
        sweep only re-buffers *violated* sessions, and a holder with no
        reservations left never shows up in the monitor scan again."""
        left = self._lost_retries_left.setdefault(
            session.session_id, self.retry_budget
        )
        if left <= 0:
            return
        self._lost_retries_left[session.session_id] = left - 1
        self.stats.lost_retries += 1
        hint = self.runtime.manager.retry_after_hint()
        self.loop.after(
            self._jittered(max(hint, 1.0)),
            lambda: self._retry_lost(session),
            label=f"storm:retry:{session.session_id}",
        )

    def _retry_lost(self, session: PlayoutSession) -> None:
        now = self.loop.now
        if (
            session.state in _TERMINAL
            or session.session_id not in self.runtime.sessions
            or not session.record.resources_lost
        ):
            return
        outcome = session.adapt(self.runtime.adaptation, now)
        if not session.record.resources_lost:
            self.stats.lost_recovered += 1
            self._lost_retries_left.pop(session.session_id, None)
            if outcome.switched or outcome.reverted:
                session.clear_degraded(now)
        else:
            self._schedule_lost_retry(session, now)

    def _jittered(self, delay_s: float) -> float:
        if self.jitter <= 0.0:
            return delay_s
        spread = self.jitter * float(self._rng.uniform(-1.0, 1.0))
        return max(delay_s * (1.0 + spread), 0.0)

    def __repr__(self) -> str:
        return (
            f"StormController({self.stats.waves} waves, "
            f"{len(self._pending)} pending)"
        )
