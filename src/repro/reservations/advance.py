"""Advance (future) reservations for the negotiation procedure.

Extends the §4 procedure with the booking semantics of the authors'
companion work [Haf 96]: the user's time profile names a future playout
window; step 5 then *books* capacity on interval ledgers mirroring the
deployment instead of reserving live resources.  At the window's start
the booking is *claimed*: converted into a real commitment through the
ordinary resource committer (the plan is re-validated against the live
system, so an optimistic booking can still fail and trigger
renegotiation).

Ledger capacities: links use their raw capacity; servers use
``min(NIC, disk_transfer_rate × disk_plan_factor)`` — a documented linear
approximation of the nonlinear round-based admission (per-stream seek
overhead is ignored at planning time; the claim step runs the real
admission).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from ..client.machine import ClientMachine
from ..cmfs.server import MediaServer
from ..core.classification import ClassifiedOffer, classify_space
from ..core.enumeration import OfferSpace, build_offer_space
from ..core.negotiation import NegotiationResult, QoSManager
from ..core.offers import SystemOffer, derive_user_offer
from ..core.profiles import UserProfile
from ..core.status import NegotiationStatus
from ..network.routing import find_route
from ..network.topology import Topology
from ..util.errors import CapacityError, NoRouteError, ReservationError
from ..util.validation import check_positive
from .interval import IntervalBooking, IntervalLedger

__all__ = ["AdvanceBookingPlan", "AdvancePlanner", "AdvanceNegotiator"]

DISK_PLAN_FACTOR = 0.8
"""Planning share of the raw disk transfer rate (leaves headroom for
the per-stream positioning overhead the ledger cannot see)."""


@dataclass(slots=True)
class AdvanceBookingPlan:
    """A committed future reservation: offer + bookings + window."""

    plan_id: str
    document_id: str
    offer: SystemOffer
    classified: ClassifiedOffer
    start_s: float
    end_s: float
    bookings: tuple[IntervalBooking, ...]
    ledgers: tuple[IntervalLedger, ...]
    status: NegotiationStatus
    user_offer: object
    claimed: bool = False
    cancelled: bool = False

    @property
    def window(self) -> tuple[float, float]:
        return (self.start_s, self.end_s)


class AdvancePlanner:
    """Interval ledgers mirroring a deployment's links and servers."""

    def __init__(
        self,
        topology: Topology,
        servers: Mapping[str, MediaServer],
        *,
        disk_plan_factor: float = DISK_PLAN_FACTOR,
    ) -> None:
        check_positive(disk_plan_factor, "disk_plan_factor")
        self._topology = topology
        self._link_ledgers = {
            link.link_id: IntervalLedger(link.link_id, link.capacity_bps)
            for link in topology.links()
        }
        self._server_ledgers = {
            server_id: IntervalLedger(
                server_id,
                min(
                    server.admission.nic_bps,
                    server.disk.transfer_rate_bps * disk_plan_factor,
                ),
            )
            for server_id, server in servers.items()
        }

    def link_ledger(self, link_id: str) -> IntervalLedger:
        try:
            return self._link_ledgers[link_id]
        except KeyError:
            raise ReservationError(f"no ledger for link {link_id!r}") from None

    def server_ledger(self, server_id: str) -> IntervalLedger:
        try:
            return self._server_ledgers[server_id]
        except KeyError:
            raise ReservationError(
                f"no ledger for server {server_id!r}"
            ) from None

    def ledgers(self) -> tuple[IntervalLedger, ...]:
        return tuple(self._link_ledgers.values()) + tuple(
            self._server_ledgers.values()
        )

    def expire_before(self, instant_s: float) -> int:
        return sum(l.expire_before(instant_s) for l in self.ledgers())

    # -- planning one offer ---------------------------------------------------------

    def try_book_offer(
        self,
        offer: SystemOffer,
        space: OfferSpace,
        client_access_point: str,
        server_access_points: Mapping[str, str],
        start_s: float,
        end_s: float,
        *,
        holder: str,
    ) -> "tuple[tuple[IntervalBooking, ...], tuple[IntervalLedger, ...]] | None":
        """Book every resource the offer needs over the window;
        all-or-nothing with rollback, mirroring the live committer."""
        taken: list[tuple[IntervalLedger, IntervalBooking]] = []
        try:
            for monomedia_id, variant in offer.variants.items():
                spec = space.spec_for(variant)
                rate = spec.max_bit_rate
                server_ledger = self.server_ledger(variant.server_id)
                taken.append(
                    (
                        server_ledger,
                        server_ledger.book(start_s, end_s, rate, holder),
                    )
                )
                source = server_access_points[variant.server_id]
                try:
                    route = find_route(
                        self._topology, source, client_access_point, 0.0
                    )
                except NoRouteError:
                    raise CapacityError(
                        f"no path {source!r} -> {client_access_point!r}"
                    ) from None
                if not route.qos.satisfies(spec.qos_bound):
                    raise CapacityError("route QoS bound violated")
                for link in route.links:
                    ledger = self.link_ledger(link.link_id)
                    taken.append(
                        (ledger, ledger.book(start_s, end_s, rate, holder))
                    )
        except CapacityError:
            for ledger, booking in taken:
                ledger.release(booking)
            return None
        ledgers = tuple(ledger for ledger, _ in taken)
        bookings = tuple(booking for _, booking in taken)
        return bookings, ledgers


class AdvanceNegotiator:
    """The §4 procedure with step 5 replaced by future bookings.

    Steps 1–4 are delegated to the live :class:`QoSManager` (they are
    time-independent); step 5 walks the classified offers booking
    ledger windows; step 6's confirmation is the later :meth:`claim`.
    """

    def __init__(self, manager: QoSManager, planner: AdvancePlanner | None = None) -> None:
        self.manager = manager
        self.planner = planner or AdvancePlanner(
            manager.committer.transport.topology,
            manager.committer.servers,
        )
        self._plan_ids = itertools.count(1)

    def negotiate_advance(
        self,
        document,
        profile: UserProfile,
        client: ClientMachine,
        *,
        start_s: float,
        duration_s: "float | None" = None,
    ) -> "AdvanceBookingPlan | NegotiationResult":
        """Negotiate a booking for ``[start_s, start_s + duration)``.

        Returns an :class:`AdvanceBookingPlan` when a bookable offer
        exists, else the failing :class:`NegotiationResult` (local /
        compatibility failures and FAILEDTRYLATER carry over verbatim).
        """
        manager = self.manager
        if isinstance(document, str):
            document = manager.database.get_document(document)
        if duration_s is None:
            duration_s = document.duration_s
        check_positive(duration_s, "duration_s")
        end_s = start_s + duration_s

        violations, local_best = manager._static_local_negotiation(
            document, profile, client
        )
        if violations:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITH_LOCAL_OFFER,
                user_offer=local_best,
                local_violations=violations,
            )
        space = build_offer_space(
            document, client, manager.cost_model,
            mapper=manager.mapper, guarantee=manager.guarantee,
        )
        if space.is_empty:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_WITHOUT_OFFER,
                offer_space=space,
            )
        classified = classify_space(
            space, profile, manager._importance_of(profile)
        )
        server_aps = {
            server_id: server.access_point
            for server_id, server in manager.committer.servers.items()
        }

        holder = f"advance-{next(self._plan_ids)}"
        satisfying = [c for c in classified if c.satisfies_user]
        fallback = [c for c in classified if not c.satisfies_user]
        for candidate in itertools.chain(satisfying, fallback):
            booked = self.planner.try_book_offer(
                candidate.offer, space, client.access_point, server_aps,
                start_s, end_s, holder=holder,
            )
            if booked is None:
                continue
            bookings, ledgers = booked
            status = (
                NegotiationStatus.SUCCEEDED
                if candidate.satisfies_user
                else NegotiationStatus.FAILED_WITH_OFFER
            )
            return AdvanceBookingPlan(
                plan_id=holder,
                document_id=document.document_id,
                offer=candidate.offer,
                classified=candidate,
                start_s=start_s,
                end_s=end_s,
                bookings=bookings,
                ledgers=ledgers,
                status=status,
                user_offer=derive_user_offer(
                    candidate.offer, profile.desired.time
                ),
            )
        return NegotiationResult(
            status=NegotiationStatus.FAILED_TRY_LATER,
            classified=classified,
            offer_space=space,
        )

    # -- claiming / cancelling ---------------------------------------------------------

    def claim(
        self,
        plan: AdvanceBookingPlan,
        profile: UserProfile,
        client: ClientMachine,
    ) -> NegotiationResult:
        """Convert the booking into a live commitment at playout time.

        The live committer re-validates against actual admission and
        link state; if the linear plan was optimistic the claim fails
        with FAILEDTRYLATER and the bookings are released either way.
        """
        if plan.claimed or plan.cancelled:
            raise ReservationError(
                f"plan {plan.plan_id} already "
                f"{'claimed' if plan.claimed else 'cancelled'}"
            )
        document = self.manager.database.get_document(plan.document_id)
        space = build_offer_space(
            document, client, self.manager.cost_model,
            mapper=self.manager.mapper, guarantee=self.manager.guarantee,
        )
        self._release(plan)
        plan.claimed = True
        bundle = self.manager.committer.try_commit(
            plan.offer, space, client.access_point,
            guarantee=self.manager.guarantee, holder=plan.plan_id,
        )
        if bundle is None:
            return NegotiationResult(
                status=NegotiationStatus.FAILED_TRY_LATER
            )
        from ..core.commitment import Commitment

        commitment = Commitment(
            bundle, self.manager.committer,
            reserved_at=self.manager.clock.now(),
            choice_period_s=profile.choice_period_s,
        )
        return NegotiationResult(
            status=plan.status,
            user_offer=plan.user_offer,
            chosen=plan.classified,
            commitment=commitment,
            offer_space=space,
            attempts=1,
        )

    def cancel(self, plan: AdvanceBookingPlan) -> None:
        if plan.claimed or plan.cancelled:
            return
        self._release(plan)
        plan.cancelled = True

    @staticmethod
    def _release(plan: AdvanceBookingPlan) -> None:
        for ledger, booking in zip(plan.ledgers, plan.bookings):
            try:
                ledger.release(booking)
            except ReservationError:
                pass
