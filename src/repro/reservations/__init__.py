"""Future reservations (extension after [Haf 96]): interval ledgers and
the advance-booking negotiation layer."""

from .advance import (
    DISK_PLAN_FACTOR,
    AdvanceBookingPlan,
    AdvanceNegotiator,
    AdvancePlanner,
)
from .interval import IntervalBooking, IntervalLedger

__all__ = [
    "DISK_PLAN_FACTOR",
    "AdvanceBookingPlan",
    "AdvanceNegotiator",
    "AdvancePlanner",
    "IntervalBooking",
    "IntervalLedger",
]
