"""Interval ledgers: capacity bookings over future time windows.

The paper's companion work [Haf 96] ("Quality of Service Negotiation
with Future Reservations") extends the negotiation to bookings for a
*future* playout window — the time profile of §3 already lets the user
state a delivery time.  The primitive that enables it is an interval
ledger: a resource with fixed capacity whose bookings occupy time
windows, with feasibility defined by the peak of overlapping demand.

The ledger is exact (sweep-line over booking endpoints), not an
approximation: ``available(start, end)`` returns the capacity remaining
at the *most loaded instant* of the window.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..util.errors import CapacityError, ReservationError
from ..util.validation import check_positive

__all__ = ["IntervalBooking", "IntervalLedger"]

_booking_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class IntervalBooking:
    """One hold on a resource over ``[start_s, end_s)``."""

    booking_id: int
    start_s: float
    end_s: float
    amount: float
    holder: str

    def overlaps(self, start_s: float, end_s: float) -> bool:
        return self.start_s < end_s and start_s < self.end_s

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class IntervalLedger:
    """Bookable capacity over time."""

    def __init__(self, resource_id: str, capacity: float) -> None:
        self.resource_id = resource_id
        self.capacity = check_positive(capacity, "capacity")
        self._bookings: dict[int, IntervalBooking] = {}

    # -- queries ------------------------------------------------------------------

    def bookings(self) -> tuple[IntervalBooking, ...]:
        return tuple(self._bookings.values())

    def __len__(self) -> int:
        return len(self._bookings)

    def peak_usage(self, start_s: float, end_s: float) -> float:
        """Maximum aggregate booked amount over any instant of the
        window (sweep over the overlapping bookings' endpoints)."""
        if end_s <= start_s:
            raise ReservationError(
                f"window must be non-empty, got [{start_s}, {end_s})"
            )
        overlapping = [
            b for b in self._bookings.values() if b.overlaps(start_s, end_s)
        ]
        if not overlapping:
            return 0.0
        events: list[tuple[float, float]] = []
        for booking in overlapping:
            events.append((max(booking.start_s, start_s), booking.amount))
            events.append((min(booking.end_s, end_s), -booking.amount))
        # Half-open intervals: at a shared endpoint the ending booking
        # releases before the starting one acquires, so negative deltas
        # sort first.
        events.sort(key=lambda item: (item[0], item[1]))
        peak = 0.0
        level = 0.0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak

    def available(self, start_s: float, end_s: float) -> float:
        """Capacity still bookable over the whole window."""
        return max(self.capacity - self.peak_usage(start_s, end_s), 0.0)

    def can_book(self, start_s: float, end_s: float, amount: float) -> bool:
        return amount <= self.available(start_s, end_s) + 1e-9

    def usage_at(self, instant_s: float) -> float:
        """Aggregate booked amount at one instant."""
        return sum(
            b.amount
            for b in self._bookings.values()
            if b.start_s <= instant_s < b.end_s
        )

    # -- mutation -------------------------------------------------------------------

    def book(
        self, start_s: float, end_s: float, amount: float, holder: str
    ) -> IntervalBooking:
        check_positive(amount, "amount")
        if end_s <= start_s:
            raise ReservationError(
                f"booking window must be non-empty, got [{start_s}, {end_s})"
            )
        if not self.can_book(start_s, end_s, amount):
            raise CapacityError(
                f"{self.resource_id}: {amount:.0f} over [{start_s:g}, "
                f"{end_s:g}) exceeds available "
                f"{self.available(start_s, end_s):.0f}"
            )
        booking = IntervalBooking(
            booking_id=next(_booking_ids),
            start_s=float(start_s),
            end_s=float(end_s),
            amount=float(amount),
            holder=holder,
        )
        self._bookings[booking.booking_id] = booking
        return booking

    def release(self, booking: "IntervalBooking | int") -> None:
        key = (
            booking.booking_id
            if isinstance(booking, IntervalBooking)
            else int(booking)
        )
        if self._bookings.pop(key, None) is None:
            raise ReservationError(
                f"{self.resource_id}: no booking {key}"
            )

    def expire_before(self, instant_s: float) -> int:
        """Drop bookings entirely in the past; returns the count."""
        stale = [
            key for key, b in self._bookings.items() if b.end_s <= instant_s
        ]
        for key in stale:
            del self._bookings[key]
        return len(stale)

    def __repr__(self) -> str:
        return (
            f"IntervalLedger({self.resource_id}, capacity={self.capacity:g}, "
            f"{len(self._bookings)} bookings)"
        )
