"""JSON persistence for the metadata database.

The record layer is already plain dicts/strings/numbers, so persistence
is a thin, versioned JSON envelope.  A version field guards against
loading snapshots written by incompatible schema revisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..util.errors import PersistenceError
from .database import MetadataDatabase

__all__ = ["SCHEMA_VERSION", "save_database", "load_database", "dumps", "loads"]

SCHEMA_VERSION = 1


def dumps(db: MetadataDatabase, *, indent: "int | None" = 2) -> str:
    """Serialize ``db`` to a JSON string."""
    envelope = {"schema_version": SCHEMA_VERSION, "relations": db.dump_records()}
    return json.dumps(envelope, indent=indent, sort_keys=True)


def loads(text: str) -> MetadataDatabase:
    """Deserialize a database from :func:`dumps` output."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from None
    if not isinstance(envelope, dict):
        raise PersistenceError("snapshot root must be a JSON object")
    version = envelope.get("schema_version")
    if version != SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    try:
        return MetadataDatabase.from_records(envelope["relations"])
    except KeyError as exc:
        raise PersistenceError(f"snapshot missing field: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed snapshot: {exc}") from None


def save_database(db: MetadataDatabase, path: Union[str, Path]) -> Path:
    """Write ``db`` to ``path`` as JSON; returns the path written."""
    path = Path(path)
    path.write_text(dumps(db), encoding="utf-8")
    return path


def load_database(path: Union[str, Path]) -> MetadataDatabase:
    """Read a database previously written by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no snapshot at {path}")
    return loads(path.read_text(encoding="utf-8"))
