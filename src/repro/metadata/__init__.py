"""Metadata database substrate (stands in for the U. Alberta MM DBMS).

Holds documents, monomedia and variants as flat records with the
indexes the negotiation procedure queries, plus JSON persistence.
"""

from .database import MetadataDatabase
from .persistence import (
    SCHEMA_VERSION,
    dumps,
    load_database,
    loads,
    save_database,
)
from .schema import (
    DocumentRecord,
    MonomediaRecord,
    VariantRecord,
    qos_from_record,
    qos_to_record,
    sync_from_record,
    sync_to_record,
)

__all__ = [name for name in dir() if not name.startswith("_")]
