"""Relational-style schema records for the metadata database.

The U. Alberta MM database [Vit 95] stored the logical design of the
news-on-demand data: documents, their monomedia, the physical variants
with format/size/location, and the block-length statistics the QoS
mapping (§6) reads.  We mirror that as flat, serializable records keyed
by ids — the object model in :mod:`repro.documents` is assembled *from*
these records, and decomposed back *into* them on insert.

Keeping a record layer distinct from the object model buys two things:
JSON persistence without custom picklers, and queries over variants
without walking document trees.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..documents.media import Codecs, ColorMode, Language, Medium
from ..documents.monomedia import BlockStats, Variant
from ..documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
)
from ..util.errors import PersistenceError

__all__ = [
    "DocumentRecord",
    "MonomediaRecord",
    "VariantRecord",
    "qos_to_record",
    "qos_from_record",
    "sync_to_record",
    "sync_from_record",
]


@dataclass(frozen=True, slots=True)
class DocumentRecord:
    """One row of the document relation."""

    document_id: str
    title: str
    monomedia_ids: tuple[str, ...]
    copyright_cents: int
    sync_blob: dict  # opaque, serialized sync constraints


@dataclass(frozen=True, slots=True)
class MonomediaRecord:
    """One row of the monomedia relation."""

    monomedia_id: str
    document_id: str
    medium: str
    title: str
    duration_s: float


@dataclass(frozen=True, slots=True)
class VariantRecord:
    """One row of the variant relation — the §2 static parameters plus
    the §6 block statistics."""

    variant_id: str
    monomedia_id: str
    codec: str
    qos: dict
    size_bits: float
    max_block_bits: float
    avg_block_bits: float
    blocks_per_second: float
    server_id: str
    duration_s: float

    @classmethod
    def from_variant(cls, variant: Variant) -> "VariantRecord":
        return cls(
            variant_id=variant.variant_id,
            monomedia_id=variant.monomedia_id,
            codec=variant.codec.name,
            qos=qos_to_record(variant.qos),
            size_bits=variant.size_bits,
            max_block_bits=variant.block_stats.max_block_bits,
            avg_block_bits=variant.block_stats.avg_block_bits,
            blocks_per_second=variant.block_stats.blocks_per_second,
            server_id=variant.server_id,
            duration_s=variant.duration_s,
        )

    def to_variant(self) -> Variant:
        return Variant(
            variant_id=self.variant_id,
            monomedia_id=self.monomedia_id,
            codec=Codecs.by_name(self.codec),
            qos=qos_from_record(self.qos),
            size_bits=self.size_bits,
            block_stats=BlockStats(
                max_block_bits=self.max_block_bits,
                avg_block_bits=self.avg_block_bits,
                blocks_per_second=self.blocks_per_second,
            ),
            server_id=self.server_id,
            duration_s=self.duration_s,
        )

    def as_dict(self) -> dict:
        return asdict(self)


def qos_to_record(qos: MediaQoS) -> dict:
    """Serialize a QoS point to a plain dict with a medium tag."""
    record: dict = {"medium": qos.medium.value}
    for name, value in qos.qos_items():
        if isinstance(value, (ColorMode,)):
            record[name] = value.name.lower()
        elif isinstance(value, Language):
            record[name] = value.value
        elif hasattr(value, "name"):  # AudioGrade
            record[name] = value.name.lower()
        else:
            record[name] = value
    return record


def qos_from_record(record: dict) -> MediaQoS:
    """Rebuild a QoS point from its serialized form."""
    data = dict(record)
    try:
        medium = Medium.parse(data.pop("medium"))
    except KeyError:
        raise PersistenceError(f"qos record missing 'medium': {record!r}") from None
    classes = {
        Medium.VIDEO: VideoQoS,
        Medium.AUDIO: AudioQoS,
        Medium.IMAGE: ImageQoS,
        Medium.TEXT: TextQoS,
        Medium.GRAPHIC: GraphicQoS,
    }
    try:
        return classes[medium](**data)
    except TypeError as exc:
        raise PersistenceError(
            f"malformed qos record for {medium.value}: {record!r} ({exc})"
        ) from None


def sync_to_record(sync) -> dict:
    """Serialize :class:`~repro.documents.synchronization.SyncConstraints`."""
    from ..documents.synchronization import SyncConstraints  # local: avoid cycle

    assert isinstance(sync, SyncConstraints)
    record: dict = {
        "temporal": [
            {
                "kind": rel.kind.value,
                "first": rel.first,
                "second": rel.second,
                "offset_s": rel.offset_s,
            }
            for rel in sync.temporal
        ]
    }
    if sync.spatial is not None:
        record["spatial"] = {
            name: {
                "x": region.x,
                "y": region.y,
                "width": region.width,
                "height": region.height,
            }
            for name, region in sync.spatial.regions.items()
        }
    return record


def sync_from_record(record: dict):
    """Rebuild sync constraints from their serialized form."""
    from ..documents.synchronization import (
        ScreenRegion,
        SpatialLayout,
        SyncConstraints,
        TemporalRelation,
        TemporalRelationKind,
    )

    temporal = tuple(
        TemporalRelation(
            kind=TemporalRelationKind(item["kind"]),
            first=item["first"],
            second=item["second"],
            offset_s=item.get("offset_s", 0.0),
        )
        for item in record.get("temporal", ())
    )
    spatial = None
    if "spatial" in record:
        spatial = SpatialLayout(
            {
                name: ScreenRegion(**region)
                for name, region in record["spatial"].items()
            }
        )
    return SyncConstraints(temporal=temporal, spatial=spatial)
