"""In-process metadata database (substitute for the U. Alberta MM DBMS).

Stores the three relations of :mod:`repro.metadata.schema` with the
indexes the negotiation procedure needs:

* *by document* — reassemble a full :class:`Document` for playout;
* *by monomedia* — the variant lists that seed offer enumeration
  (§4 step 2 operates on "the variants, related to the document
  selected");
* *by server* — which variants a media server hosts (used by placement
  and by adaptation when a server degrades).

The store is synchronous and in-process: the paper's negotiation reads
metadata once per request, so a remote DBMS adds latency but no
behavioural difference.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..documents.catalog import DocumentCatalog
from ..documents.document import Document
from ..documents.media import Medium
from ..documents.monomedia import Monomedia, Variant
from ..util.errors import DuplicateKeyError, NotFoundError
from ..util.units import Money
from .schema import (
    DocumentRecord,
    MonomediaRecord,
    VariantRecord,
    sync_from_record,
    sync_to_record,
)

__all__ = ["MetadataDatabase"]


class MetadataDatabase:
    """The metadata store backing the QoS manager and the servers."""

    def __init__(self) -> None:
        self._documents: dict[str, DocumentRecord] = {}
        self._monomedia: dict[str, MonomediaRecord] = {}
        self._variants: dict[str, VariantRecord] = {}
        self._variants_by_monomedia: dict[str, list[str]] = {}
        self._variants_by_server: dict[str, list[str]] = {}
        # Monotonic per-document mutation counters.  Cache layers key
        # entries by (document_id, version) so any catalog change makes
        # stale entries unreachable; the counter survives removal so a
        # re-inserted document id never reuses an old version.
        self._versions: dict[str, int] = {}

    def version_of(self, document_id: str) -> int:
        """The document's current mutation counter (0 when unknown)."""
        return self._versions.get(document_id, 0)

    def _bump_version(self, document_id: str) -> None:
        self._versions[document_id] = self._versions.get(document_id, 0) + 1

    # -- ingestion -----------------------------------------------------------

    def insert_document(self, document: Document) -> None:
        """Decompose ``document`` into records.  Atomic: on any key
        collision nothing is inserted."""
        if document.document_id in self._documents:
            raise DuplicateKeyError(
                f"document {document.document_id!r} already stored"
            )
        for component in document.components:
            if component.monomedia_id in self._monomedia:
                raise DuplicateKeyError(
                    f"monomedia {component.monomedia_id!r} already stored"
                )
            for variant in component.variants:
                if variant.variant_id in self._variants:
                    raise DuplicateKeyError(
                        f"variant {variant.variant_id!r} already stored"
                    )

        self._documents[document.document_id] = DocumentRecord(
            document_id=document.document_id,
            title=document.title,
            monomedia_ids=document.monomedia_ids,
            copyright_cents=document.copyright_cost.cents,
            sync_blob=sync_to_record(document.sync),
        )
        for component in document.components:
            self._monomedia[component.monomedia_id] = MonomediaRecord(
                monomedia_id=component.monomedia_id,
                document_id=document.document_id,
                medium=component.medium.value,
                title=component.title,
                duration_s=component.duration_s,
            )
            for variant in component.variants:
                self._index_variant(VariantRecord.from_variant(variant))
        self._bump_version(document.document_id)

    def insert_catalog(self, catalog: "DocumentCatalog | Iterable[Document]") -> None:
        for document in catalog:
            self.insert_document(document)

    def add_variant(self, variant: Variant) -> None:
        """Register a new physical variant (e.g. a replica created after
        ingest).  The owning monomedia must exist."""
        if variant.monomedia_id not in self._monomedia:
            raise NotFoundError(f"no monomedia {variant.monomedia_id!r}")
        if variant.variant_id in self._variants:
            raise DuplicateKeyError(
                f"variant {variant.variant_id!r} already stored"
            )
        self._index_variant(VariantRecord.from_variant(variant))
        self._bump_version(self._monomedia[variant.monomedia_id].document_id)

    def remove_variant(self, variant_id: str) -> None:
        record = self._variants.pop(variant_id, None)
        if record is None:
            raise NotFoundError(f"no variant {variant_id!r}")
        self._variants_by_monomedia[record.monomedia_id].remove(variant_id)
        self._variants_by_server[record.server_id].remove(variant_id)
        owner = self._monomedia.get(record.monomedia_id)
        if owner is not None:
            self._bump_version(owner.document_id)

    def remove_document(self, document_id: str) -> None:
        record = self._documents.pop(document_id, None)
        if record is None:
            raise NotFoundError(f"no document {document_id!r}")
        self._bump_version(document_id)
        for monomedia_id in record.monomedia_ids:
            self._monomedia.pop(monomedia_id, None)
            for variant_id in self._variants_by_monomedia.pop(monomedia_id, []):
                variant = self._variants.pop(variant_id)
                self._variants_by_server[variant.server_id].remove(variant_id)

    def _index_variant(self, record: VariantRecord) -> None:
        self._variants[record.variant_id] = record
        self._variants_by_monomedia.setdefault(
            record.monomedia_id, []
        ).append(record.variant_id)
        self._variants_by_server.setdefault(
            record.server_id, []
        ).append(record.variant_id)

    # -- reassembly -----------------------------------------------------------

    def get_document(self, document_id: str) -> Document:
        try:
            record = self._documents[document_id]
        except KeyError:
            raise NotFoundError(f"no document {document_id!r}") from None
        components = tuple(
            self.get_monomedia(monomedia_id)
            for monomedia_id in record.monomedia_ids
        )
        return Document(
            document_id=record.document_id,
            title=record.title,
            components=components,
            sync=sync_from_record(record.sync_blob),
            copyright_cost=Money(record.copyright_cents),
        )

    def get_monomedia(self, monomedia_id: str) -> Monomedia:
        try:
            record = self._monomedia[monomedia_id]
        except KeyError:
            raise NotFoundError(f"no monomedia {monomedia_id!r}") from None
        variants = tuple(
            self._variants[variant_id].to_variant()
            for variant_id in self._variants_by_monomedia.get(monomedia_id, ())
        )
        return Monomedia(
            monomedia_id=record.monomedia_id,
            medium=Medium.parse(record.medium),
            title=record.title,
            duration_s=record.duration_s,
            variants=variants,
        )

    def get_variant(self, variant_id: str) -> Variant:
        try:
            return self._variants[variant_id].to_variant()
        except KeyError:
            raise NotFoundError(f"no variant {variant_id!r}") from None

    def to_catalog(self) -> DocumentCatalog:
        return DocumentCatalog(
            self.get_document(document_id) for document_id in self._documents
        )

    # -- queries ----------------------------------------------------------------

    def variants_for_monomedia(self, monomedia_id: str) -> tuple[Variant, ...]:
        if monomedia_id not in self._monomedia:
            raise NotFoundError(f"no monomedia {monomedia_id!r}")
        return tuple(
            self._variants[variant_id].to_variant()
            for variant_id in self._variants_by_monomedia.get(monomedia_id, ())
        )

    def variants_on_server(self, server_id: str) -> tuple[Variant, ...]:
        return tuple(
            self._variants[variant_id].to_variant()
            for variant_id in self._variants_by_server.get(server_id, ())
        )

    def select_variants(
        self, predicate: Callable[[Variant], bool]
    ) -> tuple[Variant, ...]:
        return tuple(
            variant
            for record in self._variants.values()
            if predicate(variant := record.to_variant())
        )

    def iter_document_ids(self) -> Iterator[str]:
        return iter(self._documents)

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def monomedia_count(self) -> int:
        return len(self._monomedia)

    @property
    def variant_count(self) -> int:
        return len(self._variants)

    def server_ids(self) -> frozenset[str]:
        return frozenset(self._variants_by_server)

    # -- raw record access (persistence layer) -----------------------------------

    def dump_records(self) -> dict:
        """Plain-dict snapshot of all three relations."""
        return {
            "documents": [
                {
                    "document_id": rec.document_id,
                    "title": rec.title,
                    "monomedia_ids": list(rec.monomedia_ids),
                    "copyright_cents": rec.copyright_cents,
                    "sync_blob": rec.sync_blob,
                }
                for rec in self._documents.values()
            ],
            "monomedia": [
                {
                    "monomedia_id": rec.monomedia_id,
                    "document_id": rec.document_id,
                    "medium": rec.medium,
                    "title": rec.title,
                    "duration_s": rec.duration_s,
                }
                for rec in self._monomedia.values()
            ],
            "variants": [rec.as_dict() for rec in self._variants.values()],
        }

    @classmethod
    def from_records(cls, blob: dict) -> "MetadataDatabase":
        """Rebuild a database from a :meth:`dump_records` snapshot."""
        db = cls()
        for item in blob.get("documents", ()):
            db._documents[item["document_id"]] = DocumentRecord(
                document_id=item["document_id"],
                title=item["title"],
                monomedia_ids=tuple(item["monomedia_ids"]),
                copyright_cents=int(item["copyright_cents"]),
                sync_blob=item.get("sync_blob", {}),
            )
        for item in blob.get("monomedia", ()):
            db._monomedia[item["monomedia_id"]] = MonomediaRecord(**item)
        for item in blob.get("variants", ()):
            db._index_variant(VariantRecord(**item))
        for document_id in db._documents:
            db._bump_version(document_id)
        return db
