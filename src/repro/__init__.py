"""repro — reproduction of the HPDC-5 '96 QoS negotiation procedure.

Hafid, v. Bochmann & Kerhervé, "A Quality of Service Negotiation
Procedure for Distributed Multimedia Presentational Applications",
Proceedings of HPDC-5, 1996.

Public API layout:

* :mod:`repro.core` — the negotiation procedure (profiles, offers,
  classification, mapping, cost, the QoS manager, adaptation);
* :mod:`repro.documents` — the multimedia document model (§2);
* :mod:`repro.metadata` — the metadata database substrate;
* :mod:`repro.client` — client machines and decoders;
* :mod:`repro.network` — topology, routing and flow reservations;
* :mod:`repro.cmfs` — the continuous-media file server substrate;
* :mod:`repro.session` — playout sessions, monitoring, adaptation loop;
* :mod:`repro.faults` — fault injection + resilience (retries, circuit
  breakers, reservation leases);
* :mod:`repro.sim` — scenarios, workloads, metrics, baselines, chaos;
* :mod:`repro.ui` — the text-mode QoS GUI.

The most common entry points are re-exported here.
"""

from .core import (
    AdaptationManager,
    ClassificationPolicy,
    ImportanceProfile,
    MMProfile,
    NegotiationStatus,
    ProfileManager,
    QoSManager,
    StaticNegotiationStatus,
    SystemOffer,
    TimeProfile,
    UserProfile,
    default_cost_model,
    default_importance,
    make_profile,
    paper_example_importance,
    standard_profiles,
)
from .documents import Document, DocumentCatalog, make_news_article

__version__ = "1.0.0"

__all__ = [
    "AdaptationManager",
    "ClassificationPolicy",
    "ImportanceProfile",
    "MMProfile",
    "NegotiationStatus",
    "ProfileManager",
    "QoSManager",
    "StaticNegotiationStatus",
    "SystemOffer",
    "TimeProfile",
    "UserProfile",
    "default_cost_model",
    "default_importance",
    "make_profile",
    "paper_example_importance",
    "standard_profiles",
    "Document",
    "DocumentCatalog",
    "make_news_article",
    "__version__",
]
