"""Fingerprint-keyed LRU caches for the negotiation hot path.

Two stores, layered the way the §4 pipeline is:

* **spaces** — built :class:`~repro.core.enumeration.OfferSpace`s,
  keyed by (document id, document version, client capability
  fingerprint, guarantee, cost-model fingerprint, mapper fingerprint).
  The space is pure function of those inputs, so a head-heavy request
  mix (ROADMAP's Zipf document popularity) re-enumerates nothing.
* **classifications** — the vectorized
  :class:`~repro.core.classification.ClassificationArrays` (the
  broadcast sums and the lexsort), keyed by the space key plus the
  profile, importance and policy fingerprints.

Invalidation rides on :meth:`MetadataDatabase.version_of`: every
catalog mutation bumps the document's version counter, which changes
the key, so stale entries simply stop being reachable and age out of
the LRU.  :meth:`NegotiationCache.invalidate_document` drops them
eagerly when memory matters.

Requests carrying a preference ``variant_filter`` build per-user
spaces and must bypass the cache entirely — that decision is made by
the caller (``QoSManager``), which is the only place that knows.

Hits, misses and evictions are counted both on :class:`CacheStats`
(always, for tests and the bench) and through the telemetry hub under
``cache.hits`` / ``cache.misses`` / ``cache.evictions`` /
``cache.flushes`` with a ``store`` label.  Explicit :meth:`clear`
flushes are deliberately *not* evictions: the SLO layer reads the
eviction-rate series as a capacity-pressure signal, and a test or
shutdown flush would pollute it.

Concurrent misses of one key are **single-flight**: the first task to
miss becomes the owner and computes; cooperative tasks that arrive
while the owner is suspended mid-compute observe the in-flight marker
via :meth:`_LRUStore.begin`, yield, and re-poll until the owner
publishes — so N simultaneous requests for one cold hot-document key
cost exactly one miss and one build.

The process-wide instance lives behind :func:`shared_cache`; reprolint
REP018 flags any private ``NegotiationCache(...)`` constructed outside
this module so cross-client reuse is the default, not an accident.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..client.machine import ClientMachine
from ..core.classification import ClassificationArrays, ClassificationPolicy
from ..core.cost import CostModel
from ..core.enumeration import OfferSpace
from ..core.importance import ImportanceProfile
from ..core.mapping import QoSMapper
from ..core.profiles import UserProfile
from ..network.transport import GuaranteeType
from ..telemetry import Telemetry
from ..util.errors import ValidationError
from .fingerprint import (
    client_fingerprint,
    cost_model_fingerprint,
    importance_fingerprint,
    mapper_fingerprint,
    profile_fingerprint,
)

__all__ = [
    "CacheStats",
    "NegotiationCache",
    "shared_cache",
    "reset_shared_cache",
]

SPACES = "spaces"
CLASSIFICATIONS = "classifications"

HIT = "hit"
OWNER = "owner"
WAIT = "wait"


@dataclass
class CacheStats:
    """Per-store hit/miss/eviction/flush counters."""

    hits: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )
    misses: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )
    evictions: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )
    flushes: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": dict(self.evictions),
            "flushes": dict(self.flushes),
        }


class _LRUStore:
    """One bounded LRU mapping with stats + telemetry accounting."""

    def __init__(
        self,
        name: str,
        max_entries: int,
        stats: CacheStats,
        telemetry: Telemetry,
    ) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"cache store {name!r} needs max_entries >= 1, "
                f"got {max_entries}"
            )
        self.name = name
        self.max_entries = max_entries
        self._stats = stats
        self._telemetry = telemetry
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._inflight: set[Hashable] = set()

    def __len__(self) -> int:
        return len(self._entries)

    # -- single-flight protocol ----------------------------------------------------

    def begin(self, key: Hashable) -> "tuple[str, object | None]":
        """Open a single-flight lookup: ``(state, value)``.

        ``HIT`` carries the cached value.  ``OWNER`` means the caller
        must compute and then call :meth:`complete` (or :meth:`abandon`
        on failure) — the miss is counted here, exactly once per
        flight.  ``WAIT`` means another task owns the in-flight
        computation; cooperative callers yield and call ``begin``
        again.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._stats.hits[self.name] += 1
            self._telemetry.count("cache.hits", store=self.name)
            return HIT, entry
        if key in self._inflight:
            return WAIT, None
        self._inflight.add(key)
        self._stats.misses[self.name] += 1
        self._telemetry.count("cache.misses", store=self.name)
        return OWNER, None

    def complete(self, key: Hashable, value: object) -> object:
        """Publish an owner's computed value and close the flight."""
        self._inflight.discard(key)
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evicted(1)
        return value

    def abandon(self, key: Hashable) -> None:
        """Close a flight without publishing (owner's compute failed);
        the next ``begin`` promotes a waiter to owner."""
        self._inflight.discard(key)

    def lookup(self, key: Hashable, compute: "Callable[[], object]") -> object:
        state, entry = self.begin(key)
        if state == HIT:
            return entry
        if state == WAIT:
            # A suspended cooperative task owns this key.  A synchronous
            # caller cannot yield, so it computes for itself without
            # touching the counters or the store — the owner publishes.
            return compute()
        try:
            value = compute()
        except BaseException:  # reprolint: backstop -- abandon the in-flight marker on any failure, then re-raise
            self.abandon(key)
            raise
        return self.complete(key, value)

    def drop_where(self, predicate: "Callable[[Hashable], bool]") -> int:
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self._evicted(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Flush every entry.  Counted under ``cache.flushes`` — an
        explicit flush is not capacity pressure, and the SLO layer's
        eviction-rate series must not see it."""
        if self._entries:
            self._flushed(len(self._entries))
        self._entries.clear()

    def _evicted(self, count: int) -> None:
        self._stats.evictions[self.name] += count
        self._telemetry.count("cache.evictions", float(count), store=self.name)

    def _flushed(self, count: int) -> None:
        self._stats.flushes[self.name] += count
        self._telemetry.count("cache.flushes", float(count), store=self.name)


class NegotiationCache:
    """The process-wide negotiation cache (spaces + classifications)."""

    def __init__(
        self,
        *,
        max_spaces: int = 128,
        max_classifications: int = 512,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.telemetry = telemetry or Telemetry.disabled()
        self.stats = CacheStats()
        self._spaces = _LRUStore(
            SPACES, max_spaces, self.stats, self.telemetry
        )
        self._classifications = _LRUStore(
            CLASSIFICATIONS, max_classifications, self.stats, self.telemetry
        )

    # -- keys ---------------------------------------------------------------------

    @staticmethod
    def space_key(
        *,
        document_id: str,
        version: int,
        client: ClientMachine,
        guarantee: GuaranteeType,
        cost_model: CostModel,
        mapper: QoSMapper,
    ) -> tuple[str, int, str, str, str, str]:
        return (
            document_id,
            version,
            client_fingerprint(client),
            guarantee.value,
            cost_model_fingerprint(cost_model),
            mapper_fingerprint(mapper),
        )

    # -- lookups ------------------------------------------------------------------

    def offer_space(
        self,
        key: "tuple[str, int, str, str, str, str]",
        build: "Callable[[], OfferSpace]",
    ) -> OfferSpace:
        """The cached offer space for ``key``, building on miss."""
        space = self._spaces.lookup(key, build)
        assert isinstance(space, OfferSpace)
        return space

    @staticmethod
    def classification_key(
        space_key: "tuple[str, int, str, str, str, str]",
        profile: UserProfile,
        importance: ImportanceProfile,
        policy: ClassificationPolicy,
    ) -> tuple:
        return space_key + (
            profile_fingerprint(profile),
            importance_fingerprint(importance),
            policy.value,
        )

    def classification(
        self,
        space_key: "tuple[str, int, str, str, str, str]",
        profile: UserProfile,
        importance: ImportanceProfile,
        policy: ClassificationPolicy,
        compute: "Callable[[], ClassificationArrays]",
    ) -> ClassificationArrays:
        """The cached classification arrays for one (space, user) pair."""
        key = self.classification_key(space_key, profile, importance, policy)
        arrays = self._classifications.lookup(key, compute)
        assert isinstance(arrays, ClassificationArrays)
        return arrays

    # -- single-flight access ------------------------------------------------------

    @property
    def spaces(self) -> _LRUStore:
        """The spaces store, for cooperative single-flight callers."""
        return self._spaces

    @property
    def classifications(self) -> _LRUStore:
        """The classifications store, for cooperative single-flight
        callers."""
        return self._classifications

    # -- maintenance --------------------------------------------------------------

    def invalidate_document(self, document_id: str) -> int:
        """Eagerly drop every entry derived from ``document_id``.

        Version-keyed lookups already make stale entries unreachable;
        this reclaims their memory immediately (e.g. on document
        removal).  Returns the number of entries dropped.
        """
        dropped = self._spaces.drop_where(lambda key: key[0] == document_id)
        dropped += self._classifications.drop_where(
            lambda key: key[0] == document_id
        )
        return dropped

    def clear(self) -> None:
        self._spaces.clear()
        self._classifications.clear()

    @property
    def entry_counts(self) -> dict[str, int]:
        return {
            SPACES: len(self._spaces),
            CLASSIFICATIONS: len(self._classifications),
        }


# -- the process-wide shared cache ------------------------------------------------
#
# One cache per process is the point of fingerprint keys: they already
# exclude client identity, so every manager/service/storm instance can
# (and should) share entries.  ``shared_cache()`` is the sanctioned
# accessor — reprolint REP018 flags ``NegotiationCache(...)`` calls
# anywhere else, so private caches must justify themselves.

_shared: "NegotiationCache | None" = None


def shared_cache(telemetry: "Telemetry | None" = None) -> NegotiationCache:
    """The process-wide :class:`NegotiationCache`, created on first use.

    ``telemetry`` only matters on the creating call; later callers get
    the existing instance unchanged (the cache's own ``stats`` counters
    are always live regardless).
    """
    global _shared
    if _shared is None:
        _shared = NegotiationCache(telemetry=telemetry)
    return _shared


def reset_shared_cache() -> "NegotiationCache | None":
    """Drop the shared instance (tests; telemetry rewiring).  Returns
    the old instance so a caller can drain its stats."""
    global _shared
    old = _shared
    _shared = None
    return old
