"""Fingerprint-keyed LRU caches for the negotiation hot path.

Two stores, layered the way the §4 pipeline is:

* **spaces** — built :class:`~repro.core.enumeration.OfferSpace`s,
  keyed by (document id, document version, client capability
  fingerprint, guarantee, cost-model fingerprint, mapper fingerprint).
  The space is pure function of those inputs, so a head-heavy request
  mix (ROADMAP's Zipf document popularity) re-enumerates nothing.
* **classifications** — the vectorized
  :class:`~repro.core.classification.ClassificationArrays` (the
  broadcast sums and the lexsort), keyed by the space key plus the
  profile, importance and policy fingerprints.

Invalidation rides on :meth:`MetadataDatabase.version_of`: every
catalog mutation bumps the document's version counter, which changes
the key, so stale entries simply stop being reachable and age out of
the LRU.  :meth:`NegotiationCache.invalidate_document` drops them
eagerly when memory matters.

Requests carrying a preference ``variant_filter`` build per-user
spaces and must bypass the cache entirely — that decision is made by
the caller (``QoSManager``), which is the only place that knows.

Hits, misses and evictions are counted both on :class:`CacheStats`
(always, for tests and the bench) and through the telemetry hub under
``cache.hits`` / ``cache.misses`` / ``cache.evictions`` with a
``store`` label.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..client.machine import ClientMachine
from ..core.classification import ClassificationArrays, ClassificationPolicy
from ..core.cost import CostModel
from ..core.enumeration import OfferSpace
from ..core.importance import ImportanceProfile
from ..core.mapping import QoSMapper
from ..core.profiles import UserProfile
from ..network.transport import GuaranteeType
from ..telemetry import Telemetry
from ..util.errors import ValidationError
from .fingerprint import (
    client_fingerprint,
    cost_model_fingerprint,
    importance_fingerprint,
    mapper_fingerprint,
    profile_fingerprint,
)

__all__ = ["CacheStats", "NegotiationCache"]

SPACES = "spaces"
CLASSIFICATIONS = "classifications"


@dataclass
class CacheStats:
    """Per-store hit/miss/eviction counters."""

    hits: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )
    misses: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )
    evictions: dict[str, int] = field(
        default_factory=lambda: {SPACES: 0, CLASSIFICATIONS: 0}
    )

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": dict(self.evictions),
        }


class _LRUStore:
    """One bounded LRU mapping with stats + telemetry accounting."""

    def __init__(
        self,
        name: str,
        max_entries: int,
        stats: CacheStats,
        telemetry: Telemetry,
    ) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"cache store {name!r} needs max_entries >= 1, "
                f"got {max_entries}"
            )
        self.name = name
        self.max_entries = max_entries
        self._stats = stats
        self._telemetry = telemetry
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, compute: "Callable[[], object]") -> object:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._stats.hits[self.name] += 1
            self._telemetry.count("cache.hits", store=self.name)
            return entry
        self._stats.misses[self.name] += 1
        self._telemetry.count("cache.misses", store=self.name)
        value = compute()
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evicted(1)
        return value

    def drop_where(self, predicate: "Callable[[Hashable], bool]") -> int:
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self._evicted(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        if self._entries:
            self._evicted(len(self._entries))
        self._entries.clear()

    def _evicted(self, count: int) -> None:
        self._stats.evictions[self.name] += count
        self._telemetry.count("cache.evictions", float(count), store=self.name)


class NegotiationCache:
    """The process-wide negotiation cache (spaces + classifications)."""

    def __init__(
        self,
        *,
        max_spaces: int = 128,
        max_classifications: int = 512,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.telemetry = telemetry or Telemetry.disabled()
        self.stats = CacheStats()
        self._spaces = _LRUStore(
            SPACES, max_spaces, self.stats, self.telemetry
        )
        self._classifications = _LRUStore(
            CLASSIFICATIONS, max_classifications, self.stats, self.telemetry
        )

    # -- keys ---------------------------------------------------------------------

    @staticmethod
    def space_key(
        *,
        document_id: str,
        version: int,
        client: ClientMachine,
        guarantee: GuaranteeType,
        cost_model: CostModel,
        mapper: QoSMapper,
    ) -> tuple[str, int, str, str, str, str]:
        return (
            document_id,
            version,
            client_fingerprint(client),
            guarantee.value,
            cost_model_fingerprint(cost_model),
            mapper_fingerprint(mapper),
        )

    # -- lookups ------------------------------------------------------------------

    def offer_space(
        self,
        key: "tuple[str, int, str, str, str, str]",
        build: "Callable[[], OfferSpace]",
    ) -> OfferSpace:
        """The cached offer space for ``key``, building on miss."""
        space = self._spaces.lookup(key, build)
        assert isinstance(space, OfferSpace)
        return space

    def classification(
        self,
        space_key: "tuple[str, int, str, str, str, str]",
        profile: UserProfile,
        importance: ImportanceProfile,
        policy: ClassificationPolicy,
        compute: "Callable[[], ClassificationArrays]",
    ) -> ClassificationArrays:
        """The cached classification arrays for one (space, user) pair."""
        key = space_key + (
            profile_fingerprint(profile),
            importance_fingerprint(importance),
            policy.value,
        )
        arrays = self._classifications.lookup(key, compute)
        assert isinstance(arrays, ClassificationArrays)
        return arrays

    # -- maintenance --------------------------------------------------------------

    def invalidate_document(self, document_id: str) -> int:
        """Eagerly drop every entry derived from ``document_id``.

        Version-keyed lookups already make stale entries unreachable;
        this reclaims their memory immediately (e.g. on document
        removal).  Returns the number of entries dropped.
        """
        dropped = self._spaces.drop_where(lambda key: key[0] == document_id)
        dropped += self._classifications.drop_where(
            lambda key: key[0] == document_id
        )
        return dropped

    def clear(self) -> None:
        self._spaces.clear()
        self._classifications.clear()

    @property
    def entry_counts(self) -> dict[str, int]:
        return {
            SPACES: len(self._spaces),
            CLASSIFICATIONS: len(self._classifications),
        }
