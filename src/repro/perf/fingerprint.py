"""Structural fingerprints for negotiation cache keys.

Cache keys must identify *values*, not object identities:
``default_cost_model()`` builds a fresh ``CostModel`` per call, every
request may carry its own ``ClientMachine`` instance, and profiles are
routinely reconstructed from the standard set.  Each helper therefore
renders the object's classification-relevant state to a canonical
string and hashes it, so two structurally equal inputs share cache
entries no matter where they were built.

Only state that can change the offer space or the classification
arrays enters a fingerprint; presentation details (client id, access
point, profile name) deliberately do not.
"""

from __future__ import annotations

import hashlib

from ..client.machine import ClientMachine
from ..core.cost import CostModel
from ..core.importance import ImportanceProfile
from ..core.mapping import QoSMapper
from ..core.profiles import UserProfile

__all__ = [
    "digest",
    "client_fingerprint",
    "cost_model_fingerprint",
    "mapper_fingerprint",
    "profile_fingerprint",
    "importance_fingerprint",
]


def digest(payload: str) -> str:
    """Short stable digest of a canonical state string."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def client_fingerprint(client: ClientMachine) -> str:
    """Capability fingerprint: everything step 1/2 reads off the
    machine.  The client id and access point are identity, not
    capability, and are excluded — a thousand identical workstations
    share one offer space."""
    decoders = sorted(
        f"{type(decoder).__name__}:{decoder!r}" for decoder in client.decoders
    )
    return digest(
        repr(
            (
                client.screen_width,
                client.screen_height,
                client.screen_color.value,
                client.max_frame_rate,
                client.audio_output,
                client.interface_bps,
                tuple(decoders),
            )
        )
    )


def cost_model_fingerprint(model: CostModel) -> str:
    """Tariff fingerprint: both cost tables plus the discount.  Table
    rows are frozen dataclasses with value-stable reprs."""
    return digest(
        repr(
            (
                model.network.classes,
                model.server.classes,
                model.best_effort_discount,
            )
        )
    )


def mapper_fingerprint(mapper: QoSMapper) -> str:
    """QoS→flow-spec mapping fingerprint.

    Keys on the full class identity (module + qualname, so two
    same-named mappers in different modules never share entries) plus
    the mapper's declared ``fingerprint_state()``.  A subclass that
    adds state without overriding the hook gets its entire repr folded
    in — conservative (cosmetic repr changes split the key) but never
    wrong, which is the right trade for a correctness-critical cache
    key.
    """
    cls = type(mapper)
    state: object = mapper.fingerprint_state()
    if (
        cls is not QoSMapper
        and cls.fingerprint_state is QoSMapper.fingerprint_state
    ):
        state = (state, repr(mapper))
    return digest(f"{cls.__module__}.{cls.__qualname__}:{state!r}")


def profile_fingerprint(profile: UserProfile) -> str:
    """The profile state classification reads: the desired and
    worst-acceptable MM profiles (QoS bounds and the two cost bounds).
    The name, importance (fingerprinted separately) and preferences
    (which bypass the cache) are excluded."""
    return digest(repr((profile.desired, profile.worst)))


def importance_fingerprint(importance: ImportanceProfile) -> str:
    """Importance-profile fingerprint; frozen dataclass reprs render
    all anchor/override/weight tables."""
    return digest(repr(importance))
