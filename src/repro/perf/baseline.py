"""Benchmark regression gate: a fresh report vs. a committed baseline.

The repo commits its benchmark trajectory (``BENCH_negotiation.json``,
``BENCH_load.json``); CI re-measures and refuses a merge whose fresh
throughput drops more than ``tolerance`` below any committed number.
The comparison is *keyed*, not positional — a cell present only on one
side (a ``--quick`` run against a full-matrix baseline, a different
multiplier sweep) is skipped, never treated as a regression — and
one-sided: faster is always fine.

Two extractors flatten the report shapes into ``key -> throughput``
maps: per ``(variants, axes, config)`` cell for the negotiation bench,
per load multiplier for the service sweep.  The wall-clock bench needs
the tolerance headroom for machine noise; the load sweep runs in
simulated time, so its rates only move when behaviour does — the same
gate then catches *real* capacity regressions exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from ..util.errors import ValidationError

__all__ = [
    "DEFAULT_TOLERANCE",
    "Regression",
    "bench_throughputs",
    "compare_throughputs",
    "load_baseline",
    "load_throughputs",
]

DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class Regression:
    """One metric that fell below the tolerated floor."""

    key: str
    baseline: float
    fresh: float
    tolerance: float

    @property
    def drop(self) -> float:
        """Fractional drop below the baseline (0.25 = 25% slower)."""
        if self.baseline <= 0.0:
            return 0.0
        return 1.0 - self.fresh / self.baseline

    def render(self) -> str:
        return (
            f"{self.key}: {self.fresh:.2f}/s is {self.drop:.0%} below "
            f"the baseline {self.baseline:.2f}/s "
            f"(tolerance {self.tolerance:.0%})"
        )


def load_baseline(path: str) -> "dict[str, object]":
    """Read a committed ``BENCH_*.json`` report."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValidationError(f"unreadable baseline {path}: {error}")
    if not isinstance(document, dict):
        raise ValidationError(f"baseline {path} is not a report object")
    return document


def bench_throughputs(report: Mapping) -> "dict[str, float]":
    """``variants^axes/config -> negotiations_per_s`` from a
    ``bench-negotiation/v1`` report."""
    throughputs: "dict[str, float]" = {}
    for cell in report.get("cells", ()):
        shape = f"{cell['variants']}^{cell['axes']}"
        # Catalogue cells (several documents under one popularity skew)
        # carry a width suffix so they never shadow a single-document
        # cell of the same shape; pre-catalogue reports omit the key.
        documents = int(cell.get("documents", 1))
        if documents > 1:
            shape += f"x{documents}"
        for label, metrics in cell["configs"].items():
            throughputs[f"{shape}/{label}"] = float(
                metrics["negotiations_per_s"]
            )
    return throughputs


def load_throughputs(report: Mapping) -> "dict[str, float]":
    """``x<multiplier> -> served_rate_per_s`` from a load-sweep
    report."""
    return {
        f"x{cell['multiplier']:g}": float(cell["served_rate_per_s"])
        for cell in report.get("cells", ())
    }


def compare_throughputs(
    fresh: "Mapping[str, float]",
    baseline: "Mapping[str, float]",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> "tuple[Regression, ...]":
    """Every key on both sides whose fresh throughput fell below
    ``(1 - tolerance) * baseline``, in sorted key order."""
    if not 0.0 <= tolerance < 1.0:
        raise ValidationError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    regressions = []
    for key in sorted(baseline):
        if key not in fresh:
            continue
        floor = (1.0 - tolerance) * baseline[key]
        if fresh[key] < floor:
            regressions.append(
                Regression(
                    key=key,
                    baseline=baseline[key],
                    fresh=fresh[key],
                    tolerance=tolerance,
                )
            )
    return tuple(regressions)
