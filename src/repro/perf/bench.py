"""The negotiation benchmark: ``python -m repro bench``.

Measures negotiation throughput across a matrix of offer-space shapes
(``variants`` per axis × ``axes`` monomedia, spanning 2–8 variants and
2–6 axes) and four pipeline configurations — {full sort, best-first
streaming} × {cache off, cache on} — and writes the result to
``BENCH_negotiation.json``, the first point of the repo's benchmark
trajectory.

Besides throughput (negotiations/s, classified offers/s, p50/p99 wall
latency) the bench *asserts outcome equivalence*: every configuration
must commit the same offer with the same status and the same attempt
count on every seed scenario, round for round.  A divergence makes the
run fail (exit 1), which is the CI gate for the streaming path.

This module intentionally reads the wall clock — it measures real
compute, not simulated time — so the REP001/REP011 timing bans are
suppressed line by line.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from time import perf_counter  # reprolint: disable=REP001,REP011 -- the bench measures real wall time

from ..cmfs.admission import AdmissionController
from ..cmfs.disk import DiskModel
from ..cmfs.server import MediaServer
from ..client.machine import ClientMachine
from ..core.importance import default_importance
from ..core.negotiation import QoSManager
from ..core.profiles import MMProfile, UserProfile
from ..documents.builder import DocumentBuilder, MonomediaBuilder
from ..documents.document import Document
from ..documents.media import Codecs, ColorMode, Medium, TV_RESOLUTION
from ..documents.quality import VideoQoS
from ..metadata.database import MetadataDatabase
from ..network.topology import Topology
from ..network.transport import TransportSystem
from ..util.clock import ManualClock
from ..util.errors import ValidationError
from .baseline import (
    DEFAULT_TOLERANCE,
    bench_throughputs,
    compare_throughputs,
    load_baseline,
)
from .cache import NegotiationCache

__all__ = [
    "BENCH_CELLS",
    "QUICK_CELLS",
    "SIX_AXIS_CELL",
    "add_bench_arguments",
    "run_bench",
    "run_bench_command",
    "main",
]

# (variants per axis, axes).  Spans 2–8 variants and 2–6 monomedia;
# the largest cells hold 8^4 = 4096 offers.
BENCH_CELLS: "tuple[tuple[int, int], ...]" = (
    (2, 2), (4, 2), (8, 2),
    (2, 4), (4, 4), (8, 4),
    (2, 6), (3, 6), (4, 6),
)
QUICK_CELLS: "tuple[tuple[int, int], ...]" = ((2, 2), (4, 4), (4, 6))
SIX_AXIS_CELL: "tuple[int, int]" = (4, 6)
SPEEDUP_THRESHOLD = 5.0

CONFIGS: "tuple[tuple[str, str, bool], ...]" = (
    # (label, offer_mode, cached)
    ("full", "full", False),
    ("full+cache", "full", True),
    ("stream", "stream", False),
    ("stream+cache", "stream", True),
)

# The eight bench variant flavours, best-first by construction: the
# lead combination satisfies the desired profile, the tail ones only
# the worst-acceptable bound.  A document with V variants per axis
# takes the first V.
_VARIANT_FLAVOURS: "tuple[tuple[ColorMode, int], ...]" = (
    (ColorMode.COLOR, 25),
    (ColorMode.COLOR, 15),
    (ColorMode.COLOR, 10),
    (ColorMode.GREY, 25),
    (ColorMode.GREY, 15),
    (ColorMode.GREY, 10),
    (ColorMode.COLOR, 5),
    (ColorMode.GREY, 5),
)

_SERVER_IDS = ("server-a", "server-b", "server-c")
_DURATION_S = 30.0


def _bench_document(variants: int, axes: int) -> Document:
    """A synthetic document with ``axes`` video monomedia of
    ``variants`` variants each — offer space of ``variants**axes``."""
    builder = DocumentBuilder(
        f"doc.bench-{variants}x{axes}",
        f"bench article {variants} variants x {axes} axes",
    )
    for axis in range(axes):
        mono = MonomediaBuilder(
            f"doc.bench-{variants}x{axes}.m{axis + 1}",
            Medium.VIDEO,
            f"segment {axis + 1}",
            _DURATION_S,
        )
        for index, (color, frame_rate) in enumerate(
            _VARIANT_FLAVOURS[:variants]
        ):
            mono.add_variant(
                Codecs.MPEG1,
                VideoQoS(
                    color=color,
                    frame_rate=frame_rate,
                    resolution=TV_RESOLUTION,
                ),
                _SERVER_IDS[(axis + index) % len(_SERVER_IDS)],
            )
        builder.add(mono)
    return builder.copyright(0.25).build()


def _bench_profile() -> UserProfile:
    """Desires the lead flavour, tolerates the worst one, with a cost
    ceiling high enough that the best offers commit on first attempt —
    the head-heavy case the streaming path is built for."""
    return UserProfile(
        name="bench",
        desired=MMProfile(
            video=VideoQoS(
                color=ColorMode.COLOR, frame_rate=25, resolution=TV_RESOLUTION
            ),
            cost=500.0,
        ),
        worst=MMProfile(
            video=VideoQoS(
                color=ColorMode.GREY, frame_rate=5, resolution=TV_RESOLUTION
            ),
            cost=500.0,
        ),
        importance=default_importance(),
    )


def _deployment(
    document: Document, offer_mode: str, cached: bool
) -> "tuple[QoSManager, ClientMachine]":
    servers = {
        server_id: MediaServer(
            server_id,
            disk=DiskModel(),
            admission=AdmissionController(
                disk=DiskModel(), nic_bps=622e6, max_streams=256
            ),
        )
        for server_id in _SERVER_IDS
    }
    topology = Topology()
    for server in servers.values():
        topology.connect(
            server.access_point, "backbone", 622e6,
            link_id=f"L-{server.server_id}",
        )
    topology.connect("client-net", "backbone", 622e6, link_id="L-client")
    database = MetadataDatabase()
    database.insert_document(document)
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
        clock=ManualClock(),
        offer_mode=offer_mode,
        cache=NegotiationCache() if cached else None,
    )
    client = ClientMachine("bench-client", access_point="client-net")
    return manager, client


@dataclass
class _ConfigRun:
    signatures: "list[tuple[str, str | None, int]]"
    latencies_s: "list[float]"
    offers_classified: int
    elapsed_s: float

    def metrics(self, rounds: int) -> "dict[str, float]":
        ordered = sorted(self.latencies_s)

        def pct(q: float) -> float:
            if not ordered:
                return 0.0
            index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
            return ordered[index]

        elapsed = max(self.elapsed_s, 1e-9)
        return {
            "negotiations_per_s": rounds / elapsed,
            "offers_per_s": self.offers_classified / elapsed,
            "latency_p50_ms": pct(0.50) * 1e3,
            "latency_p99_ms": pct(0.99) * 1e3,
            "elapsed_s": elapsed,
        }


def _run_config(
    document: Document, offer_mode: str, cached: bool, rounds: int
) -> _ConfigRun:
    manager, client = _deployment(document, offer_mode, cached)
    profile = _bench_profile()
    # One unmeasured warm-up round: the cached configurations are meant
    # to measure the steady state, not the first-request miss.
    warmup = manager.negotiate(document.document_id, profile, client)
    if warmup.commitment is not None:
        warmup.commitment.reject(manager.clock.now())

    signatures: "list[tuple[str, str | None, int]]" = []
    latencies: "list[float]" = []
    offers = 0
    started = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
    for _ in range(rounds):
        t0 = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
        result = manager.negotiate(document.document_id, profile, client)
        t1 = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
        latencies.append(t1 - t0)
        offers += len(result.classified)
        signatures.append(
            (
                result.status.name,
                result.chosen.offer.offer_id if result.chosen else None,
                result.attempts,
            )
        )
        if result.commitment is not None:
            result.commitment.reject(manager.clock.now())
    elapsed = perf_counter() - started  # reprolint: disable=REP001,REP011 -- bench wall time
    return _ConfigRun(
        signatures=signatures,
        latencies_s=latencies,
        offers_classified=offers,
        elapsed_s=elapsed,
    )


def run_bench(
    *, quick: bool = False, rounds: "int | None" = None
) -> "dict[str, object]":
    """Run the full matrix; return the report dict (see module doc)."""
    cells = QUICK_CELLS if quick else BENCH_CELLS
    report_cells: "list[dict[str, object]]" = []
    all_equivalent = True
    speedups: "dict[str, float]" = {}

    for variants, axes in cells:
        document = _bench_document(variants, axes)
        offer_count = variants ** axes
        cell_rounds = rounds or (12 if offer_count <= 256 else 6)
        runs: "dict[str, _ConfigRun]" = {}
        for label, offer_mode, cached in CONFIGS:
            runs[label] = _run_config(
                document, offer_mode, cached, cell_rounds
            )
        baseline = runs["full"].signatures
        equivalent = all(
            run.signatures == baseline for run in runs.values()
        )
        all_equivalent = all_equivalent and equivalent
        cell_report: "dict[str, object]" = {
            "variants": variants,
            "axes": axes,
            "offer_count": offer_count,
            "rounds": cell_rounds,
            "first_committed": baseline[0][1] if baseline else None,
            "status": baseline[0][0] if baseline else None,
            "equivalent": equivalent,
            "configs": {
                label: run.metrics(cell_rounds)
                for label, run in runs.items()
            },
        }
        report_cells.append(cell_report)
        if (variants, axes) == SIX_AXIS_CELL:
            full = runs["full"].metrics(cell_rounds)["negotiations_per_s"]
            fast = runs["stream+cache"].metrics(cell_rounds)[
                "negotiations_per_s"
            ]
            speedups["six_axis_stream_cache_vs_full"] = (
                fast / full if full else 0.0
            )

    six_axis_speedup = speedups.get("six_axis_stream_cache_vs_full")
    return {
        "schema": "bench-negotiation/v1",
        "command": "python -m repro bench" + (" --quick" if quick else ""),
        "quick": quick,
        "cells": report_cells,
        "summary": {
            "all_outcomes_equivalent": all_equivalent,
            "six_axis_cell": list(SIX_AXIS_CELL),
            "six_axis_speedup_stream_cache_vs_full": six_axis_speedup,
            "speedup_threshold": SPEEDUP_THRESHOLD,
            "six_axis_speedup_ok": (
                six_axis_speedup is None
                or six_axis_speedup >= SPEEDUP_THRESHOLD
            ),
        },
    }


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help="small 3-cell matrix (CI-friendly)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="override measured rounds per cell",
    )
    parser.add_argument(
        "--output", default="BENCH_negotiation.json",
        help="report path (default: %(default)s)",
    )
    parser.add_argument(
        "--require-speedup", action="store_true",
        help="also fail when the 6-axis streaming+cache speedup is "
        "below the threshold (only meaningful on quiet machines)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_negotiation.json to regress against; "
        "fail when any shared cell/config drops below the tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="F",
        help="tolerated fractional throughput drop vs the baseline "
        "(default %(default)s)",
    )


def run_bench_command(args: argparse.Namespace) -> int:
    # Read the baseline before the run (and before --output lands):
    # CI regresses a fresh measurement against the *committed* file
    # even when both flags name the same path.
    baseline = None
    if args.baseline is not None:
        try:
            baseline = bench_throughputs(load_baseline(args.baseline))
        except ValidationError as error:
            print(f"bad --baseline: {error}")
            return 2
    report = run_bench(quick=args.quick, rounds=args.rounds)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    summary = report["summary"]
    assert isinstance(summary, dict)
    speedup = summary["six_axis_speedup_stream_cache_vs_full"]
    print(f"wrote {args.output}")
    for cell in report["cells"]:  # type: ignore[union-attr]
        assert isinstance(cell, dict)
        configs = cell["configs"]
        assert isinstance(configs, dict)
        line = ", ".join(
            f"{label}={metrics['negotiations_per_s']:.0f}/s"
            for label, metrics in configs.items()
        )
        print(
            f"  {cell['variants']}^{cell['axes']}"
            f" ({cell['offer_count']} offers, {cell['status']}):"
            f" {line}"
        )
    if speedup is not None:
        print(
            f"6-axis streaming+cache speedup vs full sort: {speedup:.1f}x "
            f"(threshold {SPEEDUP_THRESHOLD}x)"
        )
    if not summary["all_outcomes_equivalent"]:
        print("FAIL: negotiation outcomes diverged between configurations")
        return 1
    if args.require_speedup and not summary["six_axis_speedup_ok"]:
        print("FAIL: 6-axis speedup below threshold")
        return 1
    if baseline is not None:
        try:
            regressions = compare_throughputs(
                bench_throughputs(report), baseline,
                tolerance=args.tolerance,
            )
        except ValidationError as error:
            print(f"bad --baseline: {error}")
            return 2
        if regressions:
            print(f"FAIL: throughput regressed vs {args.baseline}")
            for regression in regressions:
                print(f"  {regression.render()}")
            return 1
        print(f"no throughput regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="negotiation throughput benchmark "
        "(streaming vs full sort, cache on/off)",
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
