"""The negotiation benchmark: ``python -m repro bench``.

Measures negotiation throughput across a matrix of offer-space shapes
(``variants`` per axis × ``axes`` monomedia, spanning 2–8 variants and
2–6 axes) and five pipeline configurations — {full sort, best-first
streaming} × {cache off, cache on} plus the batched equivalence-class
engine (``repro.batch``) — and writes the result to
``BENCH_negotiation.json``, a point on the repo's benchmark trajectory.

Catalogue-scale cells extend the matrix to 8–10 axes and offer spaces
past a million combinations, spread over several documents requested
under a Zipf popularity skew — the news-on-demand access pattern where
batching pays: most requests land on the few hot documents, so the
batch engine plans each hot class once and fans the walk out.  Those
cells skip the full-sort configurations (materialising and sorting a
million-offer space per round is exactly the cost the streaming path
exists to avoid) and use the streaming run as the equivalence baseline
instead; their ``max_offers`` bound keeps every run's materialised
prefix small.

Besides throughput (negotiations/s, classified offers/s, p50/p99 wall
latency) the bench *asserts outcome equivalence*: every configuration
must commit the same offer with the same status and the same attempt
count on every seed scenario, round for round — the batched engine
included.  A divergence makes the run fail (exit 1), which is the CI
gate for the streaming and batching paths.

This module intentionally reads the wall clock — it measures real
compute, not simulated time — so the REP001/REP011 timing bans are
suppressed line by line.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from time import perf_counter  # reprolint: disable=REP001,REP011 -- the bench measures real wall time

import numpy as np

from ..batch import BatchRequest, negotiate_batch
from ..cmfs.admission import AdmissionController
from ..cmfs.disk import DiskModel
from ..cmfs.server import MediaServer
from ..client.machine import ClientMachine
from ..core.importance import default_importance
from ..core.negotiation import NegotiationResult, QoSManager
from ..core.profiles import MMProfile, UserProfile
from ..documents.builder import DocumentBuilder, MonomediaBuilder
from ..documents.document import Document
from ..documents.media import Codecs, ColorMode, Medium, TV_RESOLUTION
from ..documents.quality import VideoQoS
from ..metadata.database import MetadataDatabase
from ..network.topology import Topology
from ..network.transport import TransportSystem
from ..util.clock import ManualClock
from ..util.errors import ValidationError
from ..util.rng import make_rng
from .baseline import (
    DEFAULT_TOLERANCE,
    bench_throughputs,
    compare_throughputs,
    load_baseline,
)
from .cache import reset_shared_cache, shared_cache

__all__ = [
    "BENCH_CELLS",
    "CATALOGUE_CELLS",
    "QUICK_CELLS",
    "QUICK_CATALOGUE_CELLS",
    "SIX_AXIS_CELL",
    "add_bench_arguments",
    "run_bench",
    "run_bench_command",
    "main",
]

# (variants per axis, axes).  Spans 2–8 variants and 2–6 monomedia;
# the largest cells hold 8^4 = 4096 offers.
BENCH_CELLS: "tuple[tuple[int, int], ...]" = (
    (2, 2), (4, 2), (8, 2),
    (2, 4), (4, 4), (8, 4),
    (2, 6), (3, 6), (4, 6),
)
QUICK_CELLS: "tuple[tuple[int, int], ...]" = ((2, 2), (4, 4), (4, 6))
# (variants per axis, axes, documents).  Catalogue-scale: million-offer
# spaces (6^8 ≈ 1.7M, 4^10 ≈ 1.0M, 8^8 ≈ 16.8M — the last one past the
# vectorization ceiling, so even a cached eager sort is off the table)
# spread across a small catalogue with Zipf-skewed popularity.
CATALOGUE_CELLS: "tuple[tuple[int, int, int], ...]" = (
    (6, 8, 4),
    (4, 10, 4),
    (8, 8, 4),
)
QUICK_CATALOGUE_CELLS: "tuple[tuple[int, int, int], ...]" = ((4, 10, 4),)
SIX_AXIS_CELL: "tuple[int, int]" = (4, 6)
SPEEDUP_THRESHOLD = 5.0
# Best committed single-config throughput of the seed bench (stream
# +cache on the hottest cell); the batch engine on the 6-axis cell must
# beat it by SPEEDUP_THRESHOLD.
COMMITTED_BEST_NPS = 488.0
# Above this offer count the eager full-sort configurations are left
# out: one round would materialise and sort the whole product space.
FULL_SORT_CEILING = 5_000

CONFIGS: "tuple[tuple[str, str, bool, bool], ...]" = (
    # (label, offer_mode, cached, batched)
    ("full", "full", False, False),
    ("full+cache", "full", True, False),
    ("stream", "stream", False, False),
    ("stream+cache", "stream", True, False),
    ("batch", "stream", True, True),
)

# The eight bench variant flavours, best-first by construction: the
# lead combination satisfies the desired profile, the tail ones only
# the worst-acceptable bound.  A document with V variants per axis
# takes the first V.
_VARIANT_FLAVOURS: "tuple[tuple[ColorMode, int], ...]" = (
    (ColorMode.COLOR, 25),
    (ColorMode.COLOR, 15),
    (ColorMode.COLOR, 10),
    (ColorMode.GREY, 25),
    (ColorMode.GREY, 15),
    (ColorMode.GREY, 10),
    (ColorMode.COLOR, 5),
    (ColorMode.GREY, 5),
)

_SERVER_IDS = ("server-a", "server-b", "server-c")
_DURATION_S = 30.0
_ZIPF_EXPONENT = 1.2
_SCHEDULE_SEED = 1996
_CATALOGUE_ROUNDS = 24
_CATALOGUE_MAX_OFFERS = 64


@dataclass(frozen=True)
class _Cell:
    """One matrix cell: a document shape plus catalogue knobs."""

    variants: int
    axes: int
    documents: int = 1
    rounds: "int | None" = None
    max_offers: "int | None" = None

    @property
    def offer_count(self) -> int:
        return self.variants ** self.axes

    def default_rounds(self) -> int:
        if self.rounds is not None:
            return self.rounds
        if self.documents > 1:
            return _CATALOGUE_ROUNDS
        # The larger cells get *more* rounds, not fewer: the amortised
        # configurations (cache, batch) need enough rounds past the
        # shared plan to show their steady state, and the full-sort
        # configs stay bounded (~seconds) even at 4096 offers.
        # Enough rounds that sub-millisecond cells measure a window the
        # scheduler can't dominate.
        return 32 if self.offer_count <= 256 else 24


def _matrix(quick: bool) -> "list[_Cell]":
    standard = QUICK_CELLS if quick else BENCH_CELLS
    catalogue = QUICK_CATALOGUE_CELLS if quick else CATALOGUE_CELLS
    cells = [_Cell(variants, axes) for variants, axes in standard]
    cells.extend(
        _Cell(
            variants, axes, documents=documents,
            max_offers=_CATALOGUE_MAX_OFFERS,
        )
        for variants, axes, documents in catalogue
    )
    return cells


def _bench_document(variants: int, axes: int, index: int = 0) -> Document:
    """A synthetic document with ``axes`` video monomedia of
    ``variants`` variants each — offer space of ``variants**axes``.
    ``index`` distinguishes catalogue siblings of the same shape."""
    document_id = f"doc.bench-{variants}x{axes}" + (
        f".d{index + 1}" if index else ""
    )
    builder = DocumentBuilder(
        document_id,
        f"bench article {variants} variants x {axes} axes #{index + 1}",
    )
    for axis in range(axes):
        mono = MonomediaBuilder(
            f"{document_id}.m{axis + 1}",
            Medium.VIDEO,
            f"segment {axis + 1}",
            _DURATION_S,
        )
        for vindex, (color, frame_rate) in enumerate(
            _VARIANT_FLAVOURS[:variants]
        ):
            mono.add_variant(
                Codecs.MPEG1,
                VideoQoS(
                    color=color,
                    frame_rate=frame_rate,
                    resolution=TV_RESOLUTION,
                ),
                _SERVER_IDS[(axis + vindex + index) % len(_SERVER_IDS)],
            )
        builder.add(mono)
    return builder.copyright(0.25).build()


def _bench_profile() -> UserProfile:
    """Desires the lead flavour, tolerates the worst one, with a cost
    ceiling high enough that the best offers commit on first attempt —
    the head-heavy case the streaming path is built for."""
    return UserProfile(
        name="bench",
        desired=MMProfile(
            video=VideoQoS(
                color=ColorMode.COLOR, frame_rate=25, resolution=TV_RESOLUTION
            ),
            cost=500.0,
        ),
        worst=MMProfile(
            video=VideoQoS(
                color=ColorMode.GREY, frame_rate=5, resolution=TV_RESOLUTION
            ),
            cost=500.0,
        ),
        importance=default_importance(),
    )


def _zipf_schedule(documents: int, rounds: int) -> "list[int]":
    """The request schedule: which document each round asks for.

    Single-document cells are the degenerate schedule; catalogue cells
    draw from a Zipf popularity over document ranks with a fixed seed,
    so every configuration (and every bench run) replays the identical
    request sequence.
    """
    if documents <= 1:
        return [0] * rounds
    rng = make_rng(_SCHEDULE_SEED)
    ranks = np.arange(1, documents + 1, dtype=np.float64)
    weights = ranks ** -_ZIPF_EXPONENT
    weights /= weights.sum()
    return [int(i) for i in rng.choice(documents, size=rounds, p=weights)]


def _deployment(
    documents: "list[Document]", offer_mode: str, cached: bool
) -> "tuple[QoSManager, ClientMachine]":
    servers = {
        server_id: MediaServer(
            server_id,
            disk=DiskModel(),
            admission=AdmissionController(
                disk=DiskModel(), nic_bps=622e6, max_streams=256
            ),
        )
        for server_id in _SERVER_IDS
    }
    topology = Topology()
    for server in servers.values():
        topology.connect(
            server.access_point, "backbone", 622e6,
            link_id=f"L-{server.server_id}",
        )
    topology.connect("client-net", "backbone", 622e6, link_id="L-client")
    database = MetadataDatabase()
    for document in documents:
        database.insert_document(document)
    # Every configuration starts cold: the process-wide shared cache is
    # flushed before each run so a cached configuration never inherits
    # a predecessor's entries.
    reset_shared_cache()
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
        clock=ManualClock(),
        offer_mode=offer_mode,
        cache=shared_cache() if cached else None,
    )
    client = ClientMachine("bench-client", access_point="client-net")
    return manager, client


@dataclass
class _ConfigRun:
    signatures: "list[tuple[str, str | None, int]]"
    latencies_s: "list[float]"
    offers_classified: int
    elapsed_s: float

    def metrics(self, rounds: int) -> "dict[str, float]":
        ordered = sorted(self.latencies_s)

        def pct(q: float) -> float:
            if not ordered:
                return 0.0
            index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
            return ordered[index]

        elapsed = max(self.elapsed_s, 1e-9)
        return {
            "negotiations_per_s": rounds / elapsed,
            "offers_per_s": self.offers_classified / elapsed,
            "latency_p50_ms": pct(0.50) * 1e3,
            "latency_p99_ms": pct(0.99) * 1e3,
            "elapsed_s": elapsed,
        }


def _signature(
    result: NegotiationResult,
) -> "tuple[str, str | None, int]":
    return (
        result.status.name,
        result.chosen.offer.offer_id if result.chosen else None,
        result.attempts,
    )


def _run_config(
    documents: "list[Document]",
    schedule: "list[int]",
    offer_mode: str,
    cached: bool,
    *,
    batched: bool = False,
    max_offers: "int | None" = None,
) -> _ConfigRun:
    manager, client = _deployment(documents, offer_mode, cached)
    profile = _bench_profile()
    # One unmeasured warm-up round per requested document: the cached
    # configurations are meant to measure the steady state, not the
    # first-request miss.
    for index in dict.fromkeys(schedule):
        warmup = manager.negotiate(
            documents[index].document_id, profile, client,
            max_offers=max_offers,
        )
        if warmup.commitment is not None:
            warmup.commitment.reject(manager.clock.now())

    signatures: "list[tuple[str, str | None, int]]" = []
    latencies: "list[float]" = []
    offers = 0
    if batched:
        requests = [
            BatchRequest(
                document=documents[index].document_id,
                profile=profile,
                client=client,
                max_offers=max_offers,
                offer_mode=offer_mode,
            )
            for index in schedule
        ]
        marks: "list[float]" = []

        def after_each(
            request: BatchRequest, result: NegotiationResult
        ) -> None:
            # Reject before the next member walks, so the batched run
            # replays the sequential run's exact ledger states.
            if result.commitment is not None:
                result.commitment.reject(manager.clock.now())
            marks.append(perf_counter())  # reprolint: disable=REP001,REP011 -- bench wall time

        started = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
        results = negotiate_batch(manager, requests, after_each=after_each)
        elapsed = perf_counter() - started  # reprolint: disable=REP001,REP011 -- bench wall time
        # Per-member latency from the after_each marks; the first mark
        # also carries the per-class planning, which is the honest
        # accounting — batching front-loads the shared work.
        previous = started
        for mark in marks:
            latencies.append(mark - previous)
            previous = mark
        for result in results:
            offers += len(result.classified)
            signatures.append(_signature(result))
    else:
        started = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
        for index in schedule:
            t0 = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
            result = manager.negotiate(
                documents[index].document_id, profile, client,
                max_offers=max_offers,
            )
            t1 = perf_counter()  # reprolint: disable=REP001,REP011 -- bench wall time
            latencies.append(t1 - t0)
            offers += len(result.classified)
            signatures.append(_signature(result))
            if result.commitment is not None:
                result.commitment.reject(manager.clock.now())
        elapsed = perf_counter() - started  # reprolint: disable=REP001,REP011 -- bench wall time
    return _ConfigRun(
        signatures=signatures,
        latencies_s=latencies,
        offers_classified=offers,
        elapsed_s=elapsed,
    )


def run_bench(
    *, quick: bool = False, rounds: "int | None" = None
) -> "dict[str, object]":
    """Run the full matrix; return the report dict (see module doc)."""
    report_cells: "list[dict[str, object]]" = []
    all_equivalent = True
    speedups: "dict[str, float]" = {}
    six_axis_batch_nps: "float | None" = None

    for cell in _matrix(quick):
        documents = [
            _bench_document(cell.variants, cell.axes, index)
            for index in range(cell.documents)
        ]
        cell_rounds = rounds or cell.default_rounds()
        schedule = _zipf_schedule(cell.documents, cell_rounds)
        runs: "dict[str, _ConfigRun]" = {}
        for label, offer_mode, cached, batched in CONFIGS:
            if (
                cell.offer_count > FULL_SORT_CEILING
                and offer_mode == "full"
            ):
                continue
            runs[label] = _run_config(
                documents, schedule, offer_mode, cached,
                batched=batched, max_offers=cell.max_offers,
            )
        baseline_label = "full" if "full" in runs else "stream"
        baseline = runs[baseline_label].signatures
        equivalent = all(
            run.signatures == baseline for run in runs.values()
        )
        all_equivalent = all_equivalent and equivalent
        cell_report: "dict[str, object]" = {
            "variants": cell.variants,
            "axes": cell.axes,
            "documents": cell.documents,
            "offer_count": cell.offer_count,
            "rounds": cell_rounds,
            "max_offers": cell.max_offers,
            "baseline_config": baseline_label,
            "first_committed": baseline[0][1] if baseline else None,
            "status": baseline[0][0] if baseline else None,
            "equivalent": equivalent,
            "configs": {
                label: run.metrics(cell_rounds)
                for label, run in runs.items()
            },
        }
        report_cells.append(cell_report)
        if (
            (cell.variants, cell.axes) == SIX_AXIS_CELL
            and cell.documents == 1
        ):
            full = runs["full"].metrics(cell_rounds)["negotiations_per_s"]
            fast = runs["stream+cache"].metrics(cell_rounds)[
                "negotiations_per_s"
            ]
            speedups["six_axis_stream_cache_vs_full"] = (
                fast / full if full else 0.0
            )
            six_axis_batch_nps = runs["batch"].metrics(cell_rounds)[
                "negotiations_per_s"
            ]

    six_axis_speedup = speedups.get("six_axis_stream_cache_vs_full")
    batch_speedup = (
        six_axis_batch_nps / COMMITTED_BEST_NPS
        if six_axis_batch_nps is not None
        else None
    )
    return {
        "schema": "bench-negotiation/v1",
        "command": "python -m repro bench" + (" --quick" if quick else ""),
        "quick": quick,
        "cells": report_cells,
        "summary": {
            "all_outcomes_equivalent": all_equivalent,
            "six_axis_cell": list(SIX_AXIS_CELL),
            "six_axis_speedup_stream_cache_vs_full": six_axis_speedup,
            "speedup_threshold": SPEEDUP_THRESHOLD,
            "six_axis_speedup_ok": (
                six_axis_speedup is None
                or six_axis_speedup >= SPEEDUP_THRESHOLD
            ),
            "six_axis_batch_negotiations_per_s": six_axis_batch_nps,
            "committed_best_negotiations_per_s": COMMITTED_BEST_NPS,
            "six_axis_batch_speedup_vs_committed": batch_speedup,
            "six_axis_batch_ok": (
                batch_speedup is None
                or batch_speedup >= SPEEDUP_THRESHOLD
            ),
        },
    }


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help="small 4-cell matrix (CI-friendly)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="override measured rounds per cell",
    )
    parser.add_argument(
        "--output", default="BENCH_negotiation.json",
        help="report path (default: %(default)s)",
    )
    parser.add_argument(
        "--require-speedup", action="store_true",
        help="also fail when the 6-axis streaming+cache or batch "
        "speedup is below the threshold (only meaningful on quiet "
        "machines)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_negotiation.json to regress against; "
        "fail when any shared cell/config drops below the tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="F",
        help="tolerated fractional throughput drop vs the baseline "
        "(default %(default)s)",
    )


def run_bench_command(args: argparse.Namespace) -> int:
    # Read the baseline before the run (and before --output lands):
    # CI regresses a fresh measurement against the *committed* file
    # even when both flags name the same path.
    baseline = None
    if args.baseline is not None:
        try:
            baseline = bench_throughputs(load_baseline(args.baseline))
        except ValidationError as error:
            print(f"bad --baseline: {error}")
            return 2
    report = run_bench(quick=args.quick, rounds=args.rounds)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    summary = report["summary"]
    assert isinstance(summary, dict)
    speedup = summary["six_axis_speedup_stream_cache_vs_full"]
    batch_speedup = summary["six_axis_batch_speedup_vs_committed"]
    print(f"wrote {args.output}")
    for cell in report["cells"]:  # type: ignore[union-attr]
        assert isinstance(cell, dict)
        configs = cell["configs"]
        assert isinstance(configs, dict)
        line = ", ".join(
            f"{label}={metrics['negotiations_per_s']:.0f}/s"
            for label, metrics in configs.items()
        )
        shape = f"{cell['variants']}^{cell['axes']}"
        if cell["documents"] != 1:
            shape += f"x{cell['documents']}"
        print(
            f"  {shape}"
            f" ({cell['offer_count']} offers, {cell['status']}):"
            f" {line}"
        )
    if speedup is not None:
        print(
            f"6-axis streaming+cache speedup vs full sort: {speedup:.1f}x "
            f"(threshold {SPEEDUP_THRESHOLD}x)"
        )
    if batch_speedup is not None:
        print(
            f"6-axis batch vs committed best "
            f"({COMMITTED_BEST_NPS:.0f}/s): {batch_speedup:.1f}x "
            f"(threshold {SPEEDUP_THRESHOLD}x)"
        )
    if not summary["all_outcomes_equivalent"]:
        print("FAIL: negotiation outcomes diverged between configurations")
        return 1
    if args.require_speedup and not (
        summary["six_axis_speedup_ok"] and summary["six_axis_batch_ok"]
    ):
        print("FAIL: 6-axis speedup below threshold")
        return 1
    if baseline is not None:
        try:
            regressions = compare_throughputs(
                bench_throughputs(report), baseline,
                tolerance=args.tolerance,
            )
        except ValidationError as error:
            print(f"bad --baseline: {error}")
            return 2
        if regressions:
            print(f"FAIL: throughput regressed vs {args.baseline}")
            for regression in regressions:
                print(f"  {regression.render()}")
            return 1
        print(f"no throughput regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="negotiation throughput benchmark "
        "(streaming vs full sort vs batch, cache on/off)",
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
