"""Negotiation throughput layer: caching, fingerprints and the bench.

The §4 pipeline is a pure function of (document, client, profile,
tariffs) until step 5 touches shared resource state; this package
exploits that purity.  :mod:`repro.perf.cache` memoises the expensive
pure prefixes (offer spaces, classification arrays) across requests;
:mod:`repro.perf.fingerprint` provides the value-identity keys;
:mod:`repro.perf.bench` measures the result and writes the repo's
benchmark trajectory point (``BENCH_negotiation.json``);
:mod:`repro.perf.baseline` regresses a fresh report against the
committed one, the CI bench-regression gate.
"""

from .baseline import (
    Regression,
    bench_throughputs,
    compare_throughputs,
    load_baseline,
    load_throughputs,
)
from .cache import (
    CacheStats,
    NegotiationCache,
    reset_shared_cache,
    shared_cache,
)
from .fingerprint import (
    client_fingerprint,
    cost_model_fingerprint,
    importance_fingerprint,
    mapper_fingerprint,
    profile_fingerprint,
)

__all__ = [
    "CacheStats",
    "NegotiationCache",
    "Regression",
    "bench_throughputs",
    "compare_throughputs",
    "load_baseline",
    "load_throughputs",
    "client_fingerprint",
    "cost_model_fingerprint",
    "importance_fingerprint",
    "mapper_fingerprint",
    "profile_fingerprint",
    "reset_shared_cache",
    "shared_cache",
]
