"""Command-line interface.

Subcommands exercising the library from a shell:

* ``demo`` — negotiate one article end to end on a built-in deployment,
  printing the GUI windows along the way;
* ``windows`` — render the §8 GUI windows for a stock profile;
* ``sweep`` — run a seeded workload through a chosen negotiator and
  print the outcome statistics;
* ``chaos`` — run negotiation + playout under a seeded fault plan
  (server crashes, link flaps, transient refusals, lost releases,
  manager crashes) and report blocking/recovery metrics;
* ``recover`` — kill the QoS manager at a chosen crash opportunity,
  then replay the write-ahead reservation journal and report the
  reconciliation (zero leaked capacity, preserved sessions);
* ``trace`` — run one fully traced negotiation and print the span tree
  plus the per-step offer accounting (drop counts and reasons);
* ``stats`` — run a telemetry-instrumented chaos or workload run and
  print the metrics snapshot plus the journal reconciliation audit;
* ``storm`` — brown out a server at peak load over hundreds of
  concurrent playouts and report how the admission gate and the storm
  controller absorbed the renegotiation storm (``--json`` emits the
  backpressure-on/off comparison);
* ``load`` — sweep the concurrent negotiation service over a seeded
  arrival process (Poisson/diurnal/flash crowd) at rising load
  multipliers and print the saturation curve; exits nonzero unless the
  service degrades gracefully at 2× saturation (honest hints, no
  starvation, zero leaks);
* ``slo`` — replay a seeded load cell with the flight recorder armed
  and grade it against the shipped SLO set (burn-rate alerts, error
  budgets); the ``brownout`` scenario must breach and exit nonzero;
* ``profile`` — extract the per-negotiation critical path from the
  span tree at rising load multipliers, name the top bottleneck, and
  optionally write a folded-stack flamegraph;
* ``experiments`` — list the E-series experiment index;
* ``bench`` — run the negotiation throughput benchmark (streaming vs
  full sort, cache on/off) and write ``BENCH_negotiation.json``;
* ``lint`` — run the reprolint project-invariant checks (REP001..REP011;
  ``--deep`` adds the whole-program resource-flow rules REP012..REP017
  with a content-hashed extract cache, ``--changed`` restricts the run
  to the files touched in the git diff), exiting nonzero on findings;
* ``typecheck`` — run the strict mypy gate over the typed core
  (skipped gracefully when mypy is not installed).

Invoke as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

EXPERIMENT_INDEX = [
    ("E1", "Sec 5.2.1 static negotiation status", "benchmarks/test_e01_sns_example.py"),
    ("E2", "Sec 5.2.2 setting 1: OIF + order", "benchmarks/test_e02_oif_setting1.py"),
    ("E3", "Sec 5.2.2 setting 2: cost importance 0", "benchmarks/test_e03_oif_setting2.py"),
    ("E4", "Sec 5.2.2 setting 3: QoS importance 0", "benchmarks/test_e04_oif_setting3.py"),
    ("E5", "Sec 6 QoS mapping formulas", "benchmarks/test_e05_qos_mapping.py"),
    ("E6", "Sec 7 Eq.1 cost decomposition", "benchmarks/test_e06_cost_model.py"),
    ("E7", "blocking vs load, smart vs baselines", "benchmarks/test_e07_blocking_vs_load.py"),
    ("E8", "status mix vs variant richness", "benchmarks/test_e08_status_distribution.py"),
    ("E9", "adaptation vs none under congestion", "benchmarks/test_e09_adaptation.py"),
    ("E10", "classification scalability", "benchmarks/test_e10_scalability.py"),
    ("E11", "cost limits greediness", "benchmarks/test_e11_cost_greediness.py"),
    ("E12", "choicePeriod timer + renegotiation", "benchmarks/test_e12_confirmation_renegotiation.py"),
    ("E13", "Figures 1-7 regenerated", "benchmarks/test_e13_figures.py"),
    ("E14", "ablation: SCAN vs FCFS", "benchmarks/test_e14_scan_vs_fcfs.py"),
    ("E15", "ablation: admission control", "benchmarks/test_e15_admission_ablation.py"),
    ("E16", "ablation: policy vs satisfaction", "benchmarks/test_e16_policy_satisfaction.py"),
    ("E17", "extension: future reservations", "benchmarks/test_e17_future_reservations.py"),
    ("E18", "extension: multi-domain hierarchy", "benchmarks/test_e18_multidomain.py"),
    ("E19", "data-path stalls vs admission", "benchmarks/test_e19_datapath_stalls.py"),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPDC-5 '96 QoS negotiation procedure, reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_telemetry_argument(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--telemetry", default=None, metavar="PATH",
            help="write the run's trace spans to PATH as JSONL",
        )

    demo = sub.add_parser("demo", help="negotiate one article end to end")
    demo.add_argument("--profile", default="balanced",
                      help="stock profile name (default: balanced)")
    demo.add_argument("--documents", type=int, default=3,
                      help="catalogue size of the built-in deployment")
    add_telemetry_argument(demo)

    windows = sub.add_parser("windows", help="render the Sec 8 GUI windows")
    windows.add_argument("--profile", default="balanced")

    sweep = sub.add_parser("sweep", help="run a seeded workload")
    sweep.add_argument("--negotiator", default="smart",
                       choices=["smart", "static", "first-fit", "cost-only",
                                "qos-only"])
    sweep.add_argument("--rate", type=float, default=0.1,
                       help="arrival rate, requests/s")
    sweep.add_argument("--horizon", type=float, default=900.0,
                       help="workload horizon, seconds")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--servers", type=int, default=2)
    sweep.add_argument("--no-adaptation", action="store_true")
    add_telemetry_argument(sweep)

    chaos = sub.add_parser(
        "chaos", help="run negotiation + playout under a fault plan"
    )
    chaos.add_argument(
        "--fault", action="append", default=[], dest="faults",
        metavar="KIND:TARGET:START:DUR[:VALUE]",
        help="injectable fault, e.g. crash:server-a:10:30, "
             "flap:L-client-1:40:20:0.9, slow:server-b:0:60:2.5, "
             "refuse:server-a:0:-:2, lost-release:server-a:0:120, "
             "crash-manager:manager:0:-:4 (die at the 4th crash "
             "opportunity); repeatable (default: a demo crash + link flap)",
    )
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--requests", type=int, default=4)
    chaos.add_argument("--servers", type=int, default=3)
    chaos.add_argument("--spacing", type=float, default=5.0,
                       help="request inter-arrival time, seconds")
    chaos.add_argument("--profile", default="balanced")
    chaos.add_argument("--lease-ttl", type=float, default=120.0)
    chaos.add_argument("--max-attempts", type=int, default=3,
                       help="retry attempts per reservation call")
    add_telemetry_argument(chaos)

    recover = sub.add_parser(
        "recover",
        help="crash the QoS manager mid-negotiation, replay the journal",
    )
    recover.add_argument("--seed", type=int, default=1)
    recover.add_argument("--requests", type=int, default=3)
    recover.add_argument("--servers", type=int, default=3)
    recover.add_argument("--spacing", type=float, default=5.0,
                         help="request inter-arrival time, seconds")
    recover.add_argument("--profile", default="balanced")
    recover.add_argument(
        "--crash-after", type=int, default=4, metavar="K",
        help="die at the K-th crash opportunity (journal append or "
             "admission call; default 4)",
    )
    recover.add_argument(
        "--journal", default=None, metavar="PATH",
        help="file-backed journal path (default: in-memory); the restart "
             "reopens it from disk through the torn-tail reader",
    )
    recover.add_argument("--journal-describe", action="store_true",
                         help="print the journal's record timeline")
    add_telemetry_argument(recover)

    trace = sub.add_parser(
        "trace",
        help="run one fully traced negotiation and print the span tree",
    )
    trace.add_argument("--seed", type=int, default=7,
                       help="telemetry seed (trace/span ids; default 7)")
    trace.add_argument("--profile", default="balanced")
    trace.add_argument("--documents", type=int, default=3)
    trace.add_argument("--document", default=None,
                       help="document id (default: the first in the catalogue)")
    trace.add_argument("--json", action="store_true",
                       help="print the negotiation report as JSON")
    add_telemetry_argument(trace)

    stats = sub.add_parser(
        "stats",
        help="run an instrumented chaos or workload run, print metrics",
    )
    stats.add_argument("--mode", default="chaos",
                       choices=["chaos", "workload"])
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument("--requests", type=int, default=4,
                       help="chaos-mode request count")
    stats.add_argument("--servers", type=int, default=3)
    stats.add_argument("--rate", type=float, default=0.1,
                       help="workload-mode arrival rate, requests/s")
    stats.add_argument("--horizon", type=float, default=300.0,
                       help="workload-mode horizon, seconds")
    stats.add_argument("--profile", default="balanced")
    stats.add_argument("--json", action="store_true",
                       help="emit one canonical JSON document")
    add_telemetry_argument(stats)

    storm = sub.add_parser(
        "storm",
        help="brown out a server at peak load, survive the "
             "renegotiation storm",
    )
    storm.add_argument("--sessions", type=int, default=200,
                       help="concurrent playout requests (default 200)")
    storm.add_argument("--late-requests", type=int, default=40,
                       help="arrivals during the brownout itself")
    storm.add_argument("--severity", type=float, default=0.4,
                       help="fraction of capacity lost (default 0.4)")
    storm.add_argument("--brownout-start", type=float, default=90.0,
                       metavar="S", help="brownout onset, seconds")
    storm.add_argument("--brownout-duration", type=float, default=90.0,
                       metavar="S", help="brownout length, seconds")
    storm.add_argument("--servers", type=int, default=3)
    storm.add_argument("--seed", type=int, default=1)
    storm.add_argument("--profile", default="balanced")
    storm.add_argument(
        "--no-backpressure", action="store_true",
        help="run the bare deployment only (the thundering-herd "
             "baseline)",
    )
    storm.add_argument(
        "--compare", action="store_true",
        help="run backpressure on AND off from the same seed, print "
             "the comparison",
    )
    storm.add_argument(
        "--json", action="store_true",
        help="emit the backpressure-on/off comparison as JSON "
             "(implies --compare)",
    )
    add_telemetry_argument(storm)

    load = sub.add_parser(
        "load",
        help="sweep the concurrent negotiation service to saturation "
             "and audit the overload behaviour",
    )
    load.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "diurnal", "flash"),
        help="arrival process (default poisson)",
    )
    load.add_argument("--rate", type=float, default=1.0, metavar="R",
                      help="base arrival rate, negotiations/s "
                           "(default 1.0)")
    load.add_argument("--horizon", type=float, default=120.0,
                      metavar="S", help="arrival window, seconds "
                                        "(default 120)")
    load.add_argument(
        "--multipliers", default="0.5,1,2,4,8", metavar="M,M,...",
        help="comma-separated offered-load multipliers swept over the "
             "base rate (default 0.5,1,2,4,8)",
    )
    load.add_argument("--servers", type=int, default=3)
    load.add_argument("--clients", type=int, default=12)
    load.add_argument("--seed", type=int, default=1,
                      help="arrivals + user behaviour seed")
    load.add_argument("--scheduler-seed", type=int, default=0,
                      help="cooperative-scheduler interleaving seed")
    load.add_argument("--profile", default="balanced")
    load.add_argument(
        "--no-gate", action="store_true",
        help="bypass the admission gate (every arrival starts a "
             "negotiation task immediately)",
    )
    load.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON on stdout",
    )
    load.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH "
             "(e.g. BENCH_load.json)",
    )
    load.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_load.json to regress against; fail when "
             "any shared multiplier's served rate drops below the "
             "tolerance",
    )
    load.add_argument(
        "--tolerance", type=float, default=0.20, metavar="F",
        help="tolerated fractional served-rate drop vs the baseline "
             "(default %(default)s)",
    )

    slo = sub.add_parser(
        "slo",
        help="replay a seeded load cell with the flight recorder armed "
             "and grade it against the shipped SLO set; exits nonzero "
             "when a burn-rate alert pages or an error budget is spent",
    )
    slo.add_argument(
        "--scenario", default="nominal",
        choices=("nominal", "brownout"),
        help="nominal = the green path (must pass); brownout = a "
             "mid-run capacity loss across every server (must breach)",
    )
    slo.add_argument("--multiplier", type=float, default=1.0,
                     help="offered-load multiplier (default 1.0)")
    slo.add_argument("--rate", type=float, default=1.0, metavar="R",
                     help="base arrival rate, negotiations/s")
    slo.add_argument("--horizon", type=float, default=120.0, metavar="S",
                     help="arrival window, seconds (default 120)")
    slo.add_argument("--seed", type=int, default=1,
                     help="arrivals + user behaviour seed")
    slo.add_argument("--scheduler-seed", type=int, default=0,
                     help="cooperative-scheduler interleaving seed")
    slo.add_argument("--telemetry-seed", type=int, default=7,
                     help="trace/span id seed (default 7)")
    slo.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="flight-recorder scrape interval, simulated "
                          "seconds (default 1)")
    slo.add_argument("--severity", type=float, default=0.85,
                     help="brownout capacity loss fraction (default 0.85)")
    slo.add_argument("--brownout-start", type=float, default=30.0,
                     metavar="S", help="brownout onset, seconds")
    slo.add_argument("--brownout-duration", type=float, default=60.0,
                     metavar="S", help="brownout length, seconds")
    slo.add_argument("--timeseries", default=None, metavar="PATH",
                     help="write the flight-recorder time series to "
                          "PATH as canonical JSONL")
    slo.add_argument("--flamegraph", default=None, metavar="PATH",
                     help="write the critical-path folded stacks to "
                          "PATH (flamegraph.pl/speedscope format)")
    slo.add_argument("--report", default=None, metavar="PATH",
                     help="write the full graded run as JSON to PATH")
    slo.add_argument("--json", action="store_true",
                     help="emit the graded run as JSON on stdout")

    profile = sub.add_parser(
        "profile",
        help="profile the negotiation critical path per load "
             "multiplier and name the top bottleneck",
    )
    profile.add_argument(
        "--multipliers", default="0.5,1,2,4", metavar="M,M,...",
        help="comma-separated offered-load multipliers "
             "(default 0.5,1,2,4)",
    )
    profile.add_argument("--rate", type=float, default=1.0, metavar="R",
                         help="base arrival rate, negotiations/s")
    profile.add_argument("--horizon", type=float, default=120.0,
                         metavar="S",
                         help="arrival window, seconds (default 120)")
    profile.add_argument("--seed", type=int, default=1,
                         help="arrivals + user behaviour seed")
    profile.add_argument("--scheduler-seed", type=int, default=0,
                         help="cooperative-scheduler interleaving seed")
    profile.add_argument("--telemetry-seed", type=int, default=7,
                         help="trace/span id seed (default 7)")
    profile.add_argument("--flamegraph", default=None, metavar="PATH",
                         help="write the folded stacks of every "
                              "multiplier (section-prefixed) to PATH")
    profile.add_argument("--json", action="store_true",
                         help="emit the per-multiplier profiles as JSON")

    sub.add_parser("experiments", help="list the experiment index")

    from .perf.bench import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="negotiation throughput benchmark "
             "(streaming vs full sort, cache on/off)",
    )
    add_bench_arguments(bench)

    from .analysis.cli import add_lint_arguments, add_typecheck_arguments

    lint = sub.add_parser(
        "lint", help="run the reprolint project-invariant checks"
    )
    add_lint_arguments(lint)

    typecheck = sub.add_parser(
        "typecheck", help="run the strict mypy gate over the typed core"
    )
    add_typecheck_arguments(typecheck)

    report = sub.add_parser(
        "report", help="concatenate the regenerated experiment tables"
    )
    report.add_argument(
        "--out-dir", default="benchmarks/out",
        help="directory the benchmark suite wrote its tables to",
    )
    return parser


def _attach_jsonl(scenario, path):
    """Wire a JSONL span exporter into a telemetry-enabled scenario;
    returns the exporter (or None when telemetry is off / no path)."""
    if path is None or scenario.telemetry is None:
        return None
    from .telemetry import JsonlSpanExporter

    exporter = JsonlSpanExporter(path)
    scenario.telemetry.tracer.add_exporter(exporter)
    return exporter


def _cmd_demo(args) -> int:
    from .client import ClientMachine
    from .core import ProfileManager
    from .sim import ScenarioSpec, build_scenario
    from .ui import information_window, main_window

    scenario = build_scenario(
        ScenarioSpec(document_count=args.documents),
        telemetry_seed=0 if args.telemetry is not None else None,
    )
    exporter = _attach_jsonl(scenario, args.telemetry)
    profiles = ProfileManager()
    if args.profile not in profiles:
        print(f"unknown profile {args.profile!r}; have {profiles.names()}",
              file=sys.stderr)
        return 2
    profile = profiles.get(args.profile)
    client = scenario.any_client()
    print(main_window(profiles))
    result = scenario.manager.negotiate(
        scenario.document_ids()[0], profile, client
    )
    print()
    print(information_window(result))
    if result.commitment is not None:
        result.commitment.confirm(scenario.clock.now())
        runtime = scenario.runtime()
        session = runtime.start_session(
            result, profile, client, confirm=False
        )
        scenario.loop.run()
        print(f"\nsession {session.session_id}: {session.state.value} "
              f"(offer {result.chosen.offer.offer_id}, "
              f"cost {result.chosen.offer.cost})")
    if exporter is not None:
        exporter.close()
        print(f"\n[trace: {exporter.exported} spans -> {args.telemetry}]")
    return 0


def _cmd_windows(args) -> int:
    from .core import ProfileManager
    from .ui import (
        audio_profile_window,
        cost_profile_window,
        main_window,
        profile_component_window,
        video_profile_window,
    )

    profiles = ProfileManager()
    if args.profile not in profiles:
        print(f"unknown profile {args.profile!r}; have {profiles.names()}",
              file=sys.stderr)
        return 2
    profile = profiles.get(args.profile)
    for window in (
        main_window(profiles),
        profile_component_window(profile),
        video_profile_window(profile),
        audio_profile_window(profile),
        cost_profile_window(profile),
    ):
        print(window)
        print()
    return 0


def _cmd_sweep(args) -> int:
    from .sim import (
        CostOnlyNegotiator,
        FirstFitNegotiator,
        QoSOnlyNegotiator,
        RunConfig,
        ScenarioSpec,
        SmartNegotiator,
        StaticNegotiator,
        WorkloadSpec,
        build_scenario,
        generate_requests,
        run_workload,
    )
    from .sim.metrics import RunStats
    from .util.tables import render_table

    by_name = {
        "smart": SmartNegotiator,
        "static": StaticNegotiator,
        "first-fit": FirstFitNegotiator,
        "cost-only": CostOnlyNegotiator,
        "qos-only": QoSOnlyNegotiator,
    }
    scenario = build_scenario(
        ScenarioSpec(server_count=args.servers),
        telemetry_seed=args.seed if args.telemetry is not None else None,
    )
    exporter = _attach_jsonl(scenario, args.telemetry)
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=args.rate, horizon_s=args.horizon),
        scenario.document_ids(),
        list(scenario.clients),
        rng=args.seed,
    )
    stats = run_workload(
        scenario,
        by_name[args.negotiator](scenario.manager),
        requests,
        config=RunConfig(adaptation_enabled=not args.no_adaptation),
    )
    print(
        render_table(
            RunStats.summary_headers(),
            [stats.summary_row(args.negotiator)],
            title=f"{len(requests)} requests, seed {args.seed}",
        )
    )
    print()
    for status, count in sorted(
        stats.statuses.as_dict().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {status:<22} {count}")
    if exporter is not None:
        exporter.close()
        print(f"\n[trace: {exporter.exported} spans -> {args.telemetry}]")
    return 0


def _cmd_chaos(args) -> int:
    from .core import ProfileManager
    from .faults import FaultPlan, RetryPolicy, parse_fault_spec
    from .sim import ChaosSpec, ScenarioSpec, run_chaos
    from .util.errors import NotFoundError, SimulationError, ValidationError

    if args.profile not in ProfileManager():
        print(f"unknown profile {args.profile!r}; have "
              f"{ProfileManager().names()}", file=sys.stderr)
        return 2
    if args.faults:
        try:
            faults = tuple(parse_fault_spec(text) for text in args.faults)
        except ValidationError as error:
            print(f"bad fault spec: {error}", file=sys.stderr)
            return 2
    else:
        # Demonstration plan: crash the first server during the early
        # commitments, flap the first client's access link mid-playout.
        faults = (
            parse_fault_spec("crash:server-a:2:20"),
            parse_fault_spec("flap:L-client-1:30:15"),
        )
    plan = FaultPlan(faults, seed=args.seed)
    try:
        spec = ChaosSpec(
            scenario=ScenarioSpec(server_count=args.servers),
            plan=plan,
            seed=args.seed,
            requests=args.requests,
            request_spacing_s=args.spacing,
            profile_name=args.profile,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            lease_ttl_s=args.lease_ttl,
            telemetry_seed=args.seed if args.telemetry is not None else None,
            telemetry_jsonl=args.telemetry,
        )
        print(plan.describe())
        print()
        report, _scenario = run_chaos(spec)
    except (NotFoundError, SimulationError, ValidationError) as error:
        print(f"bad chaos run: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if not report.clean_teardown:
        print("\nWARNING: reservations leaked at teardown", file=sys.stderr)
        return 1
    return 0


def _cmd_recover(args) -> int:
    from .core import ProfileManager
    from .sim import CrashRecoverySpec, ScenarioSpec, run_crash_recovery
    from .util.errors import NotFoundError, SimulationError, ValidationError

    if args.profile not in ProfileManager():
        print(f"unknown profile {args.profile!r}; have "
              f"{ProfileManager().names()}", file=sys.stderr)
        return 2
    try:
        spec = CrashRecoverySpec(
            scenario=ScenarioSpec(server_count=args.servers),
            seed=args.seed,
            requests=args.requests,
            request_spacing_s=args.spacing,
            profile_name=args.profile,
            crash_opportunity=args.crash_after,
            journal_path=args.journal,
            telemetry_seed=args.seed if args.telemetry is not None else None,
            telemetry_jsonl=args.telemetry,
        )
        report, _scenario = run_crash_recovery(spec)
    except (NotFoundError, SimulationError, ValidationError) as error:
        print(f"bad recovery run: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.journal_describe:
        print()
        print(report.journal_timeline)
    if not report.crashed:
        print("\nNOTE: the crash opportunity was never reached; try a "
              "smaller --crash-after", file=sys.stderr)
    if report.recovery is not None and not report.recovery.leak_free:
        print("\nWARNING: capacity leaked through recovery", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    import json

    from .core import ProfileManager
    from .sim import ScenarioSpec, build_scenario
    from .telemetry import (
        InMemorySpanExporter,
        NegotiationReport,
        render_span_tree,
    )
    from .util.errors import (
        ConfirmationTimeout,
        NotFoundError,
        SimulationError,
        ValidationError,
    )

    profiles = ProfileManager()
    if args.profile not in profiles:
        print(f"unknown profile {args.profile!r}; have {profiles.names()}",
              file=sys.stderr)
        return 2
    profile = profiles.get(args.profile)
    jsonl = None
    try:
        scenario = build_scenario(
            ScenarioSpec(document_count=args.documents),
            telemetry_seed=args.seed,
        )
        memory = InMemorySpanExporter()
        scenario.telemetry.tracer.add_exporter(memory)
        jsonl = _attach_jsonl(scenario, args.telemetry)
        document_id = args.document or scenario.document_ids()[0]
        client = scenario.any_client()
        result = scenario.manager.negotiate(document_id, profile, client)
    except (NotFoundError, SimulationError, ValidationError) as error:
        if jsonl is not None:
            jsonl.close()
        print(f"bad trace run: {error}", file=sys.stderr)
        return 2
    if result.commitment is not None:
        try:
            result.commitment.confirm(scenario.clock.now())
        except ConfirmationTimeout:
            pass
        result.commitment.release()
    if jsonl is not None:
        jsonl.close()
    # Rebuild the report from the exported spans so the post-negotiation
    # step-6 confirmation span is included.
    report = NegotiationReport.from_spans(memory.spans)
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True, indent=2))
        return 0
    print(render_span_tree(memory.spans))
    print()
    print(report.render())
    if jsonl is not None:
        print(f"\n[trace: {jsonl.exported} spans -> {args.telemetry}]")
    return 0


def _cmd_stats(args) -> int:
    import json

    from .core import ProfileManager
    from .telemetry import reconcile_journal
    from .util.errors import NotFoundError, SimulationError, ValidationError

    if args.profile not in ProfileManager():
        print(f"unknown profile {args.profile!r}; have "
              f"{ProfileManager().names()}", file=sys.stderr)
        return 2

    try:
        if args.mode == "chaos":
            from .faults import FaultPlan, RetryPolicy, parse_fault_spec
            from .sim import ChaosSpec, ScenarioSpec, run_chaos

            plan = FaultPlan(
                (
                    parse_fault_spec("crash:server-a:2:20"),
                    parse_fault_spec("flap:L-client-1:30:15"),
                ),
                seed=args.seed,
            )
            spec = ChaosSpec(
                scenario=ScenarioSpec(server_count=args.servers),
                plan=plan,
                seed=args.seed,
                requests=args.requests,
                profile_name=args.profile,
                retry=RetryPolicy(),
                telemetry_seed=args.seed,
                telemetry_jsonl=args.telemetry,
            )
            chaos_report, scenario = run_chaos(spec)
            clean = chaos_report.clean_teardown
            extra = {
                "clean_teardown": clean,
                "negotiations": chaos_report.negotiations,
                "breaker_opens": chaos_report.breaker_opens,
                "retries": chaos_report.retries,
                "manager_crashes": chaos_report.manager_crashes,
            }
        else:
            from .sim import (
                RunConfig,
                ScenarioSpec,
                SmartNegotiator,
                WorkloadSpec,
                build_scenario,
                generate_requests,
                run_workload,
            )

            scenario = build_scenario(
                ScenarioSpec(server_count=args.servers),
                telemetry_seed=args.seed,
            )
            jsonl = _attach_jsonl(scenario, args.telemetry)
            requests = generate_requests(
                WorkloadSpec(arrival_rate_per_s=args.rate,
                             horizon_s=args.horizon),
                scenario.document_ids(),
                list(scenario.clients),
                rng=args.seed,
            )
            run_workload(
                scenario, SmartNegotiator(scenario.manager), requests,
                config=RunConfig(),
            )
            if jsonl is not None:
                jsonl.close()
            clean = (
                sum(s.stream_count for s in scenario.servers.values()) == 0
                and scenario.transport.flow_count == 0
            )
            extra = {"clean_teardown": clean, "requests": len(requests)}
    except (NotFoundError, SimulationError, ValidationError) as error:
        print(f"bad stats run: {error}", file=sys.stderr)
        return 2

    telemetry = scenario.telemetry
    journal = scenario.manager.committer.journal
    reconciliation = (
        reconcile_journal(journal, telemetry.metrics)
        if journal is not None
        else None
    )
    balanced = reconciliation is None or reconciliation["balanced"]
    if args.json:
        document = {
            "mode": args.mode,
            "seed": args.seed,
            "run": extra,
            "metrics": telemetry.metrics.snapshot(),
            "reconciliation": reconciliation,
        }
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        print(telemetry.metrics.render())
        if reconciliation is not None:
            print()
            print("journal reconciliation:")
            for key, value in sorted(reconciliation.items()):
                print(f"  {key}: {value}")
        print()
        for key, value in sorted(extra.items()):
            print(f"  {key}: {value}")
    if not clean or not balanced:
        print("\nWARNING: run leaked reservations or the journal does "
              "not reconcile", file=sys.stderr)
        return 1
    return 0


def _cmd_storm(args) -> int:
    import json

    from .core import ProfileManager
    from .sim import StormSpec, run_storm, run_storm_comparison
    from .util.errors import NotFoundError, SimulationError, ValidationError

    if args.profile not in ProfileManager():
        print(f"unknown profile {args.profile!r}; have "
              f"{ProfileManager().names()}", file=sys.stderr)
        return 2
    if args.no_backpressure and (args.compare or args.json):
        print("--no-backpressure cannot be combined with "
              "--compare/--json", file=sys.stderr)
        return 2
    try:
        spec = StormSpec(
            sessions=args.sessions,
            late_requests=args.late_requests,
            servers=args.servers,
            severity=args.severity,
            brownout_start_s=args.brownout_start,
            brownout_duration_s=args.brownout_duration,
            seed=args.seed,
            profile_name=args.profile,
            backpressure=not args.no_backpressure,
            telemetry_seed=args.seed if args.telemetry is not None else None,
            telemetry_jsonl=args.telemetry,
        )
        if args.compare or args.json:
            comparison = run_storm_comparison(spec)
            if args.json:
                print(json.dumps(
                    comparison.as_dict(), sort_keys=True, indent=2
                ))
            else:
                print(comparison.with_backpressure.render())
                print()
                print(comparison.render())
            report = comparison.with_backpressure
        else:
            report, _scenario = run_storm(spec)
            if not args.json:
                print(report.render())
    except (NotFoundError, SimulationError, ValidationError) as error:
        print(f"bad storm run: {error}", file=sys.stderr)
        return 2
    if not report.survived:
        print("\nWARNING: the storm was not survived (stuck sessions, "
              "leaks, or an unbalanced journal)", file=sys.stderr)
        return 1
    return 0


def _cmd_load(args) -> int:
    import json

    from .core import ProfileManager
    from .sim import ArrivalSpec, LoadSpec, run_load
    from .util.errors import NotFoundError, SimulationError, ValidationError

    if args.profile not in ProfileManager():
        print(f"unknown profile {args.profile!r}; have "
              f"{ProfileManager().names()}", file=sys.stderr)
        return 2
    try:
        multipliers = tuple(
            float(part) for part in args.multipliers.split(",") if part
        )
    except ValueError:
        print(f"bad --multipliers {args.multipliers!r}: expected "
              "comma-separated numbers", file=sys.stderr)
        return 2
    # Read the baseline before the run (and before --output lands), so
    # CI can regress a fresh sweep against the committed file even
    # when both flags name BENCH_load.json.
    baseline = None
    if args.baseline is not None:
        from .perf import load_baseline, load_throughputs

        try:
            baseline = load_throughputs(load_baseline(args.baseline))
        except ValidationError as error:
            print(f"bad --baseline: {error}", file=sys.stderr)
            return 2
    try:
        spec = LoadSpec(
            arrival=ArrivalSpec(
                kind=args.arrivals,
                rate_per_s=args.rate,
                horizon_s=args.horizon,
            ),
            servers=args.servers,
            clients=args.clients,
            seed=args.seed,
            scheduler_seed=args.scheduler_seed,
            multipliers=multipliers,
            use_gate=not args.no_gate,
            profile_name=args.profile,
        )
        report = run_load(spec)
    except (NotFoundError, SimulationError, ValidationError) as error:
        print(f"bad load run: {error}", file=sys.stderr)
        return 2
    payload = json.dumps(report.as_dict(), sort_keys=True, indent=2)
    if args.output is not None:
        import pathlib

        pathlib.Path(args.output).write_text(
            payload + "\n", encoding="utf-8"
        )
    if args.json:
        print(payload)
    else:
        print(report.render())
    if not report.graceful_at_2x:
        print("\nWARNING: the service did not degrade gracefully at "
              "2x saturation (starved clients, leaked reservations, "
              "dishonest hints, or the sweep never reached 2x "
              "capacity)", file=sys.stderr)
        return 1
    if baseline is not None:
        from .perf import compare_throughputs, load_throughputs

        try:
            regressions = compare_throughputs(
                load_throughputs(report.as_dict()), baseline,
                tolerance=args.tolerance,
            )
        except ValidationError as error:
            print(f"bad --tolerance: {error}", file=sys.stderr)
            return 2
        if regressions:
            print(f"\nFAIL: served rate regressed vs {args.baseline}",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  {regression.render()}", file=sys.stderr)
            return 1
        print(f"no served-rate regression vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_slo(args) -> int:
    import json
    import pathlib

    from .sim import SloRunSpec, run_slo
    from .telemetry import write_flamegraph
    from .util.errors import SimulationError, ValidationError

    try:
        spec = SloRunSpec(
            scenario=args.scenario,
            multiplier=args.multiplier,
            rate_per_s=args.rate,
            horizon_s=args.horizon,
            seed=args.seed,
            scheduler_seed=args.scheduler_seed,
            telemetry_seed=args.telemetry_seed,
            interval_s=args.interval,
            severity=args.severity,
            brownout_start_s=args.brownout_start,
            brownout_duration_s=args.brownout_duration,
        )
        report = run_slo(spec)
    except (SimulationError, ValidationError) as error:
        print(f"bad slo run: {error}", file=sys.stderr)
        return 2
    artifacts = []
    if args.timeseries is not None and report.recorder is not None:
        written = report.recorder.write_jsonl(args.timeseries)
        artifacts.append(f"{written} lines -> {args.timeseries}")
    if args.flamegraph is not None:
        lines = write_flamegraph(
            args.flamegraph, {args.scenario: report.paths}
        )
        artifacts.append(f"{lines} stacks -> {args.flamegraph}")
    if args.report is not None:
        pathlib.Path(args.report).write_text(
            json.dumps(report.as_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        artifacts.append(f"report -> {args.report}")
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True, indent=2))
    else:
        print(report.slo.render())
        print()
        print(report.profile.render())
        for note in artifacts:
            print(f"[{note}]")
    if report.breached:
        print(f"\nWARNING: SLO breach on the {args.scenario} scenario "
              "(burn-rate page or exhausted error budget)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    import json

    from .sim import ArrivalSpec, LoadSpec, run_load_cell_instrumented
    from .telemetry import (
        extract_critical_paths,
        profile_spans,
        write_flamegraph,
    )
    from .util.errors import SimulationError, ValidationError

    try:
        multipliers = tuple(
            float(part) for part in args.multipliers.split(",") if part
        )
    except ValueError:
        print(f"bad --multipliers {args.multipliers!r}: expected "
              "comma-separated numbers", file=sys.stderr)
        return 2
    try:
        spec = LoadSpec(
            arrival=ArrivalSpec(
                kind="poisson",
                rate_per_s=args.rate,
                horizon_s=args.horizon,
            ),
            seed=args.seed,
            scheduler_seed=args.scheduler_seed,
            telemetry_seed=args.telemetry_seed,
            multipliers=multipliers,
        )
    except (SimulationError, ValidationError) as error:
        print(f"bad profile run: {error}", file=sys.stderr)
        return 2
    sections = {}
    documents = {}
    for multiplier in multipliers:
        try:
            run = run_load_cell_instrumented(
                spec, multiplier, collect_spans=True
            )
        except (SimulationError, ValidationError) as error:
            print(f"bad profile run at x{multiplier:g}: {error}",
                  file=sys.stderr)
            return 2
        profile = profile_spans(run.spans)
        section = f"x{multiplier:g}"
        sections[section] = extract_critical_paths(run.spans)
        documents[section] = profile.as_dict()
        if not args.json:
            print(profile.render())
            bottleneck = profile.top_bottleneck
            if bottleneck is not None:
                print(f"x{multiplier:g}: top bottleneck {bottleneck} "
                      f"({profile.share(bottleneck) * 100:.1f}% of "
                      f"{profile.total_s:.3f}s)")
            print()
    if args.json:
        print(json.dumps(documents, sort_keys=True, indent=2))
    if args.flamegraph is not None:
        lines = write_flamegraph(args.flamegraph, sections)
        if not args.json:
            print(f"[{lines} stacks -> {args.flamegraph}]")
    return 0


def _cmd_experiments(_args) -> int:
    from .util.tables import render_table

    print(
        render_table(
            ("id", "experiment", "bench target"),
            EXPERIMENT_INDEX,
            title="Experiment index (see EXPERIMENTS.md)",
        )
    )
    return 0


def _cmd_report(args) -> int:
    import pathlib

    out_dir = pathlib.Path(args.out_dir)
    if not out_dir.is_dir():
        print(
            f"no results at {out_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    tables = sorted(out_dir.glob("*.txt"))
    if not tables:
        print(f"no tables in {out_dir}", file=sys.stderr)
        return 2
    for path in tables:
        print(path.read_text(encoding="utf-8").rstrip())
        print()
    print(f"[{len(tables)} experiment tables from {out_dir}]")
    return 0


def _cmd_bench(args) -> int:
    from .perf.bench import run_bench_command

    return run_bench_command(args)


def _cmd_lint(args) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


def _cmd_typecheck(args) -> int:
    from .analysis.cli import run_typecheck

    return run_typecheck(args)


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "windows": _cmd_windows,
        "sweep": _cmd_sweep,
        "chaos": _cmd_chaos,
        "recover": _cmd_recover,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "storm": _cmd_storm,
        "load": _cmd_load,
        "slo": _cmd_slo,
        "profile": _cmd_profile,
        "experiments": _cmd_experiments,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "lint": _cmd_lint,
        "typecheck": _cmd_typecheck,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
