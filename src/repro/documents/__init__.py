"""Multimedia document model (paper §2, Figure 1).

Documents are composed of monomedia; each monomedia has physical
variants differing in codec, quality, size and server location; a
multimedia document additionally carries spatial/temporal
synchronization constraints.
"""

from .builder import (
    DEFAULT_RATE_MODEL,
    DocumentBuilder,
    MediaRateModel,
    MonomediaBuilder,
    make_news_article,
)
from .catalog import DocumentCatalog
from .document import Document
from .media import (
    CONTINUOUS_MEDIA,
    DISCRETE_MEDIA,
    FROZEN_FRAME_RATE,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    MIN_RESOLUTION,
    TV_FRAME_RATE,
    TV_RESOLUTION,
    VISUAL_MEDIA,
    AudioGrade,
    Codec,
    Codecs,
    ColorMode,
    FrameRate,
    Language,
    Medium,
    Resolution,
)
from .monomedia import BlockStats, Monomedia, Variant
from .quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    MediaQoS,
    TextQoS,
    VideoQoS,
    qos_class_for,
)
from .synchronization import (
    ScreenRegion,
    SpatialLayout,
    SyncConstraints,
    TemporalRelation,
    TemporalRelationKind,
)

__all__ = [name for name in dir() if not name.startswith("_")]
