"""Builders that synthesize realistic documents and variant grids.

The paper's prototype stored real MPEG/MJPEG files whose block-length
statistics lived in the MM database [Vit 95].  We synthesize equivalent
metadata from a small media-rate model: frame sizes follow the pixel
count, bits-per-pixel of the colour mode, the codec's compression ratio
and its burstiness.  Only the *metadata* matters to negotiation (§6 uses
block lengths and rates, never pixel data), so this preserves behaviour.

:class:`MonomediaBuilder` accumulates variants for one monomedia;
:class:`DocumentBuilder` assembles monomedia plus synchronization into a
:class:`~repro.documents.document.Document`.  ``make_news_article`` is
the canonical factory used across examples, tests and benchmarks: a
video + audio + image + text article with a quality/server grid of
variants, mirroring the news-on-demand catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..util.errors import DocumentError
from ..util.units import Money, dollars
from ..util.validation import check_positive
from .document import Document
from .media import (
    AudioGrade,
    Codec,
    Codecs,
    ColorMode,
    Language,
    Medium,
    TV_RESOLUTION,
)
from .monomedia import BlockStats, Monomedia, Variant
from .quality import AudioQoS, ImageQoS, MediaQoS, TextQoS, VideoQoS
from .synchronization import (
    ScreenRegion,
    SpatialLayout,
    SyncConstraints,
    TemporalRelation,
    TemporalRelationKind,
)

__all__ = [
    "MediaRateModel",
    "MonomediaBuilder",
    "DocumentBuilder",
    "make_news_article",
]


# Per-codec (compression ratio, peak-to-mean burstiness).  Inter-frame
# codecs compress harder but are burstier (I vs P/B frames).
_VIDEO_CODEC_MODEL: dict[str, tuple[float, float]] = {
    "MPEG-1": (1 / 60.0, 3.0),
    "MPEG-2": (1 / 45.0, 3.0),
    "M-JPEG": (1 / 12.0, 1.5),
    "H.261": (1 / 80.0, 2.0),
    "RAW-VIDEO": (1.0, 1.0),
}

_AUDIO_CODEC_MODEL: dict[str, tuple[float, float]] = {
    "PCM": (1.0, 1.0),
    "ADPCM": (1 / 4.0, 1.0),
    "MPEG-AUDIO": (1 / 8.0, 1.3),
}

_BITS_PER_PIXEL: dict[ColorMode, float] = {
    ColorMode.BLACK_AND_WHITE: 1.0,
    ColorMode.GREY: 8.0,
    ColorMode.COLOR: 16.0,
    ColorMode.SUPER_COLOR: 24.0,
}

AUDIO_BLOCKS_PER_SECOND = 50.0  # 20 ms audio frames, the common framing

_ASPECT = 3 / 4  # lines per pixels-per-line, 4:3 video


@dataclass(frozen=True, slots=True)
class MediaRateModel:
    """Derives plausible block statistics for synthetic variants."""

    video_codec_model: dict[str, tuple[float, float]] | None = None
    audio_codec_model: dict[str, tuple[float, float]] | None = None

    def _video_model(self, codec: Codec) -> tuple[float, float]:
        table = self.video_codec_model or _VIDEO_CODEC_MODEL
        try:
            return table[codec.name]
        except KeyError:
            raise DocumentError(f"no rate model for video codec {codec}") from None

    def _audio_model(self, codec: Codec) -> tuple[float, float]:
        table = self.audio_codec_model or _AUDIO_CODEC_MODEL
        try:
            return table[codec.name]
        except KeyError:
            raise DocumentError(f"no rate model for audio codec {codec}") from None

    def video_block_stats(self, codec: Codec, qos: VideoQoS) -> BlockStats:
        compression, burstiness = self._video_model(codec)
        pixels = qos.resolution * qos.resolution * _ASPECT
        avg = pixels * _BITS_PER_PIXEL[qos.color] * compression
        return BlockStats(
            max_block_bits=avg * burstiness,
            avg_block_bits=avg,
            blocks_per_second=float(qos.frame_rate),
        )

    def audio_block_stats(self, codec: Codec, qos: AudioQoS) -> BlockStats:
        compression, burstiness = self._audio_model(codec)
        grade = qos.grade
        bits_per_second = (
            grade.sample_rate_hz * grade.bits_per_sample * grade.channels
        )
        avg = bits_per_second * compression / AUDIO_BLOCKS_PER_SECOND
        return BlockStats(
            max_block_bits=avg * burstiness,
            avg_block_bits=avg,
            blocks_per_second=AUDIO_BLOCKS_PER_SECOND,
        )

    def image_size_bits(self, qos: ImageQoS) -> float:
        pixels = qos.resolution * qos.resolution * _ASPECT
        return max(pixels * _BITS_PER_PIXEL[qos.color] / 10.0, 1.0)  # JPEG ~10:1

    def text_size_bits(self, length_chars: float = 4_000) -> float:
        return length_chars * 8.0


DEFAULT_RATE_MODEL = MediaRateModel()


class MonomediaBuilder:
    """Accumulates variants for one monomedia, deriving sizes and block
    statistics from :class:`MediaRateModel`."""

    def __init__(
        self,
        monomedia_id: str,
        medium: "Medium | str",
        title: str,
        duration_s: float,
        *,
        rate_model: MediaRateModel = DEFAULT_RATE_MODEL,
    ) -> None:
        self.monomedia_id = monomedia_id
        self.medium = Medium.parse(medium)
        self.title = title
        self.duration_s = check_positive(duration_s, "duration_s")
        self.rate_model = rate_model
        self._variants: list[Variant] = []
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self.monomedia_id}.v{self._counter}"

    def add_variant(
        self,
        codec: Codec,
        qos: MediaQoS,
        server_id: str,
        *,
        variant_id: str | None = None,
        size_bits: float | None = None,
        block_stats: BlockStats | None = None,
        duration_s: float | None = None,
    ) -> "MonomediaBuilder":
        """Add one variant; sizes/blocks are derived when omitted."""
        duration = duration_s if duration_s is not None else self.duration_s
        if block_stats is None:
            if self.medium is Medium.VIDEO:
                block_stats = self.rate_model.video_block_stats(codec, qos)  # type: ignore[arg-type]
            elif self.medium is Medium.AUDIO:
                block_stats = self.rate_model.audio_block_stats(codec, qos)  # type: ignore[arg-type]
            else:
                size = size_bits
                if size is None:
                    if self.medium is Medium.TEXT:
                        size = self.rate_model.text_size_bits()
                    else:
                        size = self.rate_model.image_size_bits(qos)  # type: ignore[arg-type]
                block_stats = BlockStats(
                    max_block_bits=size, avg_block_bits=size,
                    blocks_per_second=0.0,
                )
        if size_bits is None:
            if block_stats.blocks_per_second > 0:
                size_bits = (
                    block_stats.avg_block_bits
                    * block_stats.blocks_per_second
                    * duration
                )
            else:
                size_bits = block_stats.avg_block_bits
        self._variants.append(
            Variant(
                variant_id=variant_id or self._next_id(),
                monomedia_id=self.monomedia_id,
                codec=codec,
                qos=qos,
                size_bits=size_bits,
                block_stats=block_stats,
                server_id=server_id,
                duration_s=duration,
            )
        )
        return self

    def build(self) -> Monomedia:
        return Monomedia(
            monomedia_id=self.monomedia_id,
            medium=self.medium,
            title=self.title,
            duration_s=self.duration_s,
            variants=tuple(self._variants),
        )


class DocumentBuilder:
    """Assembles monomedia + synchronization into a document."""

    def __init__(self, document_id: str, title: str) -> None:
        self.document_id = document_id
        self.title = title
        self._components: list[Monomedia] = []
        self._temporal: list[TemporalRelation] = []
        self._regions: dict[str, ScreenRegion] = {}
        self._copyright: Money = Money.zero()

    def add(self, monomedia: "Monomedia | MonomediaBuilder") -> "DocumentBuilder":
        if isinstance(monomedia, MonomediaBuilder):
            monomedia = monomedia.build()
        self._components.append(monomedia)
        return self

    def parallel(self, first: str, second: str) -> "DocumentBuilder":
        self._temporal.append(
            TemporalRelation(TemporalRelationKind.PARALLEL, first, second)
        )
        return self

    def sequential(self, first: str, second: str, offset_s: float = 0.0) -> "DocumentBuilder":
        self._temporal.append(
            TemporalRelation(
                TemporalRelationKind.SEQUENTIAL, first, second, offset_s
            )
        )
        return self

    def overlaps(self, first: str, second: str, offset_s: float) -> "DocumentBuilder":
        self._temporal.append(
            TemporalRelation(TemporalRelationKind.OVERLAPS, first, second, offset_s)
        )
        return self

    def place(self, monomedia_id: str, region: ScreenRegion) -> "DocumentBuilder":
        self._regions[monomedia_id] = region
        return self

    def copyright(self, cost: "Money | float") -> "DocumentBuilder":
        self._copyright = dollars(cost)
        return self

    def build(self) -> Document:
        layout = SpatialLayout(self._regions) if self._regions else None
        return Document(
            document_id=self.document_id,
            title=self.title,
            components=tuple(self._components),
            sync=SyncConstraints(tuple(self._temporal), layout),
            copyright_cost=self._copyright,
        )


def make_news_article(
    document_id: str = "doc.news-1",
    *,
    title: str = "CITR broadband services launch",
    duration_s: float = 120.0,
    video_servers: Sequence[str] = ("server-a", "server-b"),
    audio_servers: Sequence[str] = ("server-a",),
    still_server: str = "server-a",
    frame_rates: Sequence[int] = (25, 15),
    colors: Sequence[ColorMode] = (ColorMode.COLOR, ColorMode.GREY),
    resolutions: Sequence[int] = (TV_RESOLUTION,),
    video_codecs: Sequence[Codec] = (Codecs.MPEG1, Codecs.MJPEG),
    audio_grades: Sequence[AudioGrade] = (AudioGrade.CD, AudioGrade.TELEPHONE),
    languages: Sequence[Language] = (Language.ENGLISH, Language.FRENCH),
    copyright_cost: float = 0.5,
    include_image: bool = True,
    include_text: bool = True,
) -> Document:
    """Build the canonical news article with a grid of variants.

    The variant grid is the cartesian product of the given quality axes,
    with servers assigned round-robin so variants of the same monomedia
    live on different machines — exactly the situation in which choosing
    a configuration of system components matters.
    """
    video = MonomediaBuilder(
        f"{document_id}.video", Medium.VIDEO, "anchor video", duration_s
    )
    index = 0
    for codec in video_codecs:
        for color in colors:
            for frame_rate in frame_rates:
                for resolution in resolutions:
                    server = video_servers[index % len(video_servers)]
                    index += 1
                    video.add_variant(
                        codec,
                        VideoQoS(color=color, frame_rate=frame_rate,
                                 resolution=resolution),
                        server,
                    )

    audio = MonomediaBuilder(
        f"{document_id}.audio", Medium.AUDIO, "soundtrack", duration_s
    )
    index = 0
    for grade in audio_grades:
        for language in languages:
            server = audio_servers[index % len(audio_servers)]
            index += 1
            audio.add_variant(
                Codecs.MPEG_AUDIO,
                AudioQoS(grade=grade, language=language),
                server,
            )

    builder = (
        DocumentBuilder(document_id, title)
        .add(video)
        .add(audio)
        .parallel(f"{document_id}.video", f"{document_id}.audio")
        .copyright(copyright_cost)
        .place(
            f"{document_id}.video", ScreenRegion(0, 0, TV_RESOLUTION, 540)
        )
    )

    if include_image:
        image = MonomediaBuilder(
            f"{document_id}.image", Medium.IMAGE, "headline photo", duration_s
        )
        for color in (ColorMode.COLOR, ColorMode.GREY):
            image.add_variant(
                Codecs.JPEG,
                ImageQoS(color=color, resolution=TV_RESOLUTION),
                still_server,
            )
        builder.add(image).place(
            f"{document_id}.image", ScreenRegion(TV_RESOLUTION, 0, 320, 240)
        )

    if include_text:
        text = MonomediaBuilder(
            f"{document_id}.text", Medium.TEXT, "article body", duration_s
        )
        for language in languages:
            text.add_variant(
                Codecs.HTML, TextQoS(language=language), still_server
            )
        builder.add(text).place(
            f"{document_id}.text", ScreenRegion(TV_RESOLUTION, 240, 320, 300)
        )

    return builder.build()
