"""Monomedia objects and their physical variants (paper §2).

A :class:`Monomedia` is one logical media object of a document (the
anchor video of a news article, its audio track, a still photo, the text
body).  A :class:`Variant` is one *physical representation* of a
monomedia: §2 lists the static parameters variants differ in — "the
format of the coding, the size of the file, the QoS parameters
associated with the file ... and the localization of the file".  Copies
of the same file on different servers are also variants.

Variants additionally carry the block-length statistics (§6: "The block
length, namely the maximum and the average length, of a monomedia of the
document, is stored in the MM database") from which the QoS mapping
computes ``maxBitRate`` and ``avgBitRate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.errors import ValidationError, VariantError
from ..util.validation import check_name, check_non_negative, check_positive
from .media import Codec, Medium
from .quality import MediaQoS, qos_class_for

__all__ = ["BlockStats", "Variant", "Monomedia"]


@dataclass(frozen=True, slots=True)
class BlockStats:
    """Block-length statistics of a stored media file.

    For continuous media the file is "a suite of blocks, e.g. video
    frames and audio samples, on a disk" (§6) whose length varies with
    the compression scheme and content.  ``blocks_per_second`` is the
    playout block rate (the frame rate for video, the audio-frame rate
    for audio); discrete media use a single block and a zero rate.
    """

    max_block_bits: float
    avg_block_bits: float
    blocks_per_second: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.max_block_bits, "max_block_bits")
        check_positive(self.avg_block_bits, "avg_block_bits")
        check_non_negative(self.blocks_per_second, "blocks_per_second")
        if self.avg_block_bits > self.max_block_bits:
            raise ValidationError(
                f"avg_block_bits ({self.avg_block_bits}) exceeds "
                f"max_block_bits ({self.max_block_bits})"
            )

    @property
    def burstiness(self) -> float:
        """Peak-to-mean block-length ratio (1.0 for CBR streams)."""
        return self.max_block_bits / self.avg_block_bits

    def scaled(self, factor: float) -> "BlockStats":
        """Block stats for a stream whose blocks shrink/grow by ``factor``
        (used when deriving lower-quality variants)."""
        check_positive(factor, "factor")
        return BlockStats(
            max_block_bits=self.max_block_bits * factor,
            avg_block_bits=self.avg_block_bits * factor,
            blocks_per_second=self.blocks_per_second,
        )


@dataclass(frozen=True, slots=True)
class Variant:
    """One physical representation of a monomedia (§2).

    ``server_id`` is the localization: the media server holding the
    file.  ``qos`` is the user-perceived quality the variant delivers.
    ``duration_s`` is the playout duration ``D_i`` used in the Eq. 1
    cost computation; still images and text use their display dwell
    time, the document builder defaults it to the document length.
    """

    variant_id: str
    monomedia_id: str
    codec: Codec
    qos: MediaQoS
    size_bits: float
    block_stats: BlockStats
    server_id: str
    duration_s: float

    def __post_init__(self) -> None:
        check_name(self.variant_id, "variant_id")
        check_name(self.monomedia_id, "monomedia_id")
        check_name(self.server_id, "server_id")
        check_positive(self.size_bits, "size_bits")
        check_positive(self.duration_s, "duration_s")
        if not isinstance(self.codec, Codec):
            raise VariantError(f"codec must be a Codec, got {self.codec!r}")
        expected = qos_class_for(self.codec.medium)
        if not isinstance(self.qos, expected):
            raise VariantError(
                f"variant {self.variant_id!r}: codec {self.codec} is "
                f"{self.codec.medium.value} but qos is {type(self.qos).__name__}"
            )

    @property
    def medium(self) -> Medium:
        return self.codec.medium

    def __str__(self) -> str:
        return (
            f"{self.variant_id}[{self.codec} {self.qos} @ {self.server_id}]"
        )


@dataclass(frozen=True, slots=True)
class Monomedia:
    """One logical media object of a document (§2)."""

    monomedia_id: str
    medium: Medium
    title: str
    duration_s: float
    variants: tuple[Variant, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        check_name(self.monomedia_id, "monomedia_id")
        check_name(self.title, "title")
        check_positive(self.duration_s, "duration_s")
        object.__setattr__(self, "medium", Medium.parse(self.medium))
        object.__setattr__(self, "variants", tuple(self.variants))
        seen: set[str] = set()
        for variant in self.variants:
            if not isinstance(variant, Variant):
                raise VariantError(f"not a Variant: {variant!r}")
            if variant.monomedia_id != self.monomedia_id:
                raise VariantError(
                    f"variant {variant.variant_id!r} belongs to "
                    f"{variant.monomedia_id!r}, not {self.monomedia_id!r}"
                )
            if variant.medium is not self.medium:
                raise VariantError(
                    f"variant {variant.variant_id!r} is "
                    f"{variant.medium.value}, monomedia is {self.medium.value}"
                )
            if variant.variant_id in seen:
                raise VariantError(
                    f"duplicate variant id {variant.variant_id!r}"
                )
            seen.add(variant.variant_id)

    def with_variants(self, variants: "tuple[Variant, ...] | list[Variant]") -> "Monomedia":
        """Return a copy holding ``variants`` (monomedia are immutable)."""
        return Monomedia(
            monomedia_id=self.monomedia_id,
            medium=self.medium,
            title=self.title,
            duration_s=self.duration_s,
            variants=tuple(variants),
        )

    def variant(self, variant_id: str) -> Variant:
        for candidate in self.variants:
            if candidate.variant_id == variant_id:
                return candidate
        raise VariantError(
            f"monomedia {self.monomedia_id!r} has no variant {variant_id!r}"
        )

    def __str__(self) -> str:
        return (
            f"{self.monomedia_id}({self.medium.value}, "
            f"{len(self.variants)} variants)"
        )
