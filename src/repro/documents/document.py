"""Multimedia documents (paper §2, Figure 1).

Figure 1: "a document is either a monomedia or a multimedia, and ... a
multimedia is composed of one or more monomedia (aggregation links), and
has attributes which consist of spatial and temporal synchronization
constraints."  We realise both shapes with one class — a document owns
one or more monomedia plus sync constraints; the monomedia case is the
single-component degenerate form (``is_monomedia``).

``copyright_cost`` is the per-document ``CostCop`` term of Eq. 1 (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..util.errors import DocumentError
from ..util.units import Money, dollars
from ..util.validation import check_name, check_non_empty
from .media import Medium
from .monomedia import Monomedia, Variant
from .synchronization import SyncConstraints

__all__ = ["Document"]


@dataclass(frozen=True, slots=True)
class Document:
    """A presentational multimedia document (news article, clip, ...)."""

    document_id: str
    title: str
    components: tuple[Monomedia, ...]
    sync: SyncConstraints = field(default_factory=SyncConstraints)
    copyright_cost: Money = field(default_factory=Money.zero)

    def __post_init__(self) -> None:
        check_name(self.document_id, "document_id")
        check_name(self.title, "title")
        object.__setattr__(self, "components", tuple(self.components))
        check_non_empty(self.components, "document components")
        object.__setattr__(self, "copyright_cost", dollars(self.copyright_cost))
        seen: set[str] = set()
        for component in self.components:
            if not isinstance(component, Monomedia):
                raise DocumentError(f"not a Monomedia: {component!r}")
            if component.monomedia_id in seen:
                raise DocumentError(
                    f"duplicate monomedia id {component.monomedia_id!r}"
                )
            seen.add(component.monomedia_id)
        self.sync.validate_against(seen)

    # -- structure ----------------------------------------------------------

    @property
    def is_monomedia(self) -> bool:
        """Single-component documents are the paper's "monomedia
        document" case."""
        return len(self.components) == 1

    @property
    def is_multimedia(self) -> bool:
        return not self.is_monomedia

    @property
    def monomedia_ids(self) -> tuple[str, ...]:
        return tuple(c.monomedia_id for c in self.components)

    @property
    def media(self) -> tuple[Medium, ...]:
        return tuple(c.medium for c in self.components)

    def component(self, monomedia_id: str) -> Monomedia:
        for candidate in self.components:
            if candidate.monomedia_id == monomedia_id:
                return candidate
        raise DocumentError(
            f"document {self.document_id!r} has no monomedia "
            f"{monomedia_id!r}"
        )

    def components_of(self, medium: "Medium | str") -> tuple[Monomedia, ...]:
        medium = Medium.parse(medium)
        return tuple(c for c in self.components if c.medium is medium)

    # -- variants -------------------------------------------------------------

    def iter_variants(self) -> Iterator[Variant]:
        for component in self.components:
            yield from component.variants

    def variant_counts(self) -> dict[str, int]:
        """Variants available per monomedia — the per-axis sizes of the
        feasible-offer product space enumerated in §4 step 3."""
        return {c.monomedia_id: len(c.variants) for c in self.components}

    def offer_space_size(self) -> int:
        """Number of raw system offers before compatibility filtering:
        the product of per-monomedia variant counts."""
        total = 1
        for component in self.components:
            total *= len(component.variants)
        return total

    # -- timing ----------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Presentation span implied by the sync constraints (the longest
        component when everything is parallel)."""
        durations = {c.monomedia_id: c.duration_s for c in self.components}
        starts = self.sync.start_times(durations)
        return max(starts[mid] + durations[mid] for mid in durations)

    def __str__(self) -> str:
        kinds = ", ".join(m.value for m in self.media)
        return f"{self.document_id}('{self.title}': {kinds})"
