"""Document catalog — the library of playable documents.

The news-on-demand prototype presents the user a list of articles; the
catalog is that list.  It enforces id uniqueness, offers lookup and
filtered iteration, and is the unit the metadata database persists.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..util.errors import DuplicateKeyError, NotFoundError
from .document import Document
from .media import Medium

__all__ = ["DocumentCatalog"]


class DocumentCatalog:
    """An ordered, id-unique collection of documents."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: dict[str, Document] = {}
        for document in documents:
            self.add(document)

    def add(self, document: Document) -> None:
        if document.document_id in self._documents:
            raise DuplicateKeyError(
                f"document {document.document_id!r} already in catalog"
            )
        self._documents[document.document_id] = document

    def replace(self, document: Document) -> None:
        """Insert or overwrite (used when re-deriving variant grids)."""
        self._documents[document.document_id] = document

    def remove(self, document_id: str) -> Document:
        try:
            return self._documents.pop(document_id)
        except KeyError:
            raise NotFoundError(f"no document {document_id!r}") from None

    def get(self, document_id: str) -> Document:
        try:
            return self._documents[document_id]
        except KeyError:
            raise NotFoundError(f"no document {document_id!r}") from None

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    @property
    def document_ids(self) -> tuple[str, ...]:
        return tuple(self._documents)

    def select(
        self, predicate: Callable[[Document], bool]
    ) -> tuple[Document, ...]:
        return tuple(doc for doc in self if predicate(doc))

    def with_medium(self, medium: "Medium | str") -> tuple[Document, ...]:
        medium = Medium.parse(medium)
        return self.select(lambda doc: medium in doc.media)

    def total_variants(self) -> int:
        return sum(
            len(component.variants)
            for doc in self
            for component in doc.components
        )

    def servers_referenced(self) -> frozenset[str]:
        """Every server id any variant points at — the scenario builder
        validates these against the deployed server fleet."""
        return frozenset(
            variant.server_id
            for doc in self
            for variant in doc.iter_variants()
        )
