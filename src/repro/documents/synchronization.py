"""Spatial and temporal synchronization constraints (paper §2, Fig. 1).

Figure 1's OMT model gives a multimedia document "attributes which
consist of spatial and temporal synchronization constraints".  The paper
delegates their enforcement to the U. Ottawa synchronization component
[Lam 94]; the negotiation procedure only needs the constraints to be
*representable* (they travel with the document) and *consistent* (a
malformed document is rejected before negotiation starts).

We model temporal constraints as a small fragment of interval relations
— enough to describe a news article (video parallel with audio, text
sequential after, image overlapping) — and spatial constraints as screen
regions for the visual monomedia.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx

from ..util.errors import SynchronizationError
from ..util.validation import check_non_negative, check_positive

__all__ = [
    "TemporalRelationKind",
    "TemporalRelation",
    "ScreenRegion",
    "SpatialLayout",
    "SyncConstraints",
]


class TemporalRelationKind(enum.Enum):
    """Supported interval relations between two monomedia."""

    PARALLEL = "parallel"      # a and b start together
    SEQUENTIAL = "sequential"  # b starts when a ends (plus offset)
    OVERLAPS = "overlaps"      # b starts `offset` seconds into a


@dataclass(frozen=True, slots=True)
class TemporalRelation:
    """``first`` relates to ``second`` with an optional start offset."""

    kind: TemporalRelationKind
    first: str
    second: str
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise SynchronizationError(
                f"monomedia {self.first!r} cannot be synchronized with itself"
            )
        check_non_negative(self.offset_s, "offset_s")
        if self.kind is TemporalRelationKind.PARALLEL and self.offset_s:
            raise SynchronizationError("parallel relations take no offset")


@dataclass(frozen=True, slots=True)
class ScreenRegion:
    """A rectangle in abstract screen coordinates (pixels)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        check_non_negative(self.x, "x")
        check_non_negative(self.y, "y")
        check_positive(self.width, "width")
        check_positive(self.height, "height")

    @property
    def right(self) -> int:
        return self.x + self.width

    @property
    def bottom(self) -> int:
        return self.y + self.height

    def overlaps(self, other: "ScreenRegion") -> bool:
        return not (
            self.right <= other.x
            or other.right <= self.x
            or self.bottom <= other.y
            or other.bottom <= self.y
        )

    def fits_on(self, screen_width: int, screen_height: int) -> bool:
        return self.right <= screen_width and self.bottom <= screen_height


@dataclass(frozen=True, slots=True)
class SpatialLayout:
    """Screen regions keyed by monomedia id.

    Overlapping regions are rejected — the presentational applications
    the paper targets tile the screen (news window, caption, photo).
    """

    regions: Mapping[str, ScreenRegion]

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", dict(self.regions))
        items = list(self.regions.items())
        for i, (name_a, region_a) in enumerate(items):
            for name_b, region_b in items[i + 1:]:
                if region_a.overlaps(region_b):
                    raise SynchronizationError(
                        f"regions of {name_a!r} and {name_b!r} overlap"
                    )

    def bounding_box(self) -> tuple[int, int]:
        """(width, height) needed to display every region — compared
        against the client screen in the §4 step-1 local negotiation."""
        if not self.regions:
            return (0, 0)
        return (
            max(region.right for region in self.regions.values()),
            max(region.bottom for region in self.regions.values()),
        )


@dataclass(frozen=True, slots=True)
class SyncConstraints:
    """The synchronization attributes of a multimedia document."""

    temporal: tuple[TemporalRelation, ...] = ()
    spatial: SpatialLayout | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "temporal", tuple(self.temporal))

    def validate_against(self, monomedia_ids: Iterable[str]) -> None:
        """Check every referenced monomedia exists and the sequential
        relations are acyclic (a document where A follows B follows A
        can never be scheduled)."""
        known = set(monomedia_ids)
        graph = nx.DiGraph()
        for relation in self.temporal:
            for endpoint in (relation.first, relation.second):
                if endpoint not in known:
                    raise SynchronizationError(
                        f"temporal relation references unknown monomedia "
                        f"{endpoint!r}"
                    )
            if relation.kind is not TemporalRelationKind.PARALLEL:
                graph.add_edge(relation.first, relation.second)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise SynchronizationError(
                f"temporal ordering contains a cycle: {cycle}"
            )
        if self.spatial is not None:
            for name in self.spatial.regions:
                if name not in known:
                    raise SynchronizationError(
                        f"spatial layout references unknown monomedia {name!r}"
                    )

    def start_times(
        self, durations: Mapping[str, float]
    ) -> dict[str, float]:
        """Resolve the start time of every monomedia from the relations.

        Unconstrained monomedia start at 0.  Used by the playout engine
        to schedule stream starts and by the cost model to report the
        presentation span.
        """
        starts: dict[str, float] = {name: 0.0 for name in durations}
        # Iterate to a fixed point; the relation graph is a DAG so at
        # most len(temporal) passes are needed.
        for _ in range(len(self.temporal) + 1):
            changed = False
            for relation in self.temporal:
                first_start = starts[relation.first]
                if relation.kind is TemporalRelationKind.PARALLEL:
                    target = first_start
                elif relation.kind is TemporalRelationKind.SEQUENTIAL:
                    target = (
                        first_start
                        + durations[relation.first]
                        + relation.offset_s
                    )
                else:  # OVERLAPS
                    target = first_start + relation.offset_s
                if starts[relation.second] < target:
                    starts[relation.second] = target
                    changed = True
            if not changed:
                break
        return starts
