"""Per-medium QoS value objects.

A *QoS point* records the user-perceived quality of one monomedia — of a
stored variant (§2: "the QoS parameters associated with the file, e.g.
video color and audio quality") or of a profile bound (§3: desired /
worst-acceptable values).  Putting both sides of the §5 comparison on the
same types makes the static-negotiation-status computation a plain
attribute-wise ``satisfies`` check.

Each class also exposes its attributes as ``(parameter name, value)``
pairs through :meth:`qos_items`, which is what the importance machinery
of §5.2.2 sums over.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Union

from ..util.errors import ValidationError
from .media import (
    AudioGrade,
    ColorMode,
    FrameRate,
    Language,
    Medium,
    Resolution,
)

__all__ = [
    "VideoQoS",
    "AudioQoS",
    "ImageQoS",
    "TextQoS",
    "GraphicQoS",
    "MediaQoS",
    "qos_class_for",
]


class _QoSBase:
    """Shared behaviour of the per-medium QoS points."""

    medium: Medium  # set on each subclass

    def qos_items(self) -> Iterator[tuple[str, object]]:
        """Yield ``(parameter, value)`` pairs in declaration order."""
        for field in fields(self):  # type: ignore[arg-type]
            yield field.name, getattr(self, field.name)

    def satisfies(self, requirement: "_QoSBase") -> bool:
        """True iff every parameter of ``self`` meets or exceeds the one
        in ``requirement`` (the §5.2.1 ACCEPTABLE test, applied against a
        worst-acceptable bound, or the DESIRABLE test against a desired
        bound)."""
        if type(requirement) is not type(self):
            raise ValidationError(
                f"cannot compare {type(self).__name__} against "
                f"{type(requirement).__name__}"
            )
        return all(
            _param_satisfies(name, mine, theirs)
            for (name, mine), (_, theirs) in zip(
                self.qos_items(), requirement.qos_items()
            )
        )

    def violated_parameters(self, requirement: "_QoSBase") -> tuple[str, ...]:
        """Names of parameters where ``self`` falls below ``requirement``
        — used by the profile-component window to colour the offending
        constraint buttons red (§8)."""
        if type(requirement) is not type(self):
            raise ValidationError(
                f"cannot compare {type(self).__name__} against "
                f"{type(requirement).__name__}"
            )
        return tuple(
            name
            for (name, mine), (_, theirs) in zip(
                self.qos_items(), requirement.qos_items()
            )
            if not _param_satisfies(name, mine, theirs)
        )

    def as_dict(self) -> dict:
        return {name: _plain(value) for name, value in self.qos_items()}


def _param_satisfies(name: str, mine: object, theirs: object) -> bool:
    """Per-parameter ordering.  Ordered scales (colour, grade, numeric
    rates/resolutions) compare with >=; languages are an equality match
    (an English track does not "exceed" a French request)."""
    if isinstance(mine, Language) or isinstance(theirs, Language):
        return mine == theirs or theirs == Language.NONE
    return mine >= theirs  # type: ignore[operator]


def _plain(value: object) -> object:
    if isinstance(value, (ColorMode, AudioGrade)):
        return value.name.lower()
    if isinstance(value, Language):
        return value.value
    return value


@dataclass(frozen=True, slots=True)
class VideoQoS(_QoSBase):
    """Video quality point: (colour, frame rate, resolution) — the triple
    of every §5 example."""

    color: ColorMode
    frame_rate: int
    resolution: int

    medium = Medium.VIDEO

    def __post_init__(self) -> None:
        object.__setattr__(self, "color", ColorMode.parse(self.color))
        object.__setattr__(self, "frame_rate", FrameRate.check(self.frame_rate))
        object.__setattr__(self, "resolution", Resolution.check(self.resolution))

    def __str__(self) -> str:
        return f"({self.color}, {self.frame_rate} frames/s, {self.resolution} px)"


@dataclass(frozen=True, slots=True)
class AudioQoS(_QoSBase):
    """Audio quality point: grade anchor plus language."""

    grade: AudioGrade
    language: Language = Language.NONE

    medium = Medium.AUDIO

    def __post_init__(self) -> None:
        object.__setattr__(self, "grade", AudioGrade.parse(self.grade))
        object.__setattr__(self, "language", Language.parse(self.language))

    @property
    def sample_rate_hz(self) -> int:
        return self.grade.sample_rate_hz

    def __str__(self) -> str:
        lang = f", {self.language}" if self.language is not Language.NONE else ""
        return f"({self.grade} audio{lang})"


@dataclass(frozen=True, slots=True)
class ImageQoS(_QoSBase):
    """Still-image quality point."""

    color: ColorMode
    resolution: int

    medium = Medium.IMAGE

    def __post_init__(self) -> None:
        object.__setattr__(self, "color", ColorMode.parse(self.color))
        object.__setattr__(self, "resolution", Resolution.check(self.resolution))

    def __str__(self) -> str:
        return f"({self.color} image, {self.resolution} px)"


@dataclass(frozen=True, slots=True)
class TextQoS(_QoSBase):
    """Text quality point: language is the negotiable parameter."""

    language: Language

    medium = Medium.TEXT

    def __post_init__(self) -> None:
        object.__setattr__(self, "language", Language.parse(self.language))

    def __str__(self) -> str:
        return f"(text, {self.language})"


@dataclass(frozen=True, slots=True)
class GraphicQoS(_QoSBase):
    """Graphic quality point."""

    color: ColorMode
    resolution: int

    medium = Medium.GRAPHIC

    def __post_init__(self) -> None:
        object.__setattr__(self, "color", ColorMode.parse(self.color))
        object.__setattr__(self, "resolution", Resolution.check(self.resolution))

    def __str__(self) -> str:
        return f"({self.color} graphic, {self.resolution} px)"


MediaQoS = Union[VideoQoS, AudioQoS, ImageQoS, TextQoS, GraphicQoS]

_BY_MEDIUM = {
    Medium.VIDEO: VideoQoS,
    Medium.AUDIO: AudioQoS,
    Medium.IMAGE: ImageQoS,
    Medium.TEXT: TextQoS,
    Medium.GRAPHIC: GraphicQoS,
}


def qos_class_for(medium: "Medium | str") -> type:
    """Return the QoS point class for ``medium``."""
    return _BY_MEDIUM[Medium.parse(medium)]
