"""Media taxonomy and user-perceived quality scales.

Section 2 of the paper defines a monomedia as "a text, a still image, an
audio sequence, a graphic or a video sequence"; Section 3 / Figure 2 fix
the user-perceived quality scales the QoS GUI exposes:

* video **colour**: super-colour, colour, grey, black & white;
* video **frame rate**: integer between HDTV rate (60 f/s) and frozen
  rate (1 f/s), with named anchors HDTV / TV / frozen;
* video/image **resolution**: integer between HDTV resolution
  (1920 px/line) and minimal resolution (10 px/line), anchors
  HDTV / TV / minimal;
* **audio quality**: CD and telephone anchors (we add an intermediate
  radio grade so interpolation has an interior point to exercise);
* **language**: the importance examples rank "french over english".

These scales are shared by variants (what the system *has*, §2) and user
profiles (what the user *wants*, §3), which is what makes the offer /
profile comparison of §5 a plain attribute-wise comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..util.errors import UnknownMediumError, ValidationError
from ..util.validation import check_range

__all__ = [
    "Medium",
    "ColorMode",
    "AudioGrade",
    "Language",
    "Codec",
    "FrameRate",
    "Resolution",
    "HDTV_FRAME_RATE",
    "TV_FRAME_RATE",
    "FROZEN_FRAME_RATE",
    "HDTV_RESOLUTION",
    "TV_RESOLUTION",
    "MIN_RESOLUTION",
    "CONTINUOUS_MEDIA",
    "DISCRETE_MEDIA",
    "VISUAL_MEDIA",
]


class Medium(enum.Enum):
    """The five monomedia kinds of Section 2."""

    VIDEO = "video"
    AUDIO = "audio"
    IMAGE = "image"
    TEXT = "text"
    GRAPHIC = "graphic"

    @classmethod
    def parse(cls, name: "str | Medium") -> "Medium":
        if isinstance(name, Medium):
            return name
        try:
            return cls(str(name).strip().lower())
        except ValueError:
            raise UnknownMediumError(
                f"unknown medium {name!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None

    @property
    def is_continuous(self) -> bool:
        """Continuous media are streamed block-by-block (§6)."""
        return self in CONTINUOUS_MEDIA

    @property
    def is_visual(self) -> bool:
        """Visual media occupy screen real estate (spatial layout)."""
        return self in VISUAL_MEDIA


CONTINUOUS_MEDIA = frozenset({Medium.VIDEO, Medium.AUDIO})
DISCRETE_MEDIA = frozenset({Medium.IMAGE, Medium.TEXT, Medium.GRAPHIC})
VISUAL_MEDIA = frozenset(
    {Medium.VIDEO, Medium.IMAGE, Medium.TEXT, Medium.GRAPHIC}
)


class ColorMode(enum.IntEnum):
    """Colour scale, ordered worst → best (the §5.2.1 comparison relies
    on this ordering: colour satisfies a request for grey, not vice
    versa)."""

    BLACK_AND_WHITE = 0
    GREY = 1
    COLOR = 2
    SUPER_COLOR = 3

    @classmethod
    def parse(cls, value: "str | int | ColorMode") -> "ColorMode":
        if isinstance(value, ColorMode):
            return value
        if isinstance(value, int):
            return cls(value)
        key = str(value).strip().lower().replace("&", "_and_").replace(" ", "_")
        aliases = {
            "black_and_white": cls.BLACK_AND_WHITE,
            "bw": cls.BLACK_AND_WHITE,
            "b_and_w": cls.BLACK_AND_WHITE,
            "grey": cls.GREY,
            "gray": cls.GREY,
            "color": cls.COLOR,
            "colour": cls.COLOR,
            "super_color": cls.SUPER_COLOR,
            "super_colour": cls.SUPER_COLOR,
            "supercolor": cls.SUPER_COLOR,
        }
        try:
            return aliases[key]
        except KeyError:
            raise ValidationError(f"unknown colour mode {value!r}") from None

    def __str__(self) -> str:
        return {
            ColorMode.BLACK_AND_WHITE: "black&white",
            ColorMode.GREY: "grey",
            ColorMode.COLOR: "color",
            ColorMode.SUPER_COLOR: "super-color",
        }[self]


class AudioGrade(enum.IntEnum):
    """Audio quality scale, ordered worst → best (Figure 2 anchors CD
    and telephone; radio added as an interior grade)."""

    TELEPHONE = 0
    RADIO = 1
    CD = 2

    @property
    def sample_rate_hz(self) -> int:
        return {
            AudioGrade.TELEPHONE: 8_000,
            AudioGrade.RADIO: 22_050,
            AudioGrade.CD: 44_100,
        }[self]

    @property
    def bits_per_sample(self) -> int:
        return {
            AudioGrade.TELEPHONE: 8,
            AudioGrade.RADIO: 16,
            AudioGrade.CD: 16,
        }[self]

    @property
    def channels(self) -> int:
        return {
            AudioGrade.TELEPHONE: 1,
            AudioGrade.RADIO: 1,
            AudioGrade.CD: 2,
        }[self]

    @classmethod
    def parse(cls, value: "str | int | AudioGrade") -> "AudioGrade":
        if isinstance(value, AudioGrade):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[str(value).strip().upper()]
        except KeyError:
            raise ValidationError(f"unknown audio grade {value!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


class Language(enum.Enum):
    """Languages a monomedia variant may be offered in (§3 example 4)."""

    FRENCH = "fr"
    ENGLISH = "en"
    GERMAN = "de"
    SPANISH = "es"
    NONE = "--"  # language-free media (music, graphics)

    @classmethod
    def parse(cls, value: "str | Language") -> "Language":
        if isinstance(value, Language):
            return value
        key = str(value).strip().lower()
        by_code = {lang.value: lang for lang in cls}
        by_name = {lang.name.lower(): lang for lang in cls}
        if key in by_code:
            return by_code[key]
        if key in by_name:
            return by_name[key]
        raise ValidationError(f"unknown language {value!r}")

    def __str__(self) -> str:
        return self.name.lower()


# -- named numeric anchors (Figure 2) ----------------------------------------

HDTV_FRAME_RATE = 60
TV_FRAME_RATE = 25
FROZEN_FRAME_RATE = 1

HDTV_RESOLUTION = 1920
TV_RESOLUTION = 720
MIN_RESOLUTION = 10


class FrameRate:
    """Validated frame-rate values: any integer in [1, 60] f/s (§3)."""

    MIN = FROZEN_FRAME_RATE
    MAX = HDTV_FRAME_RATE

    @staticmethod
    def check(value: int) -> int:
        return int(
            check_range(value, FrameRate.MIN, FrameRate.MAX, "frame rate",
                        integer=True)
        )


class Resolution:
    """Validated resolution values: any integer in [10, 1920] px/line."""

    MIN = MIN_RESOLUTION
    MAX = HDTV_RESOLUTION

    @staticmethod
    def check(value: int) -> int:
        return int(
            check_range(value, Resolution.MIN, Resolution.MAX, "resolution",
                        integer=True)
        )


@dataclass(frozen=True, slots=True)
class Codec:
    """A coding format a variant may be stored in (§4 step 2 checks these
    against the client's decoders)."""

    name: str
    medium: Medium
    scalable: bool = False  # the INRS decoder can down-scale such streams

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("codec name must be non-empty")

    def __str__(self) -> str:
        return self.name


class Codecs:
    """The codec registry used throughout the prototype."""

    MPEG1 = Codec("MPEG-1", Medium.VIDEO)
    MPEG2 = Codec("MPEG-2", Medium.VIDEO, scalable=True)
    MJPEG = Codec("M-JPEG", Medium.VIDEO)
    H261 = Codec("H.261", Medium.VIDEO)
    RAW_VIDEO = Codec("RAW-VIDEO", Medium.VIDEO)

    PCM = Codec("PCM", Medium.AUDIO)
    ADPCM = Codec("ADPCM", Medium.AUDIO)
    MPEG_AUDIO = Codec("MPEG-AUDIO", Medium.AUDIO)

    JPEG = Codec("JPEG", Medium.IMAGE)
    GIF = Codec("GIF", Medium.IMAGE)
    TIFF = Codec("TIFF", Medium.IMAGE)

    ASCII = Codec("ASCII", Medium.TEXT)
    HTML = Codec("HTML", Medium.TEXT)
    POSTSCRIPT = Codec("POSTSCRIPT", Medium.TEXT)

    CGM = Codec("CGM", Medium.GRAPHIC)
    SVG = Codec("SVG", Medium.GRAPHIC)

    _ALL = None  # populated lazily below

    @classmethod
    def all(cls) -> tuple[Codec, ...]:
        if cls._ALL is None:
            cls._ALL = tuple(
                value for value in vars(cls).values() if isinstance(value, Codec)
            )
        return cls._ALL

    @classmethod
    def for_medium(cls, medium: Medium) -> tuple[Codec, ...]:
        medium = Medium.parse(medium)
        return tuple(c for c in cls.all() if c.medium is medium)

    @classmethod
    def by_name(cls, name: str) -> Codec:
        for codec in cls.all():
            if codec.name.lower() == str(name).lower():
                return codec
        raise ValidationError(f"unknown codec {name!r}")


__all__.append("Codecs")
