"""The concurrent negotiation service end to end.

Everything runs on one shared deployment: many in-flight §4
negotiations, seeded interleavings, choice-period races, deadline
budgets, and the admission gate in front.  The bar throughout: every
request gets exactly one honest verdict and nothing leaks.
"""

import pytest

from repro.core import ProfileManager
from repro.core.status import NegotiationStatus
from repro.journal import JournalRecordType, ReservationJournal
from repro.service import NegotiationService, ServicePolicy
from repro.sim import ScenarioSpec, build_scenario
from repro.storm import AdmissionGate, GatePolicy
from repro.telemetry.report import reconcile_journal

SPEC = ScenarioSpec(server_count=2, client_count=3, document_count=2)


def build_service(
    journal=None, policy=None, scheduler_seed=0, seed=0, gate_policy=None,
    spec=SPEC,
):
    journal = journal if journal is not None else ReservationJournal()
    scenario = build_scenario(spec, journal=journal)
    gate = None
    if gate_policy is not None:
        gate = AdmissionGate(scenario.loop, policy=gate_policy, seed=seed)
    service = NegotiationService(
        scenario.manager,
        scenario.loop,
        policy=policy or ServicePolicy(hold_s=10.0),
        gate=gate,
        scheduler_seed=scheduler_seed,
        seed=seed,
    )
    return scenario, service, journal


def submit_burst(scenario, service, count, spacing_s=0.5):
    profile = ProfileManager().get("balanced")
    clients = list(scenario.clients.values())
    documents = scenario.document_ids()
    for index in range(count):
        scenario.loop.at(
            index * spacing_s,
            lambda i=index: service.submit(
                documents[i % len(documents)],
                profile,
                clients[i % len(clients)],
                label=f"n-{i + 1}",
            ),
            label=f"submit-{index + 1}",
        )


def assert_leak_free(scenario, journal):
    assert reconcile_journal(journal)["balanced"]
    assert sum(
        s.stream_count for s in scenario.servers.values()
    ) == 0
    assert scenario.transport.flow_count == 0
    assert scenario.topology.total_reserved_bps() == 0.0


class TestEndToEnd:
    def test_every_request_gets_exactly_one_verdict(self):
        scenario, service, journal = build_service()
        submit_burst(scenario, service, 10)
        scenario.loop.run()
        assert service.unfinished() == []
        assert service.inflight == 0
        assert len(service.requests) == 10
        assert all(r.result is not None for r in service.requests)
        assert service.stats.delivered == 10
        assert_leak_free(scenario, journal)

    def test_statuses_are_real_negotiation_verdicts(self):
        scenario, service, journal = build_service()
        submit_burst(scenario, service, 8)
        scenario.loop.run()
        statuses = {r.status for r in service.requests}
        assert statuses <= set(NegotiationStatus)
        assert NegotiationStatus.SUCCEEDED in statuses

    def test_holders_are_unique_per_negotiation(self):
        scenario, service, journal = build_service()
        submit_burst(scenario, service, 10, spacing_s=0.01)
        scenario.loop.run()
        reserved = [
            record.holder
            for record in journal.records()
            if record.record_type is JournalRecordType.RESERVED
        ]
        assert len(reserved) == len(set(reserved))


class TestDeterminism:
    def outcome_trace(self, scheduler_seed, seed=0):
        scenario, service, journal = build_service(
            scheduler_seed=scheduler_seed, seed=seed
        )
        submit_burst(scenario, service, 10, spacing_s=0.05)
        scenario.loop.run()
        return [
            (r.label, str(r.status), r.finished_at)
            for r in service.requests
        ]

    def test_same_seeds_byte_identical_outcomes(self):
        assert self.outcome_trace(3) == self.outcome_trace(3)

    def test_scheduler_seed_changes_interleaving_not_honesty(self):
        for scheduler_seed in range(4):
            scenario, service, journal = build_service(
                scheduler_seed=scheduler_seed
            )
            submit_burst(scenario, service, 10, spacing_s=0.05)
            scenario.loop.run()
            assert service.unfinished() == []
            assert_leak_free(scenario, journal)


class TestDeadlineBudget:
    def test_overrun_returns_honest_failedtrylater(self):
        policy = ServicePolicy(
            deadline_budget_s=0.004, plan_s=0.005, hold_s=5.0
        )
        scenario, service, journal = build_service(policy=policy)
        submit_burst(scenario, service, 4)
        scenario.loop.run()
        assert service.stats.overruns == 4
        for request in service.requests:
            assert request.overrun
            assert request.status is NegotiationStatus.FAILED_TRY_LATER
            assert request.result.retry_after_s is not None
            assert request.result.retry_after_s > 0.0
        assert_leak_free(scenario, journal)

    def test_mid_walk_overrun_rolls_back_via_abandonment(self):
        """A budget that expires inside the step-5 walk closes the
        generator: the partial reservation is rolled back and the
        journal shows INTENT -> RELEASED(abandoned)."""
        policy = ServicePolicy(
            deadline_budget_s=0.012,
            plan_s=0.005,
            reservation_step_s=0.01,
            hold_s=5.0,
        )
        scenario, service, journal = build_service(policy=policy)
        submit_burst(scenario, service, 3)
        scenario.loop.run()
        assert service.stats.overruns == 3
        reasons = {
            record.payload.get("reason")
            for record in journal.records()
            if record.record_type is JournalRecordType.RELEASED
        }
        assert reasons == {"abandoned"}
        assert_leak_free(scenario, journal)


class TestStepSixRaces:
    def test_slow_users_expire_and_nothing_leaks(self):
        policy = ServicePolicy(slow_user_fraction=1.0, hold_s=10.0)
        scenario, service, journal = build_service(policy=policy)
        submit_burst(scenario, service, 6)
        scenario.loop.run()
        assert service.stats.expiries > 0
        assert service.stats.confirmations == 0
        expired = [
            r for r in journal.records()
            if r.record_type is JournalRecordType.EXPIRED
        ]
        assert len(expired) == service.stats.expiries
        assert_leak_free(scenario, journal)

    def test_rejecting_users_release_without_confirming(self):
        policy = ServicePolicy(reject_fraction=1.0, hold_s=10.0)
        scenario, service, journal = build_service(policy=policy)
        submit_burst(scenario, service, 6)
        scenario.loop.run()
        assert service.stats.confirmations == 0
        assert service.stats.rejections > 0
        assert_leak_free(scenario, journal)

    def test_confirmed_sessions_hold_then_release(self):
        policy = ServicePolicy(
            slow_user_fraction=0.0, reject_fraction=0.0, hold_s=10.0,
            confirm_jitter=0.0,
        )
        scenario, service, journal = build_service(policy=policy)
        submit_burst(scenario, service, 4)
        scenario.loop.run()
        assert service.stats.confirmations > 0
        assert service.stats.releases == service.stats.confirmations
        assert_leak_free(scenario, journal)


class TestGateIntegration:
    def test_shed_requests_still_get_hinted_verdicts(self):
        gate_policy = GatePolicy(
            rate_per_s=0.5, burst=1, queue_limit=0, retry_limit=0,
        )
        scenario, service, journal = build_service(gate_policy=gate_policy)
        submit_burst(scenario, service, 8, spacing_s=0.01)
        scenario.loop.run()
        assert service.unfinished() == []
        shed = [
            r for r in service.requests
            if r.status is NegotiationStatus.FAILED_TRY_LATER
        ]
        assert shed, "the tight gate shed nothing"
        for request in shed:
            assert request.result.retry_after_s is not None
            assert request.result.retry_after_s > 0.0
        assert_leak_free(scenario, journal)

    def test_gate_backpressure_preserves_single_verdict_per_request(self):
        gate_policy = GatePolicy(rate_per_s=2.0, burst=2, queue_limit=8)
        scenario, service, journal = build_service(gate_policy=gate_policy)
        submit_burst(scenario, service, 12, spacing_s=0.05)
        scenario.loop.run()
        assert service.stats.delivered == 12
        assert service.inflight == 0
        assert_leak_free(scenario, journal)
