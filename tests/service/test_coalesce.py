"""Same-tick plan coalescing in the concurrent service.

A burst of capability-equivalent requests landing between two scheduler
ticks shares one steps-1–4 plan.  Sharing must be invisible in the
outcomes — byte-identical traces with ``coalesce=False`` — and visible
only in the work: ``batch.coalesced`` counts and fewer plan builds.
"""

from dataclasses import replace

from repro.core import ProfileManager
from repro.core.preferences import UserPreferences
from repro.service import NegotiationService, ServicePolicy
from repro.sim import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(server_count=2, client_count=3, document_count=2)


def build_service(coalesce, scheduler_seed=0, telemetry_seed=None):
    scenario = build_scenario(SPEC, telemetry_seed=telemetry_seed)
    service = NegotiationService(
        scenario.manager,
        scenario.loop,
        policy=ServicePolicy(hold_s=5.0),
        scheduler_seed=scheduler_seed,
        coalesce=coalesce,
    )
    return scenario, service


def submit_burst(scenario, service, count, profile=None, spacing_s=0.0):
    profile = profile or ProfileManager().get("balanced")
    clients = list(scenario.clients.values())
    documents = scenario.document_ids()
    for index in range(count):
        scenario.loop.at(
            index * spacing_s,
            lambda i=index: service.submit(
                documents[i % len(documents)],
                profile,
                clients[i % len(clients)],
                label=f"n-{i}",
            ),
            label=f"submit-{index}",
        )


def outcome_trace(coalesce, scheduler_seed=0, spacing_s=0.0):
    scenario, service = build_service(coalesce, scheduler_seed)
    submit_burst(scenario, service, 8, spacing_s=spacing_s)
    scenario.loop.run()
    return [
        (r.label, str(r.status), r.finished_at) for r in service.requests
    ]


class TestEquivalence:
    def test_coalescing_changes_no_outcome(self):
        for scheduler_seed in range(3):
            assert outcome_trace(True, scheduler_seed) == outcome_trace(
                False, scheduler_seed
            )

    def test_spread_out_requests_also_agree(self):
        assert outcome_trace(True, spacing_s=0.5) == outcome_trace(
            False, spacing_s=0.5
        )


class TestCoalescing:
    def test_same_tick_burst_shares_one_plan(self):
        scenario, service = build_service(True, telemetry_seed=0)
        submit_burst(scenario, service, 6, spacing_s=0.0)
        scenario.loop.run()
        metrics = scenario.telemetry.metrics
        # Two documents → two classes; 6 requests → 4 coalesced plans.
        assert metrics.counter_value("batch.coalesced", site="service") == 4

    def test_coalesce_off_never_counts(self):
        scenario, service = build_service(False, telemetry_seed=0)
        submit_burst(scenario, service, 6, spacing_s=0.0)
        scenario.loop.run()
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("batch.coalesced", site="service") == 0

    def test_memo_does_not_leak_across_ticks(self):
        scenario, service = build_service(True, telemetry_seed=0)
        # Far enough apart that every request plans at its own tick.
        submit_burst(scenario, service, 4, spacing_s=10.0)
        scenario.loop.run()
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("batch.coalesced", site="service") == 0
        assert len(service._plan_memo) <= 1

    def test_preference_requests_plan_privately(self):
        scenario, service = build_service(True, telemetry_seed=0)
        profile = replace(
            ProfileManager().get("balanced"),
            preferences=UserPreferences(server_preference={"server-a": 1.0}),
        )
        submit_burst(scenario, service, 4, profile=profile, spacing_s=0.0)
        scenario.loop.run()
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("batch.coalesced", site="service") == 0
        assert all(r.result is not None for r in service.requests)
