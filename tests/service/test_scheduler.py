"""The seeded cooperative scheduler: determinism, sleeps, failures."""

import pytest

from repro.service import (
    CooperativeScheduler,
    Sleep,
    Switch,
    TaskState,
)
from repro.session import EventLoop
from repro.util.clock import ManualClock
from repro.util.errors import SessionError, ValidationError


@pytest.fixture
def loop():
    return EventLoop(ManualClock())


def sched(loop, seed=0):
    return CooperativeScheduler(loop, seed=seed)


def trace_task(trace, name, ops):
    for op in ops:
        trace.append(name)
        yield op
    trace.append(name)
    return name


class TestOps:
    def test_sleep_rejects_negative_delay(self):
        with pytest.raises(ValidationError):
            Sleep(-0.1)

    def test_spawn_rejects_non_generator(self, loop):
        with pytest.raises(SessionError):
            sched(loop).spawn("bad", lambda: None)

    def test_unknown_yield_op_is_an_error(self, loop):
        def task():
            yield "nonsense"

        sched(loop).spawn("weird", task())
        with pytest.raises(SessionError, match="expected Sleep or Switch"):
            loop.run()


class TestDeterminism:
    def run_interleaving(self, seed):
        loop = EventLoop(ManualClock())
        scheduler = sched(loop, seed=seed)
        trace = []
        for name in ("a", "b", "c"):
            scheduler.spawn(
                name, trace_task(trace, name, [Switch(), Switch()])
            )
        loop.run()
        return trace

    def test_same_seed_same_interleaving(self):
        assert self.run_interleaving(3) == self.run_interleaving(3)

    def test_some_seed_changes_the_interleaving(self):
        baseline = self.run_interleaving(0)
        assert any(
            self.run_interleaving(seed) != baseline for seed in range(1, 8)
        ), "eight seeds produced the identical interleaving"

    def test_every_interleaving_completes_every_task(self):
        for seed in range(5):
            trace = self.run_interleaving(seed)
            # 3 tasks x (2 yields + 1 final append)
            assert len(trace) == 9
            assert {trace.count(n) for n in "abc"} == {3}


class TestSleepAndSwitch:
    def test_sleep_advances_simulated_time(self, loop):
        stamps = []

        def task():
            stamps.append(loop.now)
            yield Sleep(2.5)
            stamps.append(loop.now)

        sched(loop).spawn("sleeper", task())
        loop.run()
        assert stamps == [0.0, 2.5]

    def test_switch_does_not_advance_time(self, loop):
        stamps = []

        def task():
            stamps.append(loop.now)
            yield Switch()
            stamps.append(loop.now)

        sched(loop).spawn("switcher", task())
        loop.run()
        assert stamps == [0.0, 0.0]

    def test_stats_count_switches_and_sleeps(self, loop):
        scheduler = sched(loop)

        def task():
            yield Switch()
            yield Sleep(0.1)
            yield Switch()

        scheduler.spawn("t", task())
        loop.run()
        assert scheduler.stats.switches == 2
        assert scheduler.stats.sleeps == 1
        assert scheduler.stats.spawned == 1
        assert scheduler.stats.completed == 1


class TestCompletion:
    def test_on_done_receives_the_return_value(self, loop):
        results = []

        def task():
            yield Switch()
            return 42

        sched(loop).spawn(
            "t", task(), on_done=lambda handle: results.append(handle.result)
        )
        loop.run()
        assert results == [42]

    def test_handle_reaches_done_state(self, loop):
        def task():
            yield Switch()
            return "x"

        handle = sched(loop).spawn("t", task())
        assert handle.state is TaskState.RUNNING
        loop.run()
        assert handle.state is TaskState.DONE
        assert handle.finished
        assert handle.result == "x"


class TestFailure:
    def test_task_error_propagates_and_marks_the_handle(self, loop):
        def bad():
            yield Switch()
            raise RuntimeError("boom")

        scheduler = sched(loop)
        handle = scheduler.spawn("bad", bad())
        with pytest.raises(RuntimeError, match="boom"):
            loop.run()
        assert handle.state is TaskState.FAILED
        assert isinstance(handle.error, RuntimeError)
        assert scheduler.stats.failed == 1

    def test_survivors_resume_after_a_caught_failure(self, loop):
        """The pump re-arms before re-raising, so a catch-and-recover
        driver can keep draining the other tasks."""
        done = []

        def bad():
            raise RuntimeError("boom")
            yield Switch()  # pragma: no cover

        def good():
            yield Sleep(0.5)
            done.append("good")

        scheduler = sched(loop)
        scheduler.spawn("good", good())
        scheduler.spawn("bad", bad())
        for _ in range(10):
            try:
                loop.run()
                break
            except RuntimeError:
                continue
        assert done == ["good"]
        assert scheduler.stats.completed == 1
        assert scheduler.stats.failed == 1
