"""Units: conversions, Money arithmetic, formatting."""

import math

import pytest

from repro.util.errors import UnitError
from repro.util.units import (
    Money,
    bps,
    bits,
    bytes_,
    dollars,
    format_bitrate,
    format_duration,
    format_size,
    gbps,
    kbps,
    kilobits,
    mbps,
    megabits,
    minutes,
    ms,
    seconds,
)


class TestConversions:
    def test_bytes_to_bits(self):
        assert bytes_(1) == 8

    def test_kilobits(self):
        assert kilobits(3) == 3_000

    def test_megabits(self):
        assert megabits(1.5) == 1_500_000

    def test_rate_ladder(self):
        assert kbps(1) == 1_000
        assert mbps(1) == 1_000_000
        assert gbps(1) == 1_000_000_000

    def test_time_ladder(self):
        assert minutes(2) == 120
        assert ms(250) == 0.25
        assert seconds(0) == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(UnitError):
            bps(bad)
        with pytest.raises(UnitError):
            bits(bad)
        with pytest.raises(UnitError):
            seconds(bad)


class TestMoney:
    def test_of_rounds_to_cents(self):
        assert dollars(1.005).cents in (100, 101)  # banker's vs half-up
        assert dollars(2.5).cents == 250

    def test_of_money_identity(self):
        m = dollars(3)
        assert Money.of(m) is m

    def test_exact_addition(self):
        # The classic float trap: 0.1 + 0.2 — cents stay exact.
        total = dollars(0.1) + dollars(0.2)
        assert total == dollars(0.3)
        assert total.cents == 30

    def test_subtraction_and_negation(self):
        assert (dollars(5) - dollars(2)).cents == 300
        assert (-dollars(1)).cents == -100

    def test_scaling(self):
        assert (dollars(0.05) * 120).cents == 600
        assert (120 * dollars(0.05)).cents == 600

    def test_money_times_money_rejected(self):
        with pytest.raises(UnitError):
            dollars(2) * dollars(3)

    def test_ordering(self):
        assert dollars(4) < dollars(5)
        assert max(dollars(4), dollars(5)) == dollars(5)

    def test_bool(self):
        assert not Money.zero()
        assert dollars(0.01)

    def test_str(self):
        assert str(dollars(6)) == "$6.00"
        assert str(dollars(2.5)) == "$2.50"
        assert str(dollars(-1.25)) == "-$1.25"

    def test_nan_rejected(self):
        with pytest.raises(UnitError):
            dollars(float("nan"))

    def test_amount_roundtrip(self):
        assert dollars(12.34).amount == pytest.approx(12.34)


class TestFormatting:
    def test_format_bitrate(self):
        assert format_bitrate(500) == "500 bps"
        assert format_bitrate(64_000) == "64.00 kbps"
        assert format_bitrate(1_500_000) == "1.50 Mbps"
        assert format_bitrate(2_000_000_000) == "2.00 Gbps"

    def test_format_size(self):
        assert format_size(100) == "100 bit"
        assert format_size(2_000_000) == "2.00 Mbit"

    def test_format_duration(self):
        assert format_duration(5) == "5 s"
        assert format_duration(65) == "1:05"
        assert format_duration(3_600 + 125) == "1:02:05"
