"""Validation helpers."""

import pytest

from repro.util.errors import ValidationError
from repro.util.validation import (
    check_choice,
    check_fraction,
    check_name,
    check_non_empty,
    check_non_negative,
    check_positive,
    check_range,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")


class TestCheckRange:
    def test_inclusive_bounds(self):
        assert check_range(1, 1, 60, "x") == 1
        assert check_range(60, 1, 60, "x") == 60

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_range(61, 1, 60, "x")

    def test_integer_mode(self):
        assert check_range(25, 1, 60, "x", integer=True) == 25
        with pytest.raises(ValidationError):
            check_range(25.5, 1, 60, "x", integer=True)

    def test_integer_mode_returns_int(self):
        assert isinstance(check_range(25.0, 1, 60, "x", integer=True), int)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_range(float("nan"), 0, 1, "x")


class TestSignChecks:
    def test_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValidationError):
            check_positive(0, "x")

    def test_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    def test_fraction(self):
        assert check_fraction(0.5, "x") == 0.5
        with pytest.raises(ValidationError):
            check_fraction(1.1, "x")


class TestNameAndChoice:
    def test_name_ok(self):
        assert check_name("server-a", "x") == "server-a"

    @pytest.mark.parametrize("bad", ["", "  ", None, 42, "a\nb"])
    def test_name_bad(self, bad):
        with pytest.raises(ValidationError):
            check_name(bad, "x")

    def test_choice(self):
        assert check_choice("a", ("a", "b"), "x") == "a"
        with pytest.raises(ValidationError):
            check_choice("c", ("a", "b"), "x")

    def test_non_empty(self):
        assert check_non_empty([1], "x") == [1]
        with pytest.raises(ValidationError):
            check_non_empty([], "x")
