"""ASCII table / box rendering."""

import pytest

from repro.util.tables import render_box, render_kv, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(("a", "bb"), [(1, "x"), (22, "yy")])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1] or "|  a" in lines[1]
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        out = render_table(("h",), [("v",)], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])

    def test_numeric_right_alignment(self):
        out = render_table(("n",), [(5,), (1234,)])
        rows = [l for l in out.splitlines() if l.startswith("|")][1:]
        assert rows[0].index("5") > rows[1].index("1")

    def test_float_trimming(self):
        out = render_table(("x",), [(1.5000,)])
        assert "1.5 " in out

    def test_empty_rows(self):
        out = render_table(("only", "headers"), [])
        assert "only" in out and "headers" in out


class TestRenderKv:
    def test_alignment(self):
        out = render_kv([("key", 1), ("longerkey", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert render_kv([], title="t") == "t"


class TestRenderBox:
    def test_contains_lines_and_title(self):
        out = render_box(["hello", "world"], title="W")
        assert " W " in out.splitlines()[0]
        assert "| hello" in out

    def test_rectangular(self):
        out = render_box(["a", "longer line"], title="T")
        assert len({len(line) for line in out.splitlines()}) == 1

    def test_min_width(self):
        out = render_box(["x"], width=30)
        assert len(out.splitlines()[0]) >= 30
