"""Error hierarchy contracts."""

import pytest

from repro.util import errors as E


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in E.__all__:
            cls = getattr(E, name)
            assert issubclass(cls, E.ReproError), name

    def test_validation_is_value_error(self):
        assert issubclass(E.ValidationError, ValueError)

    def test_not_found_is_key_error(self):
        assert issubclass(E.NotFoundError, KeyError)

    def test_not_found_message_unquoted(self):
        # Plain KeyError would wrap the message in quotes.
        err = E.NotFoundError("no document 'x'")
        assert str(err) == "no document 'x'"

    def test_capacity_is_reservation_error(self):
        assert issubclass(E.CapacityError, E.ReservationError)

    def test_negotiation_family(self):
        for cls in (
            E.ProfileError,
            E.OfferError,
            E.ConfirmationTimeout,
            E.AdaptationError,
        ):
            assert issubclass(cls, E.NegotiationError)

    def test_catchable_at_boundary(self):
        with pytest.raises(E.ReproError):
            raise E.AdmissionError("disk full")
