"""Manual clock semantics."""

import pytest

from repro.util.clock import ManualClock
from repro.util.errors import ValidationError


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self):
        clock = ManualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_zero_allowed(self):
        clock = ManualClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValidationError):
            ManualClock().advance(-1)

    def test_advance_to(self):
        clock = ManualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_rejected(self):
        clock = ManualClock(5.0)
        with pytest.raises(ValidationError):
            clock.advance_to(4.0)

    def test_repr_mentions_time(self):
        assert "2" in repr(ManualClock(2.0))
