"""Seeded RNG helpers: determinism and independence."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, make_rng, spawn_rngs


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(123).random(5)
        b = make_rng(123).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(make_rng(1), "arrivals").random(3)
        b = derive_rng(make_rng(1), "arrivals").random(3)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_rng(make_rng(1), "arrivals").random(3)
        b = derive_rng(make_rng(1), "failures").random(3)
        assert not np.array_equal(a, b)

    def test_int_and_str_keys(self):
        a = derive_rng(make_rng(1), 1, "x").random(2)
        b = derive_rng(make_rng(1), 2, "x").random(2)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(9, 4)) == 4

    def test_reproducible(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b

    def test_independent_streams(self):
        g1, g2 = spawn_rngs(9, 2)
        assert g1.random() != g2.random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []
