"""Transport system: atomic flow reservations, probing, violations."""

import pytest

from repro.network.qosparams import FlowSpec
from repro.network.topology import Topology
from repro.network.transport import GuaranteeType, TransportSystem
from repro.util.errors import CapacityError, ReservationError

SPEC = FlowSpec(
    max_bit_rate=8e6, avg_bit_rate=3e6,
    max_delay_s=0.25, max_jitter_s=0.01, max_loss_rate=0.01,
)


@pytest.fixture
def net():
    t = Topology()
    t.connect("srv", "bb", 20e6, link_id="L1")
    t.connect("bb", "cli", 20e6, link_id="L2")
    return t


@pytest.fixture
def transport(net):
    return TransportSystem(net)


class TestGuaranteeType:
    def test_billable_rates(self):
        assert GuaranteeType.GUARANTEED.billable_rate(SPEC) == 8e6
        assert GuaranteeType.BEST_EFFORT.billable_rate(SPEC) == 3e6


class TestProbe:
    def test_probe_finds_route(self, transport):
        route = transport.probe("srv", "cli", SPEC)
        assert route is not None and route.hop_count == 2

    def test_probe_respects_guarantee_rate(self, transport, net):
        net.link("L1").reserve(14e6, holder="x")  # 6e6 left < peak 8e6
        assert transport.probe("srv", "cli", SPEC) is None
        assert (
            transport.probe("srv", "cli", SPEC, GuaranteeType.BEST_EFFORT)
            is not None
        )

    def test_probe_checks_qos_bounds(self, net):
        tight = FlowSpec(1e6, 1e6, max_delay_s=0.001, max_jitter_s=0.01,
                         max_loss_rate=0.01)
        transport = TransportSystem(net)
        assert transport.probe("srv", "cli", tight) is None


class TestReserve:
    def test_reserves_every_link(self, transport, net):
        flow = transport.reserve("srv", "cli", SPEC)
        assert net.link("L1").reserved_bps == 8e6
        assert net.link("L2").reserved_bps == 8e6
        assert flow.reserved_bps == 8e6

    def test_best_effort_reserves_avg(self, transport, net):
        transport.reserve(
            "srv", "cli", SPEC, guarantee=GuaranteeType.BEST_EFFORT
        )
        assert net.link("L1").reserved_bps == 3e6

    def test_no_capacity_raises(self, transport, net):
        net.link("L2").reserve(19e6, holder="x")
        with pytest.raises(CapacityError):
            transport.reserve("srv", "cli", SPEC)

    def test_release(self, transport, net):
        flow = transport.reserve("srv", "cli", SPEC)
        transport.release(flow)
        assert net.link("L1").reserved_bps == 0.0
        assert transport.flow_count == 0

    def test_release_unknown(self, transport):
        with pytest.raises(ReservationError):
            transport.release("flow-404")

    def test_release_all(self, transport, net):
        transport.reserve("srv", "cli", SPEC)
        transport.reserve("srv", "cli", SPEC)
        transport.release_all()
        assert net.link("L1").reserved_bps == 0.0

    def test_flow_lookup(self, transport):
        flow = transport.reserve("srv", "cli", SPEC)
        assert transport.flow(flow.flow_id) is flow
        with pytest.raises(ReservationError):
            transport.flow("nope")


class TestViolations:
    def test_congestion_flags_flow(self, transport, net):
        flow = transport.reserve("srv", "cli", SPEC)
        assert transport.violated_flows() == ()
        net.link("L1").set_congestion(0.9)
        assert [f.flow_id for f in transport.violated_flows()] == [flow.flow_id]

    def test_earlier_flow_survives_partial_congestion(self, transport, net):
        first = transport.reserve("srv", "cli", SPEC)
        second = transport.reserve("srv", "cli", SPEC)
        net.link("L1").set_congestion(0.5)  # 10e6 effective, 16e6 reserved
        violated = {f.flow_id for f in transport.violated_flows()}
        assert violated == {second.flow_id}

    def test_path_qos(self, transport):
        flow = transport.reserve("srv", "cli", SPEC)
        assert transport.path_qos(flow).delay_s == pytest.approx(0.004)
