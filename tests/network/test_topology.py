"""Topology construction and lookups."""

import pytest

from repro.network.link import Link
from repro.network.topology import Topology
from repro.util.errors import NetworkError, NotFoundError


@pytest.fixture
def topo():
    t = Topology()
    t.connect("a", "b", 10e6, link_id="ab")
    t.connect("b", "c", 20e6, link_id="bc")
    return t


class TestConstruction:
    def test_connect_creates_link(self, topo):
        assert topo.link("ab").capacity_bps == 10e6

    def test_duplicate_link_id_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.add_link(Link("ab", "x", "y", 1e6))

    def test_parallel_edge_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.connect("a", "b", 5e6, link_id="ab2")

    def test_default_link_id(self):
        t = Topology()
        link = t.connect("x", "y", 1e6)
        assert link.link_id == "link:x--y"


class TestLookups:
    def test_link_between(self, topo):
        assert topo.link_between("a", "b").link_id == "ab"
        assert topo.link_between("b", "a").link_id == "ab"  # undirected
        with pytest.raises(NotFoundError):
            topo.link_between("a", "c")

    def test_links_on_path(self, topo):
        links = topo.links_on_path(["a", "b", "c"])
        assert [l.link_id for l in links] == ["ab", "bc"]

    def test_links_on_short_path_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.links_on_path(["a"])

    def test_neighbors(self, topo):
        assert set(topo.neighbors("b")) == {"a", "c"}
        with pytest.raises(NotFoundError):
            topo.neighbors("ghost")

    def test_unknown_link(self, topo):
        with pytest.raises(NotFoundError):
            topo.link("zz")


class TestHealth:
    def test_totals(self, topo):
        assert topo.total_capacity_bps() == 30e6
        topo.link("ab").reserve(4e6, holder="f")
        assert topo.total_reserved_bps() == 4e6

    def test_oversubscribed_links(self, topo):
        topo.link("ab").reserve(8e6, holder="f")
        assert topo.oversubscribed_links() == ()
        topo.link("ab").set_congestion(0.5)
        assert [l.link_id for l in topo.oversubscribed_links()] == ["ab"]

    def test_clear_congestion(self, topo):
        topo.link("ab").set_congestion(0.7)
        topo.clear_congestion()
        assert topo.link("ab").congestion == 0.0
