"""Path QoS accumulation, flow specs, and the §6 presets."""

import pytest

from repro.network.qosparams import (
    STEINMETZ_PRESETS,
    FlowSpec,
    PathQoS,
    preset_for,
)
from repro.util.errors import ValidationError


class TestPathQoS:
    def test_identity_extension(self):
        qos = PathQoS(0.01, 0.002, 0.001)
        extended = PathQoS.identity().extend(qos)
        assert extended.delay_s == pytest.approx(qos.delay_s)
        assert extended.jitter_s == pytest.approx(qos.jitter_s)
        assert extended.loss_rate == pytest.approx(qos.loss_rate)

    def test_delays_add(self):
        a = PathQoS(0.01, 0.001, 0.0)
        b = PathQoS(0.02, 0.003, 0.0)
        combined = a.extend(b)
        assert combined.delay_s == pytest.approx(0.03)
        assert combined.jitter_s == pytest.approx(0.004)

    def test_loss_compounds(self):
        a = PathQoS(0, 0, 0.1)
        b = PathQoS(0, 0, 0.1)
        assert a.extend(b).loss_rate == pytest.approx(0.19)

    def test_satisfies_smaller_is_better(self):
        good = PathQoS(0.01, 0.001, 0.001)
        bound = PathQoS(0.25, 0.01, 0.003)
        assert good.satisfies(bound)
        assert not bound.satisfies(good)

    def test_loss_must_be_fraction(self):
        with pytest.raises(ValidationError):
            PathQoS(0, 0, 1.5)


class TestFlowSpec:
    def test_avg_cannot_exceed_max(self):
        with pytest.raises(ValidationError):
            FlowSpec(
                max_bit_rate=1e6, avg_bit_rate=2e6,
                max_delay_s=0.1, max_jitter_s=0.01, max_loss_rate=0.01,
            )

    def test_burstiness(self):
        spec = FlowSpec(3e6, 1e6, 0.25, 0.01, 0.003)
        assert spec.burstiness == pytest.approx(3.0)

    def test_qos_bound(self):
        spec = FlowSpec(3e6, 1e6, 0.25, 0.01, 0.003)
        assert spec.qos_bound == PathQoS(0.25, 0.01, 0.003)


class TestPresets:
    def test_paper_video_values(self):
        # §6: "the following values are considered for the video:
        # jitter = 10 ms, and loss rate 0.003".
        video = preset_for("video")
        assert video.jitter_s == pytest.approx(0.010)
        assert video.loss_rate == pytest.approx(0.003)

    def test_all_media_covered(self):
        for medium in ("video", "audio", "image", "text", "graphic"):
            assert preset_for(medium) is STEINMETZ_PRESETS[medium]

    def test_medium_enum_accepted(self):
        from repro.documents.media import Medium

        assert preset_for(Medium.AUDIO) is STEINMETZ_PRESETS["audio"]

    def test_unknown_medium_rejected(self):
        with pytest.raises(ValidationError):
            preset_for("smellovision")
