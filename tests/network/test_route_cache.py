"""The topology's route memo: exact while unconstrained, bypassed after.

The memo is only sound because link cost weights are static: while no
link is bandwidth-constrained for the queried rate, the constrained
Dijkstra graph IS the full graph, so the cached answer is exactly what
the search would return.  The moment any link cannot take the rate, the
memo must be bypassed; the moment the graph changes, dropped.
"""

import pytest

from repro.network import Topology
from repro.network.routing import find_route
from repro.util.errors import NoRouteError


@pytest.fixture
def diamond():
    """Two competing paths A→D: via B (cheap links) and via C."""
    topo = Topology()
    topo.connect("A", "B", 100e6, cost_weight=1.0, link_id="L-ab")
    topo.connect("B", "D", 100e6, cost_weight=1.0, link_id="L-bd")
    topo.connect("A", "C", 100e6, cost_weight=5.0, link_id="L-ac")
    topo.connect("C", "D", 100e6, cost_weight=5.0, link_id="L-cd")
    return topo


class TestMemoisation:
    def test_repeat_query_returns_the_memoised_route(self, diamond):
        first = find_route(diamond, "A", "D", 10e6)
        second = find_route(diamond, "A", "D", 10e6)
        assert first.nodes == ("A", "B", "D")
        assert second is first

    def test_constrained_rate_bypasses_the_memo(self, diamond):
        find_route(diamond, "A", "D", 10e6)
        # A rate the cheap path cannot take: the memoised route must
        # not be served, the search must detour via C.
        diamond.link("L-bd").reserve(95e6, "t")
        detour = find_route(diamond, "A", "D", 10e6)
        assert detour.nodes == ("A", "C", "D")

    def test_constrained_answers_are_not_stored(self, diamond):
        held = diamond.link("L-bd").reserve(95e6, "t")
        find_route(diamond, "A", "D", 10e6)
        diamond.link("L-bd").release(held)
        # Headroom is back: the detour must not have poisoned the memo.
        assert find_route(diamond, "A", "D", 10e6).nodes == ("A", "B", "D")

    def test_congestion_bypasses_the_memo(self, diamond):
        find_route(diamond, "A", "D", 60e6)
        diamond.link("L-ab").set_congestion(0.5)
        assert find_route(diamond, "A", "D", 60e6).nodes == ("A", "C", "D")

    def test_new_link_invalidates(self, diamond):
        assert find_route(diamond, "A", "D", 10e6).nodes == ("A", "B", "D")
        diamond.connect("A", "D", 100e6, cost_weight=0.5, link_id="L-ad")
        assert find_route(diamond, "A", "D", 10e6).nodes == ("A", "D")


class TestEquivalence:
    def test_memoised_equals_fresh_search(self, diamond):
        """Every (source, target) pair answered from the memo equals a
        cold topology's answer, route and QoS alike."""
        nodes = ("A", "B", "C", "D")
        warm = {
            (s, t): find_route(diamond, s, t, 10e6)
            for s in nodes
            for t in nodes
            if s != t
        }
        # Warm pass again: now everything is served from the memo.
        for (s, t), route in warm.items():
            memoised = find_route(diamond, s, t, 10e6)
            assert memoised is route
            cold = Topology()
            cold.connect("A", "B", 100e6, cost_weight=1.0, link_id="L-ab")
            cold.connect("B", "D", 100e6, cost_weight=1.0, link_id="L-bd")
            cold.connect("A", "C", 100e6, cost_weight=5.0, link_id="L-ac")
            cold.connect("C", "D", 100e6, cost_weight=5.0, link_id="L-cd")
            fresh = find_route(cold, s, t, 10e6)
            assert memoised.nodes == fresh.nodes
            assert memoised.qos == fresh.qos

    def test_no_route_still_raises(self, diamond):
        diamond.connect("X", "Y", 100e6, link_id="L-xy")
        with pytest.raises(NoRouteError):
            find_route(diamond, "A", "X", 10e6)
