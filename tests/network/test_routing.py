"""Bandwidth-constrained routing."""

import pytest

from repro.network.routing import find_route, find_route_any
from repro.network.topology import Topology
from repro.util.errors import NoRouteError


@pytest.fixture
def diamond():
    """a == two paths == d: a-b-d (fast, low capacity) and a-c-d
    (slow, high capacity)."""
    t = Topology()
    t.connect("a", "b", 5e6, link_id="ab", cost_weight=1.0)
    t.connect("b", "d", 5e6, link_id="bd", cost_weight=1.0)
    t.connect("a", "c", 100e6, link_id="ac", cost_weight=5.0)
    t.connect("c", "d", 100e6, link_id="cd", cost_weight=5.0)
    return t


class TestFindRoute:
    def test_prefers_cheap_path(self, diamond):
        route = find_route(diamond, "a", "d", 1e6)
        assert route.nodes == ("a", "b", "d")
        assert route.hop_count == 2

    def test_detours_when_capacity_lacking(self, diamond):
        route = find_route(diamond, "a", "d", 50e6)
        assert route.nodes == ("a", "c", "d")

    def test_detours_when_reserved(self, diamond):
        diamond.link("ab").reserve(4.5e6, holder="f")
        route = find_route(diamond, "a", "d", 1e6)
        assert route.nodes == ("a", "c", "d")

    def test_no_route_when_all_full(self, diamond):
        with pytest.raises(NoRouteError):
            find_route(diamond, "a", "d", 200e6)

    def test_unknown_nodes(self, diamond):
        with pytest.raises(NoRouteError):
            find_route(diamond, "zz", "d", 1e6)
        with pytest.raises(NoRouteError):
            find_route(diamond, "a", "zz", 1e6)

    def test_same_node_trivial_route(self, diamond):
        route = find_route(diamond, "a", "a", 1e6)
        assert route.links == ()
        assert route.qos.delay_s == 0.0

    def test_qos_accumulates(self, diamond):
        route = find_route(diamond, "a", "d", 1e6)
        assert route.qos.delay_s == pytest.approx(0.004)  # 2 x 2 ms default

    def test_bottleneck(self, diamond):
        diamond.link("ab").reserve(2e6, holder="f")
        route = find_route(diamond, "a", "d", 1e6)
        assert route.bottleneck_available_bps() == pytest.approx(3e6)

    def test_disconnected(self):
        t = Topology()
        t.connect("a", "b", 1e6)
        t.add_node("z")
        with pytest.raises(NoRouteError):
            find_route(t, "a", "z", 1e3)


class TestFindRouteAny:
    def test_ignores_capacity(self, diamond):
        route = find_route_any(diamond, "a", "d")
        assert route.nodes == ("a", "b", "d")  # cheap path even at 0 bps free
        diamond.link("ab").reserve(5e6, holder="f")
        assert find_route_any(diamond, "a", "d").nodes == ("a", "b", "d")

    def test_unknown_node(self, diamond):
        with pytest.raises(NoRouteError):
            find_route_any(diamond, "a", "zz")
