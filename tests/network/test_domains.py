"""Multi-domain hierarchical reservation ([Haf 95b] extension)."""

import pytest

from repro.network.domains import (
    Domain,
    DomainMap,
    HierarchicalTransport,
)
from repro.network.qosparams import FlowSpec
from repro.network.topology import Topology
from repro.util.errors import CapacityError, NetworkError

SPEC = FlowSpec(
    max_bit_rate=8e6, avg_bit_rate=3e6,
    max_delay_s=0.25, max_jitter_s=0.05, max_loss_rate=0.05,
)


@pytest.fixture
def world():
    """Three domains in a chain: campus -- metro -- provider."""
    topo = Topology()
    topo.connect("srv", "metro-gw-a", 155e6, link_id="L1")      # provider internal
    topo.connect("metro-gw-a", "metro-gw-b", 155e6, link_id="L2")  # metro internal
    topo.connect("metro-gw-b", "campus-gw", 100e6, link_id="L3")   # into campus
    topo.connect("campus-gw", "cli", 100e6, link_id="L4")          # campus internal
    dmap = DomainMap(
        [
            Domain("provider"),
            Domain("metro", transit_quota_bps=20e6),
            Domain("campus"),
        ]
    )
    dmap.assign("srv", "provider")
    dmap.assign("metro-gw-a", "metro")
    dmap.assign("metro-gw-b", "metro")
    dmap.assign("campus-gw", "campus")
    dmap.assign("cli", "campus")
    return topo, dmap


@pytest.fixture
def transport(world):
    topo, dmap = world
    return HierarchicalTransport(topo, dmap)


class TestDomainMap:
    def test_unassigned_node_rejected(self, world):
        topo, dmap = world
        topo.add_node("orphan")
        with pytest.raises(NetworkError):
            HierarchicalTransport(topo, dmap)

    def test_duplicate_domain_rejected(self):
        dmap = DomainMap([Domain("a")])
        with pytest.raises(NetworkError):
            dmap.add_domain(Domain("a"))

    def test_assign_unknown_domain_rejected(self):
        dmap = DomainMap([Domain("a")])
        with pytest.raises(NetworkError):
            dmap.assign("n", "ghost")

    def test_domain_of(self, world):
        _, dmap = world
        assert dmap.domain_of("srv").name == "provider"
        with pytest.raises(NetworkError):
            dmap.domain_of("ghost")


class TestHierarchicalReserve:
    def test_route_split_across_domains(self, transport):
        route = transport.probe("srv", "cli", SPEC)
        assert transport.domains_on_route(route) == (
            "metro", "campus",
        ) or transport.domains_on_route(route) == (
            "metro", "metro", "campus",
        ) or len(transport.domains_on_route(route)) >= 2

    def test_reserve_reserves_all_links(self, transport, world):
        topo, _ = world
        flow = transport.reserve("srv", "cli", SPEC)
        for link_id in ("L1", "L2", "L3", "L4"):
            assert topo.link(link_id).reserved_bps == 8e6
        transport.release(flow)
        for link_id in ("L1", "L2", "L3", "L4"):
            assert topo.link(link_id).reserved_bps == 0.0

    def test_transit_quota_enforced(self, transport):
        # Metro's quota is 20 Mbps: two 8 Mbps flows fit, a third does not.
        flows = [transport.reserve("srv", "cli", SPEC) for _ in range(2)]
        assert transport.probe("srv", "cli", SPEC) is None
        with pytest.raises(CapacityError):
            transport.reserve("srv", "cli", SPEC)
        agent = transport.agents["metro"]
        assert agent.refusals >= 0  # probe refuses before the agent is asked
        # Releasing one restores admission.
        transport.release(flows.pop())
        retry = transport.reserve("srv", "cli", SPEC)
        transport.release(retry)
        for flow in flows:
            transport.release(flow)
        assert transport.agents["metro"].transit_reserved_bps == 0.0

    def test_quota_rollback_releases_other_domains(self, world):
        # Shrink the quota below a single flow: the provider segment is
        # reserved first, then metro refuses; everything must roll back.
        topo, dmap = world
        dmap2 = DomainMap(
            [
                Domain("provider"),
                Domain("metro", transit_quota_bps=1e6),
                Domain("campus"),
            ]
        )
        for node in ("srv",):
            dmap2.assign(node, "provider")
        for node in ("metro-gw-a", "metro-gw-b"):
            dmap2.assign(node, "metro")
        for node in ("campus-gw", "cli"):
            dmap2.assign(node, "campus")
        transport = HierarchicalTransport(topo, dmap2)
        assert transport.probe("srv", "cli", SPEC) is None
        with pytest.raises(CapacityError):
            transport.reserve("srv", "cli", SPEC)
        assert topo.total_reserved_bps() == 0.0
        assert transport.flow_count == 0

    def test_message_accounting(self, transport):
        before = transport.total_messages
        flow = transport.reserve("srv", "cli", SPEC)
        after_setup = transport.total_messages
        # Two messages (request + confirm) per domain segment.
        segment_count = len(transport._segments[flow.flow_id])
        assert after_setup - before == 2 * segment_count
        transport.release(flow)
        assert transport.total_messages - after_setup == 2 * segment_count

    def test_violated_flows_inherited(self, transport, world):
        topo, _ = world
        flow = transport.reserve("srv", "cli", SPEC)
        topo.link("L2").set_congestion(0.99)
        assert [f.flow_id for f in transport.violated_flows()] == [flow.flow_id]
        transport.release(flow)


class TestWithQoSManager:
    def test_manager_runs_unchanged_over_domains(
        self, world, database, servers, clock, document, balanced_profile
    ):
        """The QoS manager needs no changes over a multi-domain network
        — quota refusals behave like capacity refusals."""
        from repro.client.machine import ClientMachine
        from repro.core.negotiation import QoSManager
        from repro.core.status import NegotiationStatus

        topo = Topology()
        topo.connect("client-net", "metro-a", 100e6, link_id="LC")
        topo.connect("metro-a", "metro-b", 155e6, link_id="LM")
        topo.connect("metro-b", "server-a-net", 155e6, link_id="LA")
        topo.connect("metro-b", "server-b-net", 155e6, link_id="LB")
        dmap = DomainMap(
            [Domain("campus"), Domain("metro", transit_quota_bps=25e6),
             Domain("provider")]
        )
        dmap.assign("client-net", "campus")
        dmap.assign("metro-a", "metro")
        dmap.assign("metro-b", "metro")
        dmap.assign("server-a-net", "provider")
        dmap.assign("server-b-net", "provider")
        transport = HierarchicalTransport(topo, dmap)
        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock,
        )
        client = ClientMachine("alice", access_point="client-net")
        results = []
        while True:
            result = manager.negotiate(
                document.document_id, balanced_profile, client
            )
            if result.status is NegotiationStatus.FAILED_TRY_LATER:
                break
            results.append(result)
            assert len(results) < 50
        assert results, "nothing admitted over the multi-domain network"
        # The metro quota binds before raw link capacity (25 < 100 Mbps).
        metro = transport.agents["metro"]
        assert metro.transit_reserved_bps <= 25e6 + 1e-6
        for result in results:
            result.commitment.release()
        assert metro.transit_reserved_bps == pytest.approx(0.0)
