"""Link reservations, congestion, oversubscription."""

import pytest

from repro.network.link import Link
from repro.util.errors import CapacityError, ReservationError


@pytest.fixture
def link():
    return Link("L1", "a", "b", 10e6)


class TestReservations:
    def test_reserve_reduces_availability(self, link):
        link.reserve(4e6, holder="f1")
        assert link.reserved_bps == 4e6
        assert link.available_bps == pytest.approx(6e6)

    def test_over_capacity_rejected(self, link):
        link.reserve(8e6, holder="f1")
        with pytest.raises(CapacityError):
            link.reserve(3e6, holder="f2")

    def test_exact_fill_allowed(self, link):
        link.reserve(10e6, holder="f1")
        assert link.available_bps == 0.0

    def test_release_restores(self, link):
        r = link.reserve(4e6, holder="f1")
        link.release(r)
        assert link.reserved_bps == 0.0

    def test_release_by_id(self, link):
        r = link.reserve(4e6, holder="f1")
        link.release(r.reservation_id)
        assert link.reserved_bps == 0.0

    def test_double_release_rejected(self, link):
        r = link.reserve(4e6, holder="f1")
        link.release(r)
        with pytest.raises(ReservationError):
            link.release(r)

    def test_holders(self, link):
        link.reserve(1e6, holder="f1")
        link.reserve(1e6, holder="f2")
        assert link.holders() == {"f1", "f2"}

    def test_utilization(self, link):
        link.reserve(5e6, holder="f1")
        assert link.utilization == pytest.approx(0.5)

    def test_self_loop_rejected(self):
        with pytest.raises(ReservationError):
            Link("L", "a", "a", 1e6)


class TestCongestion:
    def test_effective_capacity_shrinks(self, link):
        link.set_congestion(0.8)
        assert link.effective_capacity_bps == pytest.approx(2e6)

    def test_oversubscription_detected(self, link):
        link.reserve(6e6, holder="f1")
        assert not link.oversubscribed
        link.set_congestion(0.5)
        assert link.oversubscribed

    def test_latest_flows_shed_first(self, link):
        link.reserve(4e6, holder="old")
        link.reserve(4e6, holder="new")
        link.set_congestion(0.5)  # effective 5e6 < 8e6 reserved
        assert link.violated_holders() == {"new"}

    def test_all_shed_under_total_collapse(self, link):
        link.reserve(4e6, holder="a")
        link.reserve(4e6, holder="b")
        link.set_congestion(1.0)
        assert link.violated_holders() == {"a", "b"}

    def test_healing_clears_violations(self, link):
        link.reserve(8e6, holder="f1")
        link.set_congestion(0.5)
        assert link.violated_holders()
        link.set_congestion(0.0)
        assert link.violated_holders() == frozenset()

    def test_congestion_blocks_new_reservations(self, link):
        link.set_congestion(0.9)
        assert not link.can_reserve(2e6)
        with pytest.raises(CapacityError):
            link.reserve(2e6, holder="f1")
