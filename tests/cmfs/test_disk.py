"""Disk model: round feasibility, admission closed form."""

import pytest

from repro.cmfs.disk import DiskModel
from repro.util.errors import ValidationError


@pytest.fixture
def disk():
    return DiskModel()  # defaults: 60 Mbps transfer, ~12.7 ms overhead


class TestRoundFeasibility:
    def test_empty_round_feasible(self, disk):
        result = disk.round_feasibility([])
        assert result.feasible and result.busy_s == 0.0

    def test_busy_time_composition(self, disk):
        result = disk.round_feasibility([6e6])
        transfer = 6e6 * disk.round_s / disk.transfer_rate_bps
        assert result.busy_s == pytest.approx(transfer + disk.overhead_s)

    def test_saturation(self, disk):
        # Fill the round with identical streams until infeasible.
        n = disk.max_streams_at_rate(6e6)
        assert disk.round_feasibility([6e6] * n).feasible
        assert not disk.round_feasibility([6e6] * (n + 1)).feasible

    def test_utilization_above_one_when_infeasible(self, disk):
        n = disk.max_streams_at_rate(6e6) + 2
        assert disk.round_feasibility([6e6] * n).disk_utilization > 1.0


class TestAdmission:
    def test_can_admit_matches_feasibility(self, disk):
        existing = [6e6] * 3
        assert disk.can_admit(existing, 6e6) == disk.round_feasibility(
            existing + [6e6]
        ).feasible

    def test_overhead_limits_many_slow_streams(self, disk):
        # Positioning overhead alone bounds the stream count: even 1 bps
        # streams cannot exceed round_s / overhead_s.
        cap = int(disk.round_s / disk.overhead_s)
        assert disk.max_streams_at_rate(1.0) == cap

    def test_faster_streams_fewer_slots(self, disk):
        assert disk.max_streams_at_rate(20e6) < disk.max_streams_at_rate(2e6)

    def test_service_time(self, disk):
        t = disk.service_time_s(600_000)
        assert t == pytest.approx(disk.overhead_s + 0.01)


class TestValidation:
    def test_overhead_exceeding_round_rejected(self):
        with pytest.raises(ValidationError):
            DiskModel(avg_seek_s=0.3, rotational_latency_s=0.3, round_s=0.5)

    def test_positive_parameters(self):
        with pytest.raises(ValidationError):
            DiskModel(transfer_rate_bps=0)
