"""Variant placement and rebalancing."""

import pytest

from repro.cmfs.server import MediaServer
from repro.cmfs.storage import rebalance, storage_by_server, validate_placement
from repro.documents.builder import make_news_article
from repro.documents.catalog import DocumentCatalog
from repro.util.errors import ServerError


@pytest.fixture
def catalog():
    return DocumentCatalog([make_news_article("doc.s")])


class TestValidatePlacement:
    def test_valid_when_fleet_covers(self, catalog):
        servers = [MediaServer("server-a"), MediaServer("server-b")]
        report = validate_placement(catalog, servers)
        assert report.valid
        assert report.orphan_servers == frozenset()
        assert report.variants_per_server["server-a"] > 0

    def test_orphans_detected(self, catalog):
        report = validate_placement(catalog, [MediaServer("server-a")])
        assert not report.valid
        assert report.orphan_servers == {"server-b"}

    def test_bits_accounted(self, catalog):
        servers = [MediaServer("server-a"), MediaServer("server-b")]
        report = validate_placement(catalog, servers)
        total = sum(report.bits_per_server.values())
        document = next(iter(catalog))
        assert total == pytest.approx(
            sum(v.size_bits for v in document.iter_variants())
        )


class TestStorageByServer:
    def test_matches_report(self, catalog):
        servers = [MediaServer("server-a"), MediaServer("server-b")]
        report = validate_placement(catalog, servers)
        assert storage_by_server(catalog) == report.bits_per_server


class TestRebalance:
    def test_round_robin_spread(self, catalog):
        document = next(iter(catalog))
        balanced = rebalance(document, ["s1", "s2", "s3"])
        servers_used = {v.server_id for v in balanced.iter_variants()}
        assert servers_used == {"s1", "s2", "s3"}

    def test_preserves_everything_else(self, catalog):
        document = next(iter(catalog))
        balanced = rebalance(document, ["s1"])
        assert balanced.document_id == document.document_id
        assert balanced.variant_counts() == document.variant_counts()
        original = list(document.iter_variants())
        moved = list(balanced.iter_variants())
        for before, after in zip(original, moved):
            assert before.qos == after.qos
            assert before.size_bits == after.size_bits

    def test_empty_server_list_rejected(self, catalog):
        with pytest.raises(ServerError):
            rebalance(next(iter(catalog)), [])
