"""Admission control: the four rules and their relaxation."""

import pytest

from repro.cmfs.admission import AdmissionController
from repro.cmfs.disk import DiskModel


@pytest.fixture
def controller():
    return AdmissionController(disk=DiskModel())


class TestRules:
    def test_admits_when_empty(self, controller):
        assert controller.evaluate([], 6e6)

    def test_stream_limit(self):
        controller = AdmissionController(disk=DiskModel(), max_streams=2)
        decision = controller.evaluate([1e5, 1e5], 1e5)
        assert not decision and decision.limiting_resource == "streams"

    def test_disk_limit(self, controller):
        n = controller.disk.max_streams_at_rate(6e6)
        decision = controller.evaluate([6e6] * n, 6e6)
        assert not decision and decision.limiting_resource == "disk"

    def test_buffer_limit(self):
        controller = AdmissionController(
            disk=DiskModel(), buffer_bits=10e6, max_streams=1000,
        )
        # one stream's double buffer = 2 * rate * 0.5 s = rate bits
        decision = controller.evaluate([6e6], 6e6)
        assert not decision and decision.limiting_resource == "buffer"

    def test_nic_limit(self):
        controller = AdmissionController(
            disk=DiskModel(transfer_rate_bps=1e12, avg_seek_s=1e-6,
                           rotational_latency_s=1e-6),
            buffer_bits=1e12,
            nic_bps=10e6,
            max_streams=1000,
        )
        decision = controller.evaluate([6e6], 6e6)
        assert not decision and decision.limiting_resource == "nic"

    def test_relaxed_disk_rule(self):
        lax = AdmissionController(
            disk=DiskModel(), enforce_disk=False, enforce_buffer=False,
            enforce_nic=False, max_streams=10_000,
        )
        assert lax.evaluate([6e6] * 100, 6e6)


class TestBufferDemand:
    def test_double_buffering(self, controller):
        assert controller.buffer_demand_bits(6e6) == pytest.approx(
            2 * 6e6 * controller.disk.round_s
        )


class TestHeadroom:
    def test_headroom_is_admissible(self, controller):
        existing = [6e6] * 3
        headroom = controller.headroom(existing)
        assert headroom > 0
        assert controller.evaluate(existing, headroom * 0.999)

    def test_just_above_headroom_rejected(self, controller):
        existing = [6e6] * 3
        headroom = controller.headroom(existing)
        assert not controller.evaluate(existing, headroom * 1.01)

    def test_headroom_shrinks_with_load(self, controller):
        assert controller.headroom([6e6] * 4) < controller.headroom([6e6])
