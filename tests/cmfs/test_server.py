"""Media server: admission, release, degradation shedding."""

import pytest

from repro.cmfs.server import MediaServer
from repro.util.errors import AdmissionError, ReservationError


@pytest.fixture
def server():
    return MediaServer("server-a")


class TestAdmission:
    def test_admit_tracks_stream(self, server):
        reservation = server.admit("v1", 6e6, holder="h1")
        assert server.stream_count == 1
        assert server.aggregate_rate_bps == 6e6
        assert reservation.server_id == "server-a"
        assert server.scheduler.stream_count == 1

    def test_admit_saturates(self, server):
        cap = server.disk.max_streams_at_rate(6e6)
        for i in range(cap):
            server.admit(f"v{i}", 6e6)
        with pytest.raises(AdmissionError):
            server.admit("overflow", 6e6)

    def test_release(self, server):
        reservation = server.admit("v1", 6e6)
        server.release(reservation)
        assert server.stream_count == 0
        assert server.scheduler.stream_count == 0

    def test_release_by_id(self, server):
        reservation = server.admit("v1", 6e6)
        server.release(reservation.stream_id)
        assert server.stream_count == 0

    def test_double_release_rejected(self, server):
        reservation = server.admit("v1", 6e6)
        server.release(reservation)
        with pytest.raises(ReservationError):
            server.release(reservation)

    def test_release_all(self, server):
        server.admit("v1", 6e6)
        server.admit("v2", 6e6)
        server.release_all()
        assert server.stream_count == 0

    def test_utilization_grows(self, server):
        before = server.disk_utilization
        server.admit("v1", 6e6)
        assert server.disk_utilization > before


class TestDegradation:
    def test_healthy_server_no_victims(self, server):
        server.admit("v1", 6e6, holder="h1")
        assert server.violated_holders() == frozenset()

    def test_latest_admissions_shed_first(self, server):
        server.admit("v1", 6e6, holder="old")
        server.admit("v2", 6e6, holder="new")
        server.set_degradation(0.8)
        victims = server.violated_holders()
        assert "new" in victims and "old" not in victims

    def test_total_degradation_sheds_all(self, server):
        server.admit("v1", 6e6, holder="a")
        server.admit("v2", 6e6, holder="b")
        server.set_degradation(1.0)
        assert server.violated_holders() == {"a", "b"}

    def test_healing(self, server):
        server.admit("v1", 6e6, holder="a")
        server.set_degradation(0.95)
        assert server.violated_holders()
        server.set_degradation(0.0)
        assert server.violated_holders() == frozenset()

    def test_mild_degradation_harmless(self, server):
        server.admit("v1", 6e6, holder="a")
        server.set_degradation(0.1)
        assert server.violated_holders() == frozenset()


class TestRounds:
    def test_execute_round_returns_plan(self, server):
        server.admit("v1", 6e6)
        plan = server.execute_round()
        assert plan.feasible and plan.order
