"""Round scheduler: SCAN ordering, seek-cost advantage, stream management."""

import numpy as np
import pytest

from repro.cmfs.disk import DiskModel
from repro.cmfs.scheduler import RoundScheduler, SchedulingPolicy
from repro.util.errors import ServerError


@pytest.fixture
def scan():
    return RoundScheduler(DiskModel(), SchedulingPolicy.SCAN)


@pytest.fixture
def fcfs():
    return RoundScheduler(DiskModel(), SchedulingPolicy.FCFS)


def load(scheduler, positions):
    for i, pos in enumerate(positions):
        scheduler.add_stream(f"s{i}", 1e6, track_position=pos)


class TestStreamManagement:
    def test_add_remove(self, scan):
        scan.add_stream("s1", 2e6)
        assert scan.stream_count == 1
        scan.remove_stream("s1")
        assert scan.stream_count == 0

    def test_duplicate_rejected(self, scan):
        scan.add_stream("s1", 2e6)
        with pytest.raises(ServerError):
            scan.add_stream("s1", 2e6)

    def test_remove_unknown_rejected(self, scan):
        with pytest.raises(ServerError):
            scan.remove_stream("ghost")

    def test_rates(self, scan):
        scan.add_stream("s1", 2e6)
        scan.add_stream("s2", 3e6)
        assert sorted(scan.rates()) == [2e6, 3e6]


class TestPlanning:
    def test_scan_orders_by_position(self, scan):
        load(scan, [0.9, 0.1, 0.5])
        plan = scan.plan_round()
        assert plan.order == ("s1", "s2", "s0")

    def test_fcfs_keeps_arrival_order(self, fcfs):
        load(fcfs, [0.9, 0.1, 0.5])
        plan = fcfs.plan_round()
        assert plan.order == ("s0", "s1", "s2")

    def test_scan_never_costs_more_seek_than_fcfs(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            positions = rng.random(6).tolist()
            scan = RoundScheduler(DiskModel(), SchedulingPolicy.SCAN)
            fcfs = RoundScheduler(DiskModel(), SchedulingPolicy.FCFS)
            load(scan, positions)
            load(fcfs, positions)
            assert scan.plan_round().seek_cost <= fcfs.plan_round().seek_cost + 1e-12

    def test_feasibility_reported(self, scan):
        for i in range(40):
            scan.add_stream(f"s{i}", 6e6)
        assert not scan.plan_round().feasible


class TestExecution:
    def test_positions_advance(self, scan):
        scan.add_stream("s1", 1e6, track_position=0.0)
        scan.execute_round()
        state = scan._streams["s1"]
        assert 0.0 < state.track_position < 0.1
        assert state.blocks_served == 1

    def test_positions_wrap(self, scan):
        scan.add_stream("s1", 1e6, track_position=0.99)
        scan.execute_round()
        assert scan._streams["s1"].track_position < 0.99

    def test_rng_jitter_deterministic(self):
        def run(seed):
            scheduler = RoundScheduler(DiskModel())
            scheduler.add_stream("s1", 1e6)
            scheduler.execute_round(np.random.default_rng(seed))
            return scheduler._streams["s1"].track_position

        assert run(5) == run(5)
        assert run(5) != run(6)
