"""The storm controller: wiring, wave buffering, class batching."""

from types import SimpleNamespace

import pytest

from repro.session.runtime import SessionRuntime
from repro.storm import StormController
from repro.util.errors import ValidationError


@pytest.fixture
def runtime(manager, loop):
    return SessionRuntime(manager, loop)


def stub_session(session_id, document_id, offer_id):
    """Just enough surface for the batching key computation."""
    return SimpleNamespace(
        session_id=session_id,
        current_offer_id=offer_id,
        result=SimpleNamespace(
            offer_space=SimpleNamespace(
                document=SimpleNamespace(document_id=document_id)
            )
        ),
    )


class TestAttachment:
    def test_takes_over_violation_handling(self, runtime):
        assert runtime.adaptation_enabled
        controller = StormController(runtime, seed=1)
        # The sweep must stop adapting per-session and hand victims
        # here instead.
        assert not runtime.adaptation_enabled
        assert runtime.on_violation == controller.on_violation

    def test_invalid_parameters(self, runtime):
        with pytest.raises(ValidationError):
            StormController(runtime, wave_delay_s=0.0)
        with pytest.raises(ValidationError):
            StormController(runtime, max_class_candidates=0)
        with pytest.raises(ValidationError):
            StormController(runtime, retry_budget=-1)
        with pytest.raises(ValidationError):
            StormController(runtime, jitter=2.0)


class TestWaveBuffering:
    def test_burst_schedules_one_wave(self, runtime, loop):
        controller = StormController(runtime, wave_delay_s=0.5, seed=1)
        for i in range(5):
            controller.on_violation(
                SimpleNamespace(session_id=f"session-{i}")
            )
        # One wave event for the whole burst, not one per violation.
        assert len(controller._pending) == 5
        assert controller._wave_scheduled
        loop.run()
        assert not controller._wave_scheduled
        assert controller._pending == {}

    def test_wave_skips_vanished_sessions(self, runtime, loop):
        controller = StormController(runtime, seed=1)
        controller.on_violation(SimpleNamespace(session_id="ghost"))
        loop.run()
        # Nothing to process: the session never existed in the runtime.
        assert controller.stats.waves == 0
        assert controller.stats.sessions_processed == 0

    def test_duplicate_violations_collapse(self, runtime, loop):
        controller = StormController(runtime, seed=1)
        for _ in range(3):
            controller.on_violation(SimpleNamespace(session_id="same"))
        assert len(controller._pending) == 1


class TestClassBatching:
    def test_groups_by_document_and_offer(self):
        sessions = [
            stub_session("s3", "doc.a", "offer-1"),
            stub_session("s1", "doc.a", "offer-1"),
            stub_session("s2", "doc.a", "offer-2"),
            stub_session("s4", "doc.b", "offer-1"),
        ]
        batches = StormController._batch_by_class(sessions)
        assert set(batches) == {
            ("doc.a", "offer-1"), ("doc.a", "offer-2"),
            ("doc.b", "offer-1"),
        }
        # Members are ordered by session id so waves replay identically.
        assert [
            s.session_id for s in batches[("doc.a", "offer-1")]
        ] == ["s1", "s3"]

    def test_missing_offer_space_still_batches(self):
        session = stub_session("s1", "doc.a", "offer-1")
        session.result.offer_space = None
        batches = StormController._batch_by_class([session])
        assert set(batches) == {("?", "offer-1")}


def stub_candidate(offer_id, servers=()):
    return SimpleNamespace(
        offer=SimpleNamespace(
            offer_id=offer_id,
            servers_used=lambda servers=frozenset(servers): servers,
        )
    )


class TestClassPlanMemo:
    """The cross-wave class-plan memo: a storm that hits the same class
    wave after wave rediscovers nothing, and any change in the degraded
    set invalidates the memo wholesale."""

    def classified_session(self, calls, offer_ids=("offer-1", "offer-2", "offer-3")):
        session = stub_session("s1", "doc.a", "offer-1")
        candidates = [stub_candidate(offer_id) for offer_id in offer_ids]

        def ensure_classified():
            calls.append("classify")
            return candidates

        session.result.ensure_classified = ensure_classified
        return session

    def test_second_wave_reuses_the_candidate_list(self, runtime):
        controller = StormController(runtime, seed=1)
        calls = []
        session = self.classified_session(calls)
        first = controller._class_candidates(session)
        second = controller._class_candidates(session)
        assert second is first
        assert calls == ["classify"]
        # The current offer is never its own alternate.
        assert [c.offer.offer_id for c in first] == ["offer-2", "offer-3"]

    def test_degraded_set_change_invalidates(self, runtime, manager):
        controller = StormController(runtime, seed=1)
        calls = []
        session = self.classified_session(calls)
        controller._class_candidates(session)
        next(iter(manager.committer.servers.values())).set_degradation(0.5)
        controller._class_candidates(session)
        # The healthy/tainted split depends on the degraded set, so the
        # memo must not survive it.
        assert calls == ["classify", "classify"]

    def test_degraded_servers_sort_behind_healthy(self, runtime, manager):
        controller = StormController(runtime, seed=1)
        degraded_id = next(iter(manager.committer.servers))
        manager.committer.servers[degraded_id].set_degradation(0.5)
        session = stub_session("s1", "doc.a", "offer-0")
        tainted = stub_candidate("offer-1", servers={degraded_id})
        healthy = stub_candidate("offer-2")
        session.result.ensure_classified = lambda: [tainted, healthy]
        picked = controller._class_candidates(session)
        assert [c.offer.offer_id for c in picked] == ["offer-2", "offer-1"]
        # And the reordered list is what later waves replay.
        assert controller._class_candidates(session) is picked
