"""The admission gate: token bucket, retry queue, honest shedding."""

import pytest

from repro.core.negotiation import NegotiationResult
from repro.core.status import NegotiationStatus
from repro.session import EventLoop
from repro.storm import AdmissionGate, GatePolicy, TokenBucket
from repro.util.clock import ManualClock
from repro.util.errors import ValidationError


def succeeded():
    return NegotiationResult(status=NegotiationStatus.SUCCEEDED)


def try_later(hint=None):
    return NegotiationResult(
        status=NegotiationStatus.FAILED_TRY_LATER, retry_after_s=hint
    )


class Collector:
    """Record every delivery with its simulated timestamp."""

    def __init__(self, loop):
        self.loop = loop
        self.results = []

    def __call__(self, result):
        self.results.append((self.loop.now, result))

    @property
    def statuses(self):
        return [result.status for _, result in self.results]


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(2.0, 3)
        assert bucket.tokens == 3.0
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_at_rate_capped_at_burst(self):
        bucket = TokenBucket(2.0, 3)
        for _ in range(3):
            bucket.try_take(0.0)
        assert not bucket.try_take(0.4)   # 0.8 tokens accrued
        assert bucket.try_take(0.5)        # 1.0 token at t=0.5
        assert bucket.try_take(100.0)      # refill caps at burst
        assert bucket.tokens == pytest.approx(2.0)

    def test_time_until_token(self):
        bucket = TokenBucket(4.0, 1)
        assert bucket.time_until_token(0.0) == 0.0
        bucket.try_take(0.0)
        assert bucket.time_until_token(0.0) == pytest.approx(0.25)

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(1.0, 1)
        bucket.try_take(10.0)
        # An earlier timestamp must not un-spend the refill stamp.
        assert bucket.time_until_token(5.0) == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            TokenBucket(0.0, 1)
        with pytest.raises(ValidationError):
            TokenBucket(1.0, 0)


class TestGatePolicy:
    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            GatePolicy(rate_per_s=0.0)
        with pytest.raises(ValidationError):
            GatePolicy(burst=0)
        with pytest.raises(ValidationError):
            GatePolicy(queue_limit=-1)
        with pytest.raises(ValidationError):
            GatePolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            GatePolicy(min_retry_delay_s=-1.0)


def tight_policy(**overrides):
    """One token, one queue slot, no jitter: every decision is forced."""
    defaults = dict(
        rate_per_s=1.0, burst=1, queue_limit=1, retry_limit=0, jitter=0.0,
    )
    defaults.update(overrides)
    return GatePolicy(**defaults)


class TestGateDecisions:
    def test_admit_queue_shed(self, loop):
        gate = AdmissionGate(loop, policy=tight_policy(), seed=3)
        sink = Collector(loop)
        for i in range(3):
            gate.submit(f"r{i}", succeeded, sink)
        # Token paid the first, the second parked, the third found the
        # queue full and was shed immediately with a synthetic verdict.
        assert gate.stats.admitted == 1
        assert gate.stats.queued == 1
        assert gate.stats.shed == 1
        assert sink.statuses == [
            NegotiationStatus.SUCCEEDED,
            NegotiationStatus.FAILED_TRY_LATER,
        ]
        loop.run()
        # The parked request redispatched once a token freed.
        assert gate.stats.redispatched == 1
        assert sink.statuses[-1] is NegotiationStatus.SUCCEEDED
        assert gate.queue_depth == 0

    def test_shed_hint_is_honest(self, loop):
        gate = AdmissionGate(loop, policy=tight_policy(), seed=3)
        sink = Collector(loop)
        for i in range(3):
            gate.submit(f"r{i}", succeeded, sink)
        _, shed_verdict = sink.results[-1]
        # One token short (1s at 1/s) plus one queued request ahead
        # (another 1s of refill): resubmitting before ~2s is pointless.
        assert shed_verdict.retry_after_s == pytest.approx(2.0)

    def test_passthrough_mode_runs_inline(self, loop):
        gate = AdmissionGate(
            loop, policy=tight_policy(), seed=3, enabled=False
        )
        sink = Collector(loop)
        for i in range(5):
            gate.submit(f"r{i}", succeeded, sink)
        # No gating at all: every attempt ran synchronously.
        assert gate.stats.admitted == 5
        assert gate.stats.queued == 0
        assert gate.stats.shed == 0
        assert len(sink.results) == 5
        assert gate.queue_depth == 0


class TestTryLaterRequeue:
    def test_honours_managers_hint(self, loop):
        calls = []

        def flaky():
            calls.append(loop.now)
            return try_later(hint=5.0) if len(calls) == 1 else succeeded()

        gate = AdmissionGate(
            loop, policy=tight_policy(retry_limit=2, queue_limit=4), seed=3
        )
        sink = Collector(loop)
        gate.submit("r", flaky, sink)
        assert sink.results == []  # parked on the hint, not delivered
        loop.run()
        assert gate.stats.requeued_try_later == 1
        assert sink.statuses == [NegotiationStatus.SUCCEEDED]
        # The retry waited out the manager's own retry_after_s hint.
        assert calls[1] - calls[0] >= 5.0 - 1e-9

    def test_budget_exhaustion_passes_failure_through(self, loop):
        gate = AdmissionGate(
            loop, policy=tight_policy(retry_limit=2, queue_limit=4), seed=3
        )
        sink = Collector(loop)
        gate.submit("r", lambda: try_later(hint=1.0), sink)
        loop.run()
        assert gate.stats.requeued_try_later == 2
        assert sink.statuses == [NegotiationStatus.FAILED_TRY_LATER]
        # The delivered verdict is the manager's own, hint included.
        assert sink.results[0][1].retry_after_s == pytest.approx(1.0)

    def test_zero_retry_limit_delivers_first_verdict(self, loop):
        gate = AdmissionGate(loop, policy=tight_policy(), seed=3)
        sink = Collector(loop)
        gate.submit("r", lambda: try_later(hint=9.0), sink)
        assert sink.statuses == [NegotiationStatus.FAILED_TRY_LATER]
        assert gate.stats.requeued_try_later == 0


class TestDeterminism:
    def _run_once(self, seed):
        clock = ManualClock()
        loop = EventLoop(clock)
        policy = GatePolicy(
            rate_per_s=1.0, burst=2, queue_limit=8, retry_limit=1,
            jitter=0.3,
        )
        gate = AdmissionGate(loop, policy=policy, seed=seed)
        sink = Collector(loop)
        for i in range(6):
            loop.at(
                i * 0.1,
                lambda i=i: gate.submit(f"r{i}", succeeded, sink),
            )
        loop.run()
        return [
            (now, str(result.status)) for now, result in sink.results
        ]

    def test_same_seed_same_schedule(self):
        assert self._run_once(11) == self._run_once(11)

    def test_jitter_spreads_across_seeds(self):
        # Different seeds must de-synchronize the retry herd.
        assert self._run_once(11) != self._run_once(12)


class TestMonotoneHints:
    """When the gate and the manager both produce retry hints for one
    refusal, the surfaced hint is the max — a client resubmitting any
    earlier is guaranteed to fail again."""

    def test_shed_after_requeue_surfaces_the_managers_larger_hint(
        self, loop
    ):
        gate = AdmissionGate(
            loop,
            policy=tight_policy(retry_limit=3, queue_limit=0),
            seed=3,
        )
        sink = Collector(loop)
        gate.submit("r", lambda: try_later(hint=30.0), sink)
        loop.run()
        # The FAILEDTRYLATER verdict tried to requeue, found the queue
        # full, and was shed — but the manager already said "not before
        # 30 s", which dominates the gate's own token-refill hint.
        assert gate.stats.shed == 1
        assert sink.statuses == [NegotiationStatus.FAILED_TRY_LATER]
        assert sink.results[-1][1].retry_after_s == pytest.approx(30.0)

    def test_shed_hint_never_shrinks_below_the_gates_own(self, loop):
        gate = AdmissionGate(
            loop,
            policy=tight_policy(retry_limit=3, queue_limit=0),
            seed=3,
        )
        sink = Collector(loop)
        gate.submit("r", lambda: try_later(hint=0.01), sink)
        loop.run()
        # A tiny manager hint must not override the gate's knowledge
        # that no token frees for ~1 s.
        hint = sink.results[-1][1].retry_after_s
        assert hint is not None
        assert hint >= 1.0 - 1e-9

    def test_terminal_passthrough_keeps_the_largest_hint_seen(self, loop):
        hints = iter([20.0, 0.5, 0.5])

        def shrinking():
            return try_later(hint=next(hints))

        gate = AdmissionGate(
            loop,
            policy=tight_policy(retry_limit=2, queue_limit=4),
            seed=3,
        )
        sink = Collector(loop)
        gate.submit("r", shrinking, sink)
        loop.run()
        # Retries exhausted: the last verdict passes through, but its
        # 0.5 s hint would contradict the 20 s the manager demanded two
        # attempts ago — the max wins.
        assert gate.stats.requeued_try_later == 2
        assert sink.statuses == [NegotiationStatus.FAILED_TRY_LATER]
        assert sink.results[-1][1].retry_after_s >= 20.0 - 1e-9


class TestSubmitDeferred:
    """The deferred path: the gate decides *when* a negotiation task
    starts, and the task reports its verdict through a callback instead
    of a synchronous return."""

    def test_admitted_start_is_called_and_verdict_flows_through(
        self, loop
    ):
        gate = AdmissionGate(loop, policy=tight_policy(), seed=3)
        sink = Collector(loop)
        started = []

        def start(done):
            started.append(loop.now)
            loop.after(0.5, lambda: done(succeeded()))

        gate.submit_deferred("r", start, sink)
        assert started == [0.0]
        assert sink.results == []  # verdict not in yet
        loop.run()
        assert sink.statuses == [NegotiationStatus.SUCCEEDED]
        assert gate.stats.delivered == 1

    def test_shed_request_never_starts(self, loop):
        gate = AdmissionGate(
            loop, policy=tight_policy(queue_limit=0), seed=3
        )
        sink = Collector(loop)
        started = []

        def start(done):
            started.append(loop.now)
            done(succeeded())

        gate.submit_deferred("r1", start, sink)
        gate.submit_deferred("r2", start, sink)
        # One token: r1 started, r2 was shed without ever starting.
        assert started == [0.0]
        assert gate.stats.shed == 1
        assert sink.statuses[-1] is NegotiationStatus.FAILED_TRY_LATER

    def test_deferred_try_later_requeues_and_restarts(self, loop):
        gate = AdmissionGate(
            loop,
            policy=tight_policy(retry_limit=2, queue_limit=4),
            seed=3,
        )
        sink = Collector(loop)
        starts = []

        def start(done):
            starts.append(loop.now)
            done(
                try_later(hint=2.0) if len(starts) == 1 else succeeded()
            )

        gate.submit_deferred("r", start, sink)
        loop.run()
        assert len(starts) == 2
        assert starts[1] - starts[0] >= 2.0 - 1e-9
        assert sink.statuses == [NegotiationStatus.SUCCEEDED]

    def test_passthrough_mode_starts_inline(self, loop):
        gate = AdmissionGate(
            loop, policy=tight_policy(), seed=3, enabled=False
        )
        sink = Collector(loop)
        started = []
        gate.submit_deferred(
            "r",
            lambda done: (started.append(loop.now), done(succeeded()))[0],
            sink,
        )
        assert started == [0.0]
        assert sink.statuses == [NegotiationStatus.SUCCEEDED]
