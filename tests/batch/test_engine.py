"""The batch engine end to end: byte-exact with the sequential procedure.

``negotiate_batch`` must be observably identical to ``[negotiate(r) for
r in requests]`` — per-request ``(status, offer id, attempts)``, in
submission order, against the same evolving ledgers — while planning
once per capability class.
"""

from dataclasses import replace

import pytest

from repro.batch import BatchRequest, negotiate_batch
from repro.core import ProfileManager
from repro.core.preferences import UserPreferences
from repro.core.status import NegotiationStatus
from repro.perf.cache import CLASSIFICATIONS, SPACES
from repro.sim import ScenarioSpec, build_scenario

SPEC = ScenarioSpec(server_count=2, client_count=3, document_count=3)


def signature(result):
    return (
        result.status.name,
        result.chosen.offer.offer_id if result.chosen else None,
        result.attempts,
    )


def make_requests(scenario, profiles=("balanced", "premium"), repeat=3):
    """A head-heavy mix: every (document, profile) pair requested by
    ``repeat`` distinct clients — distinct identities, one capability
    class per pair."""
    manager = ProfileManager()
    clients = list(scenario.clients.values())
    requests = []
    for document_id in scenario.document_ids():
        for name in profiles:
            profile = manager.get(name)
            for index in range(repeat):
                requests.append(
                    BatchRequest(
                        document=document_id,
                        profile=profile,
                        client=clients[index % len(clients)],
                        tag=f"{document_id}:{name}:{index}",
                    )
                )
    return requests


def run_sequential(scenario, requests, release=False):
    signatures = []
    for request in requests:
        result = scenario.manager.negotiate(
            request.document, request.profile, request.client
        )
        signatures.append(signature(result))
        if release and result.commitment is not None:
            result.commitment.reject(scenario.manager.clock.now())
    return signatures


def run_batched(scenario, requests, release=False):
    def after_each(request, result):
        if release and result.commitment is not None:
            result.commitment.reject(scenario.manager.clock.now())

    results = negotiate_batch(
        scenario.manager, requests, after_each=after_each
    )
    return [signature(result) for result in results]


class TestEquivalence:
    @pytest.mark.parametrize("use_cache", [False, True])
    def test_batched_equals_sequential_accumulating(self, use_cache):
        """No releases: reservations pile up, later walks see scarcer
        ledgers, and the batched walk must see exactly the same ones."""
        sequential = build_scenario(SPEC)
        batched = build_scenario(SPEC, use_cache=use_cache)
        requests = make_requests(sequential)
        assert run_batched(batched, requests) == run_sequential(
            sequential, requests
        )

    @pytest.mark.parametrize("offer_mode", ["full", "stream"])
    def test_batched_equals_sequential_steady_state(self, offer_mode):
        """Reject-after-each: every member walks pristine ledgers, the
        bench's configuration."""
        sequential = build_scenario(SPEC, offer_mode=offer_mode)
        batched = build_scenario(SPEC, offer_mode=offer_mode, use_cache=True)
        requests = make_requests(sequential)
        assert run_batched(batched, requests, release=True) == run_sequential(
            sequential, requests, release=True
        )

    def test_mixed_modes_and_bounds(self):
        sequential = build_scenario(SPEC)
        batched = build_scenario(SPEC)
        base = make_requests(sequential, repeat=2)
        requests = []
        for index, request in enumerate(base):
            if index % 3 == 1:
                request = replace(request, max_offers=2)
            elif index % 3 == 2:
                request = replace(request, offer_mode="stream")
            requests.append(request)
        expected = []
        for request in requests:
            result = sequential.manager.negotiate(
                request.document,
                request.profile,
                request.client,
                max_offers=request.max_offers,
                offer_mode=request.offer_mode,
            )
            expected.append(signature(result))
        assert run_batched(batched, requests) == expected


class TestFallback:
    def test_unbatchable_requests_keep_their_slot(self):
        scenario = build_scenario(SPEC, telemetry_seed=0)
        profile = ProfileManager().get("balanced")
        quirky = replace(
            profile,
            preferences=UserPreferences(
                server_preference={"server-a": 1.0}
            ),
        )
        client = scenario.any_client()
        document_id = scenario.document_ids()[0]
        requests = [
            BatchRequest(document_id, profile, client, tag="plain-1"),
            BatchRequest(document_id, quirky, client, tag="quirky"),
            BatchRequest(document_id, profile, client, tag="plain-2"),
        ]
        results = negotiate_batch(scenario.manager, requests)
        assert len(results) == 3
        assert all(
            result.status is NegotiationStatus.SUCCEEDED
            for result in results
        )
        # Two batchable members → one plan; the preference request fell
        # back to plain negotiate in its slot and never joined a class.
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("batch.plans") == 1
        assert metrics.counter_value("batch.coalesced", site="batch") == 1


class TestAfterEach:
    def test_called_once_per_request_in_order(self):
        scenario = build_scenario(SPEC)
        requests = make_requests(scenario, repeat=2)
        seen = []

        def after_each(request, result):
            seen.append(request.tag)
            if result.commitment is not None:
                result.commitment.release()

        negotiate_batch(scenario.manager, requests, after_each=after_each)
        assert seen == [request.tag for request in requests]

    def test_runs_before_the_next_member_walks(self):
        """Releasing inside after_each must restore the ledgers before
        the next walk — so every member of a class lands on the same
        offer, which only holds if the callback really runs in between."""
        scenario = build_scenario(ScenarioSpec(server_count=1, client_count=1))

        def after_each(request, result):
            if result.commitment is not None:
                result.commitment.release()

        requests = make_requests(scenario, profiles=("balanced",), repeat=4)
        results = negotiate_batch(
            scenario.manager, requests, after_each=after_each
        )
        offers = {signature(result) for result in results[:4]}
        assert len(offers) == 1
        assert scenario.topology.total_reserved_bps() == 0.0


class TestSharedClassification:
    def test_preseed_charges_one_miss_per_class(self):
        """Several classes over one offer space: the SoA pass classifies
        them together, each class costs exactly the one classification
        miss the sequential path would have charged, and the per-class
        plan is then a pure hit."""
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=2, document_count=1),
            use_cache=True,
        )
        document_id = scenario.document_ids()[0]
        client = scenario.any_client()
        manager = ProfileManager()
        requests = [
            BatchRequest(document_id, manager.get(name), client)
            for name in ("balanced", "premium", "economy")
            for _ in range(2)
        ]
        results = negotiate_batch(
            scenario.manager,
            requests,
            after_each=lambda request, result: (
                result.commitment.release()
                if result.commitment is not None
                else None
            ),
        )
        cache = scenario.manager.cache
        assert cache.stats.misses[SPACES] == 1
        assert cache.stats.misses[CLASSIFICATIONS] == 3
        # The three per-class plans all hit the preseeded rows.
        assert cache.stats.hits[CLASSIFICATIONS] >= 3
        assert all(
            result.status is NegotiationStatus.SUCCEEDED
            for result in results
        )

    def test_preseeded_outcomes_match_uncached(self):
        cached = build_scenario(SPEC, use_cache=True)
        plain = build_scenario(SPEC)
        requests = make_requests(cached)
        assert run_batched(cached, requests, release=True) == run_batched(
            plain, requests, release=True
        )
