"""Capability equivalence classes: what batches together and what must not.

The class key is the contract the whole batch engine rests on: two
requests share a key exactly when every input steps 1–4 read is
structurally equal, and everything identity-like (client id, access
point, profile name, caller tag) is excluded by construction.
"""

from dataclasses import replace

import pytest

from repro.batch import BatchRequest, request_class_key
from repro.client.machine import ClientMachine
from repro.core import ProfileManager
from repro.core.classification import ClassificationPolicy
from repro.core.preferences import UserPreferences
from repro.documents.media import ColorMode
from repro.network.transport import GuaranteeType
from repro.perf.cache import NegotiationCache


@pytest.fixture
def profile():
    return ProfileManager().get("balanced")


def make_request(manager, profile, client, **kwargs):
    return request_class_key(
        manager, BatchRequest("doc.test", profile, client, **kwargs)
    )


@pytest.fixture
def base_key(manager, profile, client):
    return make_request(manager, profile, client)


class TestIdentityExclusion:
    def test_client_identity_is_excluded(self, manager, profile, client, base_key):
        other = ClientMachine("bob", access_point="server-a-net")
        assert make_request(manager, profile, other) == base_key

    def test_profile_identity_is_excluded(self, manager, profile, client, base_key):
        renamed = replace(profile, name="balanced-copy")
        assert make_request(manager, renamed, client) == base_key

    def test_tag_is_excluded(self, manager, profile, client, base_key):
        tagged = make_request(manager, profile, client, tag="session-17")
        assert tagged == base_key

    def test_structurally_equal_copies_share_a_class(
        self, manager, profile, client, base_key
    ):
        # A rebuilt profile and a rebuilt client: no shared identity at
        # all, yet the same capability class.
        rebuilt_profile = ProfileManager().get("balanced")
        rebuilt_client = ClientMachine("carol")
        assert rebuilt_profile is not profile
        assert make_request(manager, rebuilt_profile, rebuilt_client) == base_key


class TestCapabilitySplits:
    def test_client_capability_splits(self, manager, profile, base_key):
        grey = ClientMachine("alice", screen_color=ColorMode.BLACK_AND_WHITE)
        assert make_request(manager, profile, grey) != base_key

    def test_profile_bounds_split(self, manager, profile, client, base_key):
        premium = ProfileManager().get("premium")
        assert make_request(manager, premium, client) != base_key

    def test_policy_splits(self, manager, profile, client, base_key):
        assert (
            make_request(
                manager, profile, client, policy=ClassificationPolicy.PURE_OIF
            )
            != base_key
        )

    def test_guarantee_splits(self, manager, profile, client, base_key):
        assert (
            make_request(
                manager, profile, client, guarantee=GuaranteeType.BEST_EFFORT
            )
            != base_key
        )

    def test_walk_bounds_split(self, manager, profile, client, base_key):
        assert make_request(manager, profile, client, max_offers=3) != base_key
        assert (
            make_request(manager, profile, client, offer_mode="stream")
            != base_key
        )

    def test_document_splits(self, manager, profile, client, document, base_key):
        from repro.documents import make_news_article

        manager.database.insert_document(make_news_article("doc.other"))
        other = request_class_key(
            manager, BatchRequest("doc.other", profile, client)
        )
        assert other != base_key


class TestUnbatchable:
    def test_preferences_are_singletons(self, manager, profile, client):
        quirky = replace(
            profile,
            preferences=UserPreferences(server_preference={"server-a": 1.0}),
        )
        assert make_request(manager, quirky, client) is None


class TestCacheKeyAlignment:
    def test_class_key_extends_the_space_key(self, manager, profile, client):
        """The class key's prefix is exactly the negotiation cache's
        space key — that alignment is what makes the per-class plan a
        pure cache interaction."""
        key = make_request(manager, profile, client)
        space_key = NegotiationCache.space_key(
            document_id="doc.test",
            version=manager.database.version_of("doc.test"),
            client=client,
            guarantee=manager.guarantee,
            cost_model=manager.cost_model,
            mapper=manager.mapper,
        )
        assert key[: len(space_key)] == space_key
