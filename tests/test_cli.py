"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENT_INDEX, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "balanced"

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--negotiator", "static", "--rate", "0.3", "--seed", "9"]
        )
        assert args.negotiator == "static"
        assert args.rate == 0.3
        assert args.seed == 9

    def test_unknown_negotiator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--negotiator", "magic"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.faults == []
        assert args.seed == 1
        assert args.requests == 4

    def test_chaos_repeatable_faults(self):
        args = build_parser().parse_args(
            ["chaos", "--fault", "crash:server-a:5:10",
             "--fault", "flap:L-client-1:20:5", "--seed", "7"]
        )
        assert args.faults == [
            "crash:server-a:5:10", "flap:L-client-1:20:5"
        ]
        assert args.seed == 7


class TestCommands:
    def test_experiments_lists_index(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id, _, _ in EXPERIMENT_INDEX:
            assert f"| {experiment_id} " in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--documents", "1"]) == 0
        out = capsys.readouterr().out
        assert "QoS GUI" in out
        assert "SUCCEEDED" in out
        assert "completed" in out

    def test_demo_unknown_profile(self, capsys):
        assert main(["demo", "--profile", "ghost"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_windows_renders_all(self, capsys):
        assert main(["windows", "--profile", "economy"]) == 0
        out = capsys.readouterr().out
        for title in ("QoS GUI", "Profile components", "Video profile",
                      "Audio profile", "Cost profile"):
            assert title in out

    def test_sweep_runs(self, capsys):
        assert main(
            ["sweep", "--rate", "0.05", "--horizon", "200", "--seed", "3",
             "--no-adaptation"]
        ) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "SUCCEEDED" in out or "FAILED" in out

    def test_sweep_each_negotiator(self, capsys):
        for name in ("static", "cost-only"):
            assert main(
                ["sweep", "--negotiator", name, "--rate", "0.02",
                 "--horizon", "200"]
            ) == 0

    def test_chaos_demo_plan_runs_clean(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "chaos run report" in out
        assert "leaks at teardown" in out

    def test_chaos_explicit_fault(self, capsys):
        assert main(
            ["chaos", "--fault", "refuse:server-a:0:-:2",
             "--requests", "2", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "transient-refusal on server-a" in out

    def test_chaos_bad_fault_spec(self, capsys):
        assert main(["chaos", "--fault", "meteor:server-a"]) == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_chaos_unknown_profile(self, capsys):
        assert main(["chaos", "--profile", "ghost"]) == 2
        assert "unknown profile" in capsys.readouterr().err


class TestStorm:
    SMALL = ["storm", "--sessions", "60", "--late-requests", "12",
             "--seed", "3"]

    def test_storm_defaults(self):
        args = build_parser().parse_args(["storm"])
        assert args.sessions == 200
        assert args.severity == pytest.approx(0.4)
        assert not args.no_backpressure
        assert not args.compare

    def test_small_storm_runs_clean(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "storm run report" in out
        assert "survived" in out

    def test_json_emits_the_comparison(self, capsys):
        import json

        assert main(self.SMALL + ["--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["with_backpressure"]["backpressure"] is True
        assert document["without_backpressure"]["backpressure"] is False
        assert "demonstrates_thrash" in document

    def test_bare_flag_conflicts_with_compare(self, capsys):
        assert main(self.SMALL + ["--no-backpressure", "--json"]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_bad_severity_rejected(self, capsys):
        assert main(["storm", "--severity", "0"]) == 2
        assert "bad storm run" in capsys.readouterr().err

    def test_unknown_profile(self, capsys):
        assert main(["storm", "--profile", "ghost"]) == 2
        assert "unknown profile" in capsys.readouterr().err


class TestReport:
    def test_report_reads_tables(self, tmp_path, capsys):
        (tmp_path / "E01.txt").write_text("TABLE ONE\n")
        (tmp_path / "E02.txt").write_text("TABLE TWO\n")
        assert main(["report", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "TABLE ONE" in out and "TABLE TWO" in out
        assert "2 experiment tables" in out

    def test_report_missing_dir(self, tmp_path, capsys):
        assert main(["report", "--out-dir", str(tmp_path / "nope")]) == 2
        assert "no results" in capsys.readouterr().err

    def test_report_empty_dir(self, tmp_path, capsys):
        assert main(["report", "--out-dir", str(tmp_path)]) == 2
        assert "no tables" in capsys.readouterr().err
