"""Shared fixtures: a small but complete deployment every suite can use."""

from __future__ import annotations

import pytest

from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.core import QoSManager, standard_profiles
from repro.documents import make_news_article
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.session import EventLoop
from repro.util.clock import ManualClock


@pytest.fixture
def document():
    """The canonical news article (video+audio+image+text, 16 variants)."""
    return make_news_article("doc.test")


@pytest.fixture
def database(document):
    db = MetadataDatabase()
    db.insert_document(document)
    return db


@pytest.fixture
def topology():
    topo = Topology()
    topo.connect("client-net", "backbone", 100e6, link_id="L-client")
    topo.connect("backbone", "server-a-net", 155e6, link_id="L-a")
    topo.connect("backbone", "server-b-net", 155e6, link_id="L-b")
    return topo


@pytest.fixture
def servers():
    return {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }


@pytest.fixture
def transport(topology):
    return TransportSystem(topology)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def manager(database, transport, servers, clock):
    return QoSManager(
        database=database, transport=transport, servers=servers, clock=clock
    )


@pytest.fixture
def loop(clock):
    return EventLoop(clock)


@pytest.fixture
def client():
    return ClientMachine("alice", access_point="client-net")


@pytest.fixture
def balanced_profile():
    return next(p for p in standard_profiles() if p.name == "balanced")


@pytest.fixture
def premium_profile():
    return next(p for p in standard_profiles() if p.name == "premium")
