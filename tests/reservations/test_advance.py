"""Advance-booking negotiation ([Haf 96] extension)."""

import pytest

from repro.core.status import NegotiationStatus
from repro.reservations.advance import AdvanceBookingPlan, AdvanceNegotiator
from repro.util.errors import ReservationError


@pytest.fixture
def advance(manager):
    return AdvanceNegotiator(manager)


class TestNegotiateAdvance:
    def test_booking_succeeds(self, advance, document, balanced_profile, client):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=3600.0
        )
        assert isinstance(plan, AdvanceBookingPlan)
        assert plan.status is NegotiationStatus.SUCCEEDED
        assert plan.window == (3600.0, 3600.0 + document.duration_s)
        assert plan.bookings
        advance.cancel(plan)

    def test_does_not_touch_live_resources(
        self, advance, document, balanced_profile, client, transport, servers
    ):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=3600.0
        )
        assert transport.flow_count == 0
        assert all(s.stream_count == 0 for s in servers.values())
        advance.cancel(plan)

    def test_overlapping_windows_contend(self, advance, document,
                                         balanced_profile, client):
        plans = []
        while True:
            plan = advance.negotiate_advance(
                document.document_id, balanced_profile, client, start_s=0.0
            )
            if not isinstance(plan, AdvanceBookingPlan):
                assert plan.status is NegotiationStatus.FAILED_TRY_LATER
                break
            plans.append(plan)
            assert len(plans) < 100
        assert len(plans) >= 2
        for plan in plans:
            advance.cancel(plan)

    def test_disjoint_windows_do_not_contend(self, advance, document,
                                             balanced_profile, client):
        plans = []
        for slot in range(20):
            start = slot * 1000.0
            plan = advance.negotiate_advance(
                document.document_id, balanced_profile, client, start_s=start
            )
            assert isinstance(plan, AdvanceBookingPlan), f"slot {slot}"
            plans.append(plan)
        for plan in plans:
            advance.cancel(plan)

    def test_cancel_frees_window(self, advance, document, balanced_profile, client):
        plans = []
        while True:
            plan = advance.negotiate_advance(
                document.document_id, balanced_profile, client, start_s=0.0
            )
            if not isinstance(plan, AdvanceBookingPlan):
                break
            plans.append(plan)
        advance.cancel(plans.pop())
        retry = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        assert isinstance(retry, AdvanceBookingPlan)
        advance.cancel(retry)
        for plan in plans:
            advance.cancel(plan)

    def test_local_failure_carries_over(self, advance, document, balanced_profile):
        from repro.client.machine import ClientMachine
        from repro.documents.media import ColorMode

        bw = ClientMachine("bw", screen_color=ColorMode.BLACK_AND_WHITE,
                           access_point="client-net")
        result = advance.negotiate_advance(
            document.document_id, balanced_profile, bw, start_s=0.0
        )
        assert result.status is NegotiationStatus.FAILED_WITH_LOCAL_OFFER


class TestClaim:
    def test_claim_converts_to_live_commitment(
        self, advance, manager, document, balanced_profile, client, transport
    ):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        result = advance.claim(plan, balanced_profile, client)
        assert result.status is NegotiationStatus.SUCCEEDED
        assert transport.flow_count == len(plan.offer.variants)
        # The bookings are gone: the window is free again.
        assert all(len(l) == 0 for l in plan.ledgers)
        result.commitment.release()

    def test_double_claim_rejected(self, advance, document, balanced_profile, client):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        result = advance.claim(plan, balanced_profile, client)
        with pytest.raises(ReservationError):
            advance.claim(plan, balanced_profile, client)
        result.commitment.release()

    def test_claim_fails_when_live_system_full(
        self, advance, document, balanced_profile, client, topology
    ):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        topology.link("L-client").set_congestion(1.0)
        result = advance.claim(plan, balanced_profile, client)
        assert result.status is NegotiationStatus.FAILED_TRY_LATER

    def test_cancel_idempotent(self, advance, document, balanced_profile, client):
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        advance.cancel(plan)
        advance.cancel(plan)  # no raise
        assert plan.cancelled
