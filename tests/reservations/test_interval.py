"""Interval ledger: sweep-line peak usage and booking semantics."""

import pytest

from repro.reservations.interval import IntervalLedger
from repro.util.errors import CapacityError, ReservationError


@pytest.fixture
def ledger():
    return IntervalLedger("L", 10.0)


class TestBooking:
    def test_book_and_release(self, ledger):
        booking = ledger.book(0.0, 10.0, 4.0, "h1")
        assert len(ledger) == 1
        ledger.release(booking)
        assert len(ledger) == 0

    def test_release_by_id(self, ledger):
        booking = ledger.book(0.0, 10.0, 4.0, "h1")
        ledger.release(booking.booking_id)
        assert len(ledger) == 0

    def test_double_release_rejected(self, ledger):
        booking = ledger.book(0.0, 10.0, 4.0, "h1")
        ledger.release(booking)
        with pytest.raises(ReservationError):
            ledger.release(booking)

    def test_empty_window_rejected(self, ledger):
        with pytest.raises(ReservationError):
            ledger.book(5.0, 5.0, 1.0, "h")

    def test_over_capacity_rejected(self, ledger):
        ledger.book(0.0, 10.0, 8.0, "h1")
        with pytest.raises(CapacityError):
            ledger.book(5.0, 15.0, 3.0, "h2")

    def test_disjoint_windows_independent(self, ledger):
        ledger.book(0.0, 10.0, 10.0, "h1")
        ledger.book(10.0, 20.0, 10.0, "h2")  # no overlap: [10, 20) ok
        assert len(ledger) == 2

    def test_exact_fill(self, ledger):
        ledger.book(0.0, 10.0, 6.0, "h1")
        ledger.book(0.0, 10.0, 4.0, "h2")
        assert ledger.available(0.0, 10.0) == pytest.approx(0.0)


class TestPeakUsage:
    def test_peak_of_staircase(self, ledger):
        # [0,4): 2   [2,6): 3   [5,9): 4  -> peak 2+3=5 on [2,4), 3+4=7 on [5,6)
        ledger.book(0.0, 4.0, 2.0, "a")
        ledger.book(2.0, 6.0, 3.0, "b")
        ledger.book(5.0, 9.0, 4.0, "c")
        assert ledger.peak_usage(0.0, 10.0) == pytest.approx(7.0)
        assert ledger.peak_usage(0.0, 5.0) == pytest.approx(5.0)
        assert ledger.peak_usage(9.0, 10.0) == pytest.approx(0.0)

    def test_touching_intervals_do_not_stack(self, ledger):
        ledger.book(0.0, 5.0, 6.0, "a")
        ledger.book(5.0, 10.0, 6.0, "b")
        # Half-open windows: at t=5 only the second booking is active.
        assert ledger.peak_usage(0.0, 10.0) == pytest.approx(6.0)

    def test_usage_at_instant(self, ledger):
        ledger.book(0.0, 5.0, 3.0, "a")
        assert ledger.usage_at(2.0) == 3.0
        assert ledger.usage_at(5.0) == 0.0

    def test_available_clamped_non_negative(self):
        ledger = IntervalLedger("L", 5.0)
        ledger.book(0.0, 10.0, 5.0, "a")
        assert ledger.available(0.0, 10.0) == 0.0


class TestExpiry:
    def test_expire_before(self, ledger):
        ledger.book(0.0, 5.0, 1.0, "a")
        ledger.book(3.0, 8.0, 1.0, "b")
        assert ledger.expire_before(6.0) == 1
        assert len(ledger) == 1
