"""The §8 GUI windows rendered from live objects."""

import pytest

from repro.core.profile_manager import ProfileManager
from repro.documents.media import Medium
from repro.ui.windows import (
    audio_profile_window,
    cost_profile_window,
    information_window,
    main_window,
    profile_component_window,
    video_profile_window,
)


@pytest.fixture
def profiles():
    return ProfileManager()


class TestMainWindow:
    def test_lists_profiles_and_buttons(self, profiles):
        window = main_window(profiles)
        for name in profiles.names():
            assert name in window
        for button in ("OK", "Edit", "Delete", "EXIT"):
            assert button in window

    def test_default_starred(self, profiles):
        profiles.set_default("economy")
        window = main_window(profiles)
        line = next(l for l in window.splitlines() if "economy" in l)
        assert "*" in line


class TestProfileComponentWindow:
    def test_component_buttons(self, profiles):
        window = profile_component_window(profiles.get("balanced"))
        for label in ("video", "audio", "time", "cost"):
            assert label in window
        assert "Save as" in window

    def test_violated_buttons_marked(self, profiles):
        window = profile_component_window(
            profiles.get("balanced"),
            violated_media={Medium.VIDEO},
            cost_violated=True,
        )
        assert "[!video!]" in window
        assert "[!cost!]" in window
        assert "[ audio ]" in window


class TestEditorWindows:
    def test_video_window_bars(self, profiles):
        window = video_profile_window(profiles.get("balanced"))
        assert "frame rate" in window and "resolution" in window
        assert "show example" in window

    def test_video_window_with_offer(self, profiles, manager, document, client):
        profile = profiles.get("balanced")
        result = manager.negotiate(document.document_id, profile, client)
        window = video_profile_window(profile, offer=result.user_offer)
        assert "o=" in window  # offered value on the scaling bar
        result.commitment.release()

    def test_video_window_without_video(self, profiles):
        from repro.core.profile_manager import make_profile
        from repro.documents.media import AudioGrade
        from repro.documents.quality import AudioQoS

        audio_only = make_profile(
            "a", desired_audio=AudioQoS(grade=AudioGrade.CD)
        )
        assert "no video constraints" in video_profile_window(audio_only)

    def test_audio_window(self, profiles):
        window = audio_profile_window(profiles.get("balanced"))
        assert "quality" in window and "language" in window

    def test_cost_window(self, profiles):
        window = cost_profile_window(profiles.get("balanced"))
        assert "max cost" in window and "importance" in window


class TestInformationWindow:
    def test_success_shows_offer_and_timer(self, manager, document,
                                           balanced_profile, client):
        result = manager.negotiate(document.document_id, balanced_profile, client)
        window = information_window(result)
        assert "SUCCEEDED" in window
        assert "press OK within" in window
        assert "$" in window
        result.commitment.release()

    def test_try_later_shows_status_only(self, manager, document,
                                         balanced_profile, client, topology):
        topology.link("L-client").set_congestion(1.0)
        result = manager.negotiate(document.document_id, balanced_profile, client)
        window = information_window(result)
        assert "FAILEDTRYLATER" in window
        assert "press OK within" not in window


class TestBookingWindow:
    def test_booking_window_states(self, manager, document, balanced_profile, client):
        from repro.reservations import AdvanceNegotiator
        from repro.ui.windows import booking_window

        advance = AdvanceNegotiator(manager)
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=500.0
        )
        window = booking_window(plan)
        assert "Advance booking" in window
        assert "t=500s" in window
        assert "bookings held" in window
        advance.cancel(plan)
        assert "cancelled" in booking_window(plan)

    def test_booking_window_claimed(self, manager, document, balanced_profile, client):
        from repro.reservations import AdvanceNegotiator
        from repro.ui.windows import booking_window

        advance = AdvanceNegotiator(manager)
        plan = advance.negotiate_advance(
            document.document_id, balanced_profile, client, start_s=0.0
        )
        result = advance.claim(plan, balanced_profile, client)
        assert "claimed" in booking_window(plan)
        result.commitment.release()
