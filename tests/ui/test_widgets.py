"""Text-mode GUI widgets."""

import pytest

from repro.ui.widgets import button_row, choice_row, scale_bar
from repro.util.errors import ValidationError


class TestScaleBar:
    def test_markers_present(self):
        bar = scale_bar("rate", 1, 60, desired=25, worst=10, offer=15)
        assert "d=25" in bar and "w=10" in bar and "o=15" in bar

    def test_marker_positions_ordered(self):
        bar = scale_bar("rate", 0, 100, desired=90, worst=10)
        body = bar[bar.index("[") + 1: bar.index("]")]
        assert body.index("w") < body.index("d")

    def test_coincident_markers_star(self):
        bar = scale_bar("rate", 0, 100, desired=50, worst=50)
        body = bar[bar.index("[") + 1: bar.index("]")]
        assert "*" in body

    def test_clamps_out_of_range_values(self):
        bar = scale_bar("rate", 0, 10, desired=50)
        body = bar[bar.index("[") + 1: bar.index("]")]
        assert body.rstrip().endswith("d")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValidationError):
            scale_bar("x", 10, 10, desired=10)

    def test_unit_rendered(self):
        assert "25f/s" in scale_bar("rate", 1, 60, desired=25, unit="f/s")


class TestButtonRow:
    def test_plain(self):
        row = button_row("OK", "CANCEL")
        assert "[ OK ]" in row and "[ CANCEL ]" in row

    def test_active_marked(self):
        row = button_row("video", "audio", active={"video"})
        assert "[!video!]" in row
        assert "[ audio ]" in row


class TestChoiceRow:
    def test_selection_bracketed(self):
        row = choice_row("color", ["grey", "color"], "color")
        assert "<color>" in row
        assert " grey " in row
