"""Figures 1–2 rendered from live objects."""

from repro.core.profile_manager import standard_profiles
from repro.documents.builder import make_news_article
from repro.ui.figures import document_model_figure, mm_profile_figure


class TestDocumentModelFigure:
    def test_shows_structure(self):
        document = make_news_article("doc.fig")
        figure = document_model_figure(document)
        assert "multimedia" in figure
        for component in document.components:
            assert component.monomedia_id in figure
        for variant in document.iter_variants():
            assert variant.variant_id in figure

    def test_monomedia_document_labelled(self):
        document = make_news_article(
            "doc.solo", include_image=False, include_text=False
        )
        # Strip to one component to exercise the monomedia label.
        from repro.documents.document import Document

        solo = Document(
            document_id="doc.solo2",
            title="solo",
            components=(document.components[0],),
        )
        assert "(monomedia)" in document_model_figure(solo)

    def test_rates_shown(self):
        figure = document_model_figure(make_news_article("doc.r"))
        assert "Mbps" in figure or "kbps" in figure


class TestMMProfileFigure:
    def test_shows_both_profiles(self):
        profile = standard_profiles()[1]
        figure = mm_profile_figure(profile)
        assert "desired" in figure
        assert "worst acceptable" in figure
        assert "cost profile" in figure
        assert "time profile" in figure
        assert "importance profile" in figure

    def test_media_weights_shown_when_nonuniform(self):
        audio_first = next(
            p for p in standard_profiles() if p.name == "audio-first"
        )
        figure = mm_profile_figure(audio_first)
        assert "audio=3" in figure
