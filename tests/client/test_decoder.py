"""Decoders and the step-2 compatibility test."""

import pytest

from repro.client.decoder import Decoder, DecoderBank, ScalableDecoder, standard_decoders
from repro.documents.media import Codecs, ColorMode
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import VideoQoS
from repro.util.errors import DecoderError


def video_variant(codec=Codecs.MPEG1, color=ColorMode.COLOR,
                  frame_rate=25, resolution=720):
    return Variant(
        variant_id="v1",
        monomedia_id="m1",
        codec=codec,
        qos=VideoQoS(color=color, frame_rate=frame_rate, resolution=resolution),
        size_bits=1e8,
        block_stats=BlockStats(3e5, 1e5, float(frame_rate)),
        server_id="server-a",
        duration_s=60.0,
    )


class TestDecoder:
    def test_matching_codec_and_limits(self):
        decoder = Decoder(Codecs.MPEG1, max_frame_rate=30)
        assert decoder.can_decode(video_variant())

    def test_wrong_codec_rejected(self):
        decoder = Decoder(Codecs.MPEG1)
        assert not decoder.can_decode(video_variant(codec=Codecs.MJPEG))

    def test_limits_enforced(self):
        decoder = Decoder(Codecs.MPEG1, max_frame_rate=15)
        assert not decoder.can_decode(video_variant(frame_rate=25))
        decoder = Decoder(Codecs.MPEG1, max_resolution=360)
        assert not decoder.can_decode(video_variant(resolution=720))
        decoder = Decoder(Codecs.MPEG1, max_color=ColorMode.GREY)
        assert not decoder.can_decode(video_variant(color=ColorMode.COLOR))

    def test_codec_type_checked(self):
        with pytest.raises(DecoderError):
            Decoder("MPEG-1")


class TestScalableDecoder:
    def test_accepts_above_limits_when_codec_scalable(self):
        decoder = ScalableDecoder(Codecs.MPEG2, max_frame_rate=15)
        assert decoder.can_decode(video_variant(codec=Codecs.MPEG2,
                                                frame_rate=30))

    def test_rejects_above_limits_when_codec_not_scalable(self):
        decoder = ScalableDecoder(Codecs.MPEG1, max_frame_rate=15)
        assert not decoder.can_decode(video_variant(frame_rate=30))

    def test_effective_qos_clamped(self):
        decoder = ScalableDecoder(
            Codecs.MPEG2, max_frame_rate=15, max_resolution=360,
            max_color=ColorMode.GREY,
        )
        variant = video_variant(codec=Codecs.MPEG2, frame_rate=30,
                                resolution=720, color=ColorMode.COLOR)
        effective = decoder.effective_qos(variant)
        assert effective == VideoQoS(color=ColorMode.GREY, frame_rate=15,
                                     resolution=360)

    def test_effective_qos_identity_within_limits(self):
        decoder = ScalableDecoder(Codecs.MPEG2)
        variant = video_variant(codec=Codecs.MPEG2)
        assert decoder.effective_qos(variant) == variant.qos


class TestDecoderBank:
    def test_first_capable_decoder_wins(self):
        limited = Decoder(Codecs.MPEG1, max_frame_rate=10)
        full = Decoder(Codecs.MPEG1)
        bank = DecoderBank((limited, full))
        assert bank.decoder_for(video_variant(frame_rate=25)) is full

    def test_none_when_no_decoder(self):
        bank = DecoderBank((Decoder(Codecs.MPEG1),))
        assert bank.decoder_for(video_variant(codec=Codecs.MJPEG)) is None
        assert not bank.can_decode(video_variant(codec=Codecs.MJPEG))

    def test_install_type_checked(self):
        bank = DecoderBank()
        with pytest.raises(DecoderError):
            bank.install("not a decoder")

    def test_codecs(self):
        bank = DecoderBank((Decoder(Codecs.MPEG1), Decoder(Codecs.JPEG)))
        assert bank.codecs() == {Codecs.MPEG1, Codecs.JPEG}


class TestStandardDecoders:
    def test_paper_scenario_mjpeg_rejected(self):
        # §4 step 2's own example: "the client machine supports only MPEG
        # decoder and the video variant is coded as MJPEG" -> infeasible.
        bank = standard_decoders()
        assert bank.can_decode(video_variant(codec=Codecs.MPEG1))
        assert not bank.can_decode(video_variant(codec=Codecs.MJPEG))

    def test_covers_all_default_media(self):
        bank = standard_decoders()
        names = {codec.name for codec in bank.codecs()}
        assert {"MPEG-1", "MPEG-AUDIO", "JPEG", "HTML"} <= names
