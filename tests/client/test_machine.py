"""Client machine: step-1 local checks and presented QoS."""

import pytest

from repro.client.decoder import DecoderBank, ScalableDecoder
from repro.client.machine import ClientMachine
from repro.documents.media import AudioGrade, Codecs, ColorMode, Language
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import (
    AudioQoS,
    ImageQoS,
    TextQoS,
    VideoQoS,
)
from repro.util.errors import ClientError

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


class TestLocalCheck:
    def test_supported(self):
        machine = ClientMachine("c1")
        result = machine.check_local(TV)
        assert result.supported
        assert result.local_best == TV
        assert result.violations == ()

    def test_paper_example_bw_screen(self):
        # §4: "the user asks for a color video, while the client machine
        # screen is black&white" -> FAILEDWITHLOCALOFFER material.
        machine = ClientMachine("c1", screen_color=ColorMode.BLACK_AND_WHITE)
        result = machine.check_local(TV)
        assert not result.supported
        assert "color" in result.violations
        assert result.local_best.color is ColorMode.BLACK_AND_WHITE

    def test_frame_rate_and_resolution_clamped(self):
        machine = ClientMachine("c1", screen_width=640, max_frame_rate=15)
        result = machine.check_local(TV)
        assert set(result.violations) == {"frame_rate", "resolution"}
        assert result.local_best == VideoQoS(
            color=ColorMode.COLOR, frame_rate=15, resolution=640
        )

    def test_image_check(self):
        machine = ClientMachine("c1", screen_color=ColorMode.GREY)
        result = machine.check_local(
            ImageQoS(color=ColorMode.COLOR, resolution=360)
        )
        assert not result.supported and result.violations == ("color",)

    def test_audio_without_output(self):
        machine = ClientMachine("c1", audio_output=False)
        result = machine.check_local(AudioQoS(grade=AudioGrade.CD))
        assert not result.supported
        assert result.violations == ("audio_output",)

    def test_text_always_supported(self):
        machine = ClientMachine("c1")
        assert machine.check_local(TextQoS(language=Language.FRENCH)).supported

    def test_fits_layout(self):
        machine = ClientMachine("c1", screen_width=1280, screen_height=1024)
        assert machine.fits_layout(1280, 1024)
        assert not machine.fits_layout(1281, 100)


class TestPresentedQoS:
    def _variant(self, codec=Codecs.MPEG2, qos=None):
        return Variant(
            variant_id="v1",
            monomedia_id="m1",
            codec=codec,
            qos=qos or VideoQoS(color=ColorMode.SUPER_COLOR, frame_rate=60,
                                resolution=1920),
            size_bits=1e8,
            block_stats=BlockStats(3e5, 1e5, 25.0),
            server_id="s",
            duration_s=60.0,
        )

    def test_display_clamps_quality(self):
        machine = ClientMachine(
            "c1", screen_color=ColorMode.COLOR, screen_width=720,
            max_frame_rate=30,
            decoders=DecoderBank((ScalableDecoder(Codecs.MPEG2),)),
        )
        presented = machine.presented_qos(self._variant())
        assert presented == VideoQoS(color=ColorMode.COLOR, frame_rate=30,
                                     resolution=720)

    def test_undecodable_variant_raises(self):
        machine = ClientMachine(
            "c1", decoders=DecoderBank(())
        )
        with pytest.raises(ClientError):
            machine.presented_qos(self._variant())

    def test_audio_passthrough(self):
        machine = ClientMachine("c1")
        variant = Variant(
            variant_id="a1",
            monomedia_id="m1",
            codec=Codecs.MPEG_AUDIO,
            qos=AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH),
            size_bits=1e7,
            block_stats=BlockStats(4e3, 3e3, 50.0),
            server_id="s",
            duration_s=60.0,
        )
        assert machine.presented_qos(variant) == variant.qos
