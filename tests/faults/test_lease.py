"""Reservation leases: grant, renew, expire, zombies, reaping."""

import pytest

from repro.faults import LeaseManager
from repro.util.errors import LeaseError


@pytest.fixture
def manager():
    return LeaseManager(ttl_s=100.0)


BUNDLE = object()  # the manager never looks inside the bundle


class TestGrant:
    def test_grant_and_lookup(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        assert lease.expires_at == 100.0
        assert "s1" in manager
        assert manager.get("s1") is lease
        assert len(manager) == 1

    def test_double_grant_rejected(self, manager):
        manager.grant("s1", BUNDLE, now=0.0)
        with pytest.raises(LeaseError):
            manager.grant("s1", BUNDLE, now=1.0)

    def test_ttl_must_be_positive(self):
        with pytest.raises(Exception):
            LeaseManager(ttl_s=0.0)


class TestRenewal:
    def test_renew_pushes_expiry(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        manager.renew("s1", now=50.0)
        assert lease.expires_at == 150.0
        assert lease.renewals == 1

    def test_renew_unknown_holder_raises(self, manager):
        with pytest.raises(LeaseError):
            manager.renew("ghost", now=0.0)

    def test_renew_if_held(self, manager):
        manager.grant("s1", BUNDLE, now=0.0)
        assert manager.renew_if_held("s1", now=10.0)
        assert not manager.renew_if_held("ghost", now=10.0)


class TestExpiry:
    def test_expired_lease_is_due(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        assert manager.due(now=99.0) == ()
        assert manager.due(now=100.0) == (lease,)

    def test_renewed_lease_is_not_due(self, manager):
        manager.grant("s1", BUNDLE, now=0.0)
        manager.renew("s1", now=90.0)
        assert manager.due(now=150.0) == ()

    def test_zombie_is_due_before_expiry(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        manager.mark_zombie("s1")
        assert lease.zombie
        assert manager.due(now=1.0) == (lease,)

    def test_mark_zombie_on_unknown_holder_is_noop(self, manager):
        manager.mark_zombie("ghost")  # no raise


class TestCollection:
    def test_collect_removes_and_counts(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        manager.collect(lease)
        assert "s1" not in manager
        assert manager.reaped == 1

    def test_collect_twice_counts_once(self, manager):
        lease = manager.grant("s1", BUNDLE, now=0.0)
        manager.collect(lease)
        manager.collect(lease)
        assert manager.reaped == 1

    def test_drop_after_clean_release(self, manager):
        manager.grant("s1", BUNDLE, now=0.0)
        assert manager.drop("s1") is not None
        assert manager.drop("s1") is None  # idempotent
        assert manager.reaped == 0  # a clean release is not a reap
