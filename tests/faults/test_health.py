"""Circuit breaker: quarantine, recovery, half-open probes."""

import pytest

from repro.faults import BreakerState, CircuitBreaker
from repro.util.errors import ValidationError


@pytest.fixture
def breaker():
    return CircuitBreaker(failure_threshold=3, recovery_time_s=30.0)


class TestTripping:
    def test_starts_closed(self, breaker):
        assert breaker.state("server-a", now=0.0) is BreakerState.CLOSED
        assert breaker.allow("server-a", now=0.0)

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("server-a", now=0.0)
        assert breaker.allow("server-a", now=0.0)
        breaker.record_failure("server-a", now=0.0)
        assert not breaker.allow("server-a", now=1.0)
        assert breaker.opens == 1

    def test_success_resets_the_count(self, breaker):
        breaker.record_failure("server-a", now=0.0)
        breaker.record_failure("server-a", now=0.0)
        breaker.record_success("server-a", now=0.0)
        breaker.record_failure("server-a", now=0.0)
        breaker.record_failure("server-a", now=0.0)
        assert breaker.allow("server-a", now=0.0)

    def test_servers_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("server-a", now=0.0)
        assert not breaker.allow("server-a", now=1.0)
        assert breaker.allow("server-b", now=1.0)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)


class TestRecovery:
    def _trip(self, breaker, server_id="server-a", now=0.0):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(server_id, now=now)

    def test_half_open_probe_after_recovery_window(self, breaker):
        self._trip(breaker)
        assert not breaker.allow("server-a", now=29.0)
        # Window elapsed: the breaker half-opens and admits one probe.
        assert breaker.allow("server-a", now=30.0)
        assert breaker.state("server-a", now=30.0) is BreakerState.HALF_OPEN

    def test_probe_success_closes(self, breaker):
        self._trip(breaker)
        assert breaker.allow("server-a", now=31.0)
        breaker.record_success("server-a", now=31.0)
        assert breaker.state("server-a", now=31.0) is BreakerState.CLOSED

    def test_probe_failure_reopens_for_a_fresh_window(self, breaker):
        self._trip(breaker)
        assert breaker.allow("server-a", now=31.0)
        breaker.record_failure("server-a", now=31.0)
        assert not breaker.allow("server-a", now=32.0)
        assert not breaker.allow("server-a", now=60.0)  # old deadline moot
        assert breaker.allow("server-a", now=61.0)
        assert breaker.opens == 2

    def test_quarantined_is_read_only(self, breaker):
        self._trip(breaker)
        assert breaker.quarantined(now=10.0) == frozenset({"server-a"})
        # Past the window the server is probeable, hence not quarantined
        # — but peeking must not consume the transition.
        assert breaker.quarantined(now=40.0) == frozenset()
        assert breaker.state("server-a", now=10.0) is BreakerState.OPEN

    def test_earliest_reopen(self, breaker):
        assert breaker.earliest_reopen(now=0.0) is None
        self._trip(breaker, "server-a", now=10.0)
        self._trip(breaker, "server-b", now=20.0)
        assert breaker.earliest_reopen(now=15.0) == 40.0

    def test_reset_forgets_everything(self, breaker):
        self._trip(breaker)
        breaker.reset()
        assert breaker.allow("server-a", now=0.0)
        assert breaker.quarantined(now=0.0) == frozenset()
