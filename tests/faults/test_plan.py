"""Fault plans: specs, windows, CLI parsing."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, parse_fault_spec
from repro.util.errors import ValidationError


class TestFaultSpec:
    def test_window(self):
        spec = FaultSpec(FaultKind.SERVER_CRASH, "server-a", start_s=10.0,
                         duration_s=30.0)
        assert spec.end_s == 40.0
        assert not spec.active_at(9.9)
        assert spec.active_at(10.0)
        assert spec.active_at(39.9)
        assert not spec.active_at(40.0)

    def test_open_ended_window(self):
        spec = FaultSpec(FaultKind.LOST_RELEASE, "server-a", start_s=5.0)
        assert spec.end_s is None
        assert not spec.active_at(0.0)
        assert spec.active_at(1e9)

    def test_call_level_classification(self):
        assert FaultSpec(FaultKind.TRANSIENT_REFUSAL, "x").is_call_level
        assert FaultSpec(
            FaultKind.SLOW_ADMISSION, "x", value=2.0
        ).is_call_level
        assert FaultSpec(FaultKind.LOST_RELEASE, "x").is_call_level
        assert not FaultSpec(FaultKind.SERVER_CRASH, "x").is_call_level
        assert not FaultSpec(FaultKind.LINK_FLAP, "x").is_call_level

    def test_empty_target_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SERVER_CRASH, "")

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SERVER_CRASH, "x", start_s=-1.0)

    def test_slow_admission_needs_latency(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SLOW_ADMISSION, "x")
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SLOW_ADMISSION, "x", value=0.0)

    def test_flap_severity_is_fraction(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.LINK_FLAP, "L-1", value=1.5)

    def test_probability_is_fraction(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.TRANSIENT_REFUSAL, "x", probability=2.0)

    def test_describe_mentions_kind_target_window(self):
        text = FaultSpec(
            FaultKind.SERVER_CRASH, "server-a", start_s=2.0, duration_s=20.0
        ).describe()
        assert "server-crash" in text
        assert "server-a" in text
        assert "t=2s..22s" in text


class TestFaultPlan:
    def test_iteration_and_len(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "a"),
             FaultSpec(FaultKind.LINK_FLAP, "L-1")),
            seed=3,
        )
        assert len(plan) == 2
        assert [spec.kind for spec in plan] == [
            FaultKind.SERVER_CRASH, FaultKind.LINK_FLAP
        ]

    def test_for_kind(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "a"),
             FaultSpec(FaultKind.SERVER_CRASH, "b"),
             FaultSpec(FaultKind.LINK_FLAP, "L-1")),
        )
        crashes = plan.for_kind(FaultKind.SERVER_CRASH)
        assert [s.target_id for s in crashes] == ["a", "b"]

    def test_describe_empty(self):
        assert "empty" in FaultPlan().describe()

    def test_describe_lists_every_fault(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "a"),), seed=9
        )
        text = plan.describe()
        assert "seed 9" in text
        assert "server-crash on a" in text


class TestParseFaultSpec:
    def test_crash(self):
        spec = parse_fault_spec("crash:server-a:10:30")
        assert spec.kind is FaultKind.SERVER_CRASH
        assert spec.target_id == "server-a"
        assert spec.start_s == 10.0
        assert spec.duration_s == 30.0

    def test_flap_with_severity(self):
        spec = parse_fault_spec("flap:L-client-1:40:20:0.9")
        assert spec.kind is FaultKind.LINK_FLAP
        assert spec.value == 0.9

    def test_open_ended_duration_dash(self):
        spec = parse_fault_spec("refuse:server-a:0:-:2")
        assert spec.kind is FaultKind.TRANSIENT_REFUSAL
        assert spec.duration_s is None
        assert spec.value == 2.0

    def test_long_aliases(self):
        assert parse_fault_spec(
            "server-crash:a"
        ).kind is FaultKind.SERVER_CRASH
        assert parse_fault_spec(
            "lost-release:a:0:120"
        ).kind is FaultKind.LOST_RELEASE
        assert parse_fault_spec(
            "slow-admission:a:0:60:2.5"
        ).kind is FaultKind.SLOW_ADMISSION

    def test_defaults(self):
        spec = parse_fault_spec("crash:server-a")
        assert spec.start_s == 0.0
        assert spec.duration_s is None
        assert spec.value is None

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            parse_fault_spec("meteor:server-a")

    def test_too_few_fields(self):
        with pytest.raises(ValidationError):
            parse_fault_spec("crash")

    def test_non_numeric_field(self):
        with pytest.raises(ValidationError):
            parse_fault_spec("crash:server-a:soon")
