"""The fault injector against a live deployment."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.network.qosparams import FlowSpec
from repro.util.errors import (
    FaultTimeoutError,
    ServerCrashedError,
    SimulationError,
    TransientFaultError,
)


def make_injector(plan, servers, transport, clock, **kwargs):
    injector = FaultInjector(plan, clock=clock, **kwargs)
    injector.install(servers, transport)
    return injector


@pytest.fixture
def flow_spec():
    return FlowSpec(
        max_bit_rate=2e6, avg_bit_rate=1e6, max_delay_s=0.5,
        max_jitter_s=0.1, max_loss_rate=0.01,
    )


class TestTransientRefusal:
    def test_refusal_budget(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "server-a", value=2),)
        )
        injector = make_injector(plan, servers, transport, clock)
        server = servers["server-a"]
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                server.admit("v1", 1e6)
        # Budget exhausted: the third call goes through.
        reservation = server.admit("v1", 1e6)
        assert server.has_stream(reservation.stream_id)
        assert injector.stats.transient_refusals == 2

    def test_window_gates_refusals(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "server-a",
                       start_s=10.0, duration_s=10.0),)
        )
        make_injector(plan, servers, transport, clock)
        server = servers["server-a"]
        server.admit("v1", 1e6)  # t=0: window not open yet
        clock.advance_to(15.0)
        with pytest.raises(TransientFaultError):
            server.admit("v1", 1e6)
        clock.advance_to(25.0)
        server.admit("v1", 1e6)  # window closed again

    def test_other_servers_unaffected(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "server-a"),)
        )
        make_injector(plan, servers, transport, clock)
        servers["server-b"].admit("v1", 1e6)  # no raise

    def test_wildcard_target(self, servers, transport, clock):
        plan = FaultPlan((FaultSpec(FaultKind.TRANSIENT_REFUSAL, "*"),))
        make_injector(plan, servers, transport, clock)
        for server in servers.values():
            with pytest.raises(TransientFaultError):
                server.admit("v1", 1e6)

    def test_probability_draws_are_seeded(self, topology, clock):
        from repro.cmfs import MediaServer
        from repro.network import TransportSystem

        def refusal_pattern(seed):
            servers = {"server-a": MediaServer("server-a")}
            transport = TransportSystem(topology)
            plan = FaultPlan(
                (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "server-a",
                           probability=0.5),),
                seed=seed,
            )
            make_injector(plan, servers, transport, clock)
            pattern = []
            for _ in range(20):
                try:
                    servers["server-a"].admit("v1", 1e5)
                    pattern.append(False)
                except TransientFaultError:
                    pattern.append(True)
            return pattern

        assert refusal_pattern(3) == refusal_pattern(3)
        assert True in refusal_pattern(3) and False in refusal_pattern(3)


class TestSlowAdmission:
    def test_latency_below_timeout_is_absorbed(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SLOW_ADMISSION, "server-a", value=0.4),)
        )
        injector = make_injector(
            plan, servers, transport, clock, attempt_timeout_s=1.0
        )
        servers["server-a"].admit("v1", 1e6)  # slow but within budget
        assert injector.stats.slow_admissions == 1
        assert injector.stats.timeouts == 0
        assert injector.stats.injected_latency_s == pytest.approx(0.4)

    def test_latency_above_timeout_raises(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SLOW_ADMISSION, "server-a", value=2.5),)
        )
        injector = make_injector(
            plan, servers, transport, clock, attempt_timeout_s=1.0
        )
        with pytest.raises(FaultTimeoutError):
            servers["server-a"].admit("v1", 1e6)
        assert injector.stats.timeouts == 1
        assert servers["server-a"].stream_count == 0


class TestLostRelease:
    def test_stream_release_swallowed_in_window(self, servers, transport, clock):
        plan = FaultPlan(
            (FaultSpec(FaultKind.LOST_RELEASE, "server-a", duration_s=60.0),)
        )
        injector = make_injector(plan, servers, transport, clock)
        server = servers["server-a"]
        reservation = server.admit("v1", 1e6)
        server.release(reservation)
        assert server.has_stream(reservation.stream_id)  # leaked
        assert injector.stats.lost_releases == 1
        # After the fault window the same release goes through.
        clock.advance_to(61.0)
        server.release(reservation)
        assert not server.has_stream(reservation.stream_id)

    def test_flow_release_swallowed(self, servers, transport, clock, flow_spec):
        plan = FaultPlan(
            (FaultSpec(FaultKind.LOST_RELEASE, "transport",
                       duration_s=60.0),)
        )
        injector = make_injector(plan, servers, transport, clock)
        flow = transport.reserve("server-a-net", "client-net", flow_spec)
        transport.release(flow)
        assert transport.has_flow(flow.flow_id)  # leaked
        assert injector.stats.lost_releases == 1
        clock.advance_to(61.0)
        transport.release(flow)
        assert not transport.has_flow(flow.flow_id)


class TestTimedFaults:
    def test_crash_and_restart_windows(self, servers, transport, clock, loop):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "server-a",
                       start_s=2.0, duration_s=5.0),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        server = servers["server-a"]
        observed = {}
        loop.at(3.0, lambda: observed.setdefault("during", server.is_crashed))
        loop.at(8.0, lambda: observed.setdefault("after", server.is_crashed))
        loop.run()
        assert observed == {"during": True, "after": False}
        assert injector.stats.crashes == 1
        assert injector.stats.restarts == 1

    def test_crashed_server_rejects_admissions(self, servers, transport, clock, loop):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "server-a", start_s=1.0),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)

        def probe():
            with pytest.raises(ServerCrashedError):
                servers["server-a"].admit("v1", 1e6)

        loop.at(2.0, probe)
        loop.run()

    def test_restart_wipes_the_ledger(self, servers, transport, clock, loop):
        server = servers["server-a"]
        server.admit("v1", 1e6)
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "server-a",
                       start_s=1.0, duration_s=2.0),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        loop.run()
        assert server.stream_count == 0  # in-memory ledger lost

    def test_link_flap_and_heal(self, servers, transport, topology, clock, loop):
        plan = FaultPlan(
            (FaultSpec(FaultKind.LINK_FLAP, "L-client",
                       start_s=1.0, duration_s=3.0, value=0.9),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        link = topology.link("L-client")
        observed = {}
        loop.at(2.0, lambda: observed.setdefault("during", link.congestion))
        loop.run()
        assert observed["during"] == pytest.approx(0.9)
        assert link.congestion == 0.0
        assert injector.stats.link_flaps == 1
        assert injector.stats.link_heals == 1

    def test_double_arm_rejected(self, servers, transport, clock, loop):
        injector = make_injector(FaultPlan(), servers, transport, clock)
        injector.arm(loop)
        with pytest.raises(SimulationError):
            injector.arm(loop)

    def test_unknown_crash_target_rejected(self, servers, transport, clock, loop):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_CRASH, "server-zz"),)
        )
        injector = make_injector(plan, servers, transport, clock)
        with pytest.raises(SimulationError):
            injector.arm(loop)


class TestInstallation:
    def test_install_sets_hooks(self, servers, transport, clock):
        injector = make_injector(FaultPlan(), servers, transport, clock)
        assert all(s.fault_hook is injector for s in servers.values())
        assert transport.fault_hook is injector

    def test_uninstall_clears_hooks(self, servers, transport, clock):
        injector = make_injector(FaultPlan(), servers, transport, clock)
        injector.uninstall()
        assert all(s.fault_hook is None for s in servers.values())
        assert transport.fault_hook is None
