"""Resilient commitment: retries, breaker-aware walks, leases."""

import pytest

from repro.core import QoSManager
from repro.core.classification import classify_space
from repro.core.commitment import ResourceCommitter
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.negotiation import DEFAULT_RETRY_AFTER_S
from repro.core.status import NegotiationStatus
from repro.documents import make_news_article
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.metadata import MetadataDatabase


@pytest.fixture
def space(document, client):
    return build_offer_space(document, client, default_cost_model())


@pytest.fixture
def best_offer(space, balanced_profile):
    ranked = classify_space(space, balanced_profile, default_importance())
    return ranked[0].offer


def install_injector(plan, servers, transport, clock, **kwargs):
    injector = FaultInjector(plan, clock=clock, **kwargs)
    injector.install(servers, transport)
    return injector


class TestRetryAwareCommit:
    def test_survives_transient_refusals(
        self, transport, servers, clock, best_offer, space, client
    ):
        plan = FaultPlan(
            (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "*", value=2),)
        )
        install_injector(plan, servers, transport, clock)
        committer = ResourceCommitter(
            transport, servers, clock=clock,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is not None
        assert committer.stats.retries == 2

    def test_without_retry_policy_the_fault_fails_the_offer(
        self, transport, servers, clock, best_offer, space, client
    ):
        plan = FaultPlan(
            (FaultSpec(FaultKind.TRANSIENT_REFUSAL, "*", value=2),)
        )
        install_injector(plan, servers, transport, clock)
        committer = ResourceCommitter(transport, servers, clock=clock)
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is None
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0

    def test_attempt_outcomes_feed_the_breaker(
        self, transport, servers, clock, best_offer, space, client
    ):
        servers["server-a"].crash()
        health = CircuitBreaker(failure_threshold=3, recovery_time_s=30.0)
        committer = ResourceCommitter(
            transport, servers, clock=clock,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
            health=health,
        )
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is None
        assert not health.allow("server-a", clock.now())


class TestBreakerAwareWalk:
    @pytest.fixture
    def av_database(self):
        # Audio replicated on both machines and no single-server stills,
        # so complete alternate-server offers exist when one machine dies.
        db = MetadataDatabase()
        db.insert_document(
            make_news_article(
                "doc.av",
                audio_servers=("server-a", "server-b"),
                include_image=False,
                include_text=False,
            )
        )
        return db

    def _manager(self, av_database, transport, servers, clock, health):
        return QoSManager(
            database=av_database, transport=transport, servers=servers,
            clock=clock,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            health=health,
        )

    def test_degrades_to_alternate_server_offers(
        self, av_database, transport, servers, clock, client, balanced_profile
    ):
        health = CircuitBreaker(failure_threshold=2, recovery_time_s=30.0)
        manager = self._manager(av_database, transport, servers, clock, health)
        servers["server-a"].crash()
        result = manager.negotiate("doc.av", balanced_profile, client)
        assert result.status in (
            NegotiationStatus.SUCCEEDED, NegotiationStatus.FAILED_WITH_OFFER
        )
        assert result.chosen.offer.servers_used() == frozenset({"server-b"})
        assert manager.committer.stats.breaker_skips > 0
        result.commitment.release()

    def test_try_later_carries_breaker_reopen_hint(
        self, database, transport, servers, clock, client, balanced_profile
    ):
        # The canonical article keeps audio and stills on server-a only,
        # so with server-a dead no offer can commit at all.
        health = CircuitBreaker(failure_threshold=2, recovery_time_s=30.0)
        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock,
            retry_policy=RetryPolicy(max_attempts=2, jitter=0.0),
            health=health,
        )
        servers["server-a"].crash()
        result = manager.negotiate("doc.test", balanced_profile, client)
        assert result.status is NegotiationStatus.FAILED_TRY_LATER
        assert result.retry_after_s == pytest.approx(30.0)

    def test_try_later_hint_defaults_without_open_breaker(
        self, database, transport, servers, clock, client, balanced_profile
    ):
        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock,
        )
        servers["server-a"].crash()
        result = manager.negotiate("doc.test", balanced_profile, client)
        assert result.status is NegotiationStatus.FAILED_TRY_LATER
        assert result.retry_after_s == DEFAULT_RETRY_AFTER_S


class TestLeases:
    def test_lost_release_recovered_by_reaper(
        self, transport, servers, clock, best_offer, space, client
    ):
        plan = FaultPlan(
            (FaultSpec(FaultKind.LOST_RELEASE, "*", duration_s=60.0),)
        )
        install_injector(plan, servers, transport, clock)
        committer = ResourceCommitter(
            transport, servers, clock=clock, lease_ttl_s=100.0
        )
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        committer.release(bundle)
        # The releases were swallowed: streams leaked, lease is a zombie.
        assert sum(s.stream_count for s in servers.values()) > 0
        assert committer.leases.get("s1").zombie
        # Inside the fault window the reaper's rollback is swallowed too.
        committer.reap_expired(clock.now())
        assert "s1" in committer.leases
        # Once the window closes the reaper recovers everything.
        clock.advance_to(61.0)
        assert committer.reap_expired(clock.now()) == 1
        assert sum(s.stream_count for s in servers.values()) == 0
        assert transport.flow_count == 0
        assert committer.stats.leases_reaped == 1

    def test_unrenewed_lease_expires_and_is_reaped(
        self, transport, servers, clock, best_offer, space, client
    ):
        committer = ResourceCommitter(
            transport, servers, clock=clock, lease_ttl_s=100.0
        )
        committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        clock.advance_to(150.0)
        assert committer.reap_expired() == 1
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0

    def test_renewal_keeps_the_lease_alive(
        self, transport, servers, clock, best_offer, space, client
    ):
        committer = ResourceCommitter(
            transport, servers, clock=clock, lease_ttl_s=100.0
        )
        committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        clock.advance_to(90.0)
        assert committer.renew_lease("s1")
        clock.advance_to(150.0)
        assert committer.reap_expired() == 0
        assert transport.flow_count > 0

    def test_clean_release_drops_the_lease(
        self, transport, servers, clock, best_offer, space, client
    ):
        committer = ResourceCommitter(
            transport, servers, clock=clock, lease_ttl_s=100.0
        )
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        committer.release(bundle)
        assert "s1" not in committer.leases
        assert committer.renew_lease("s1") is False
