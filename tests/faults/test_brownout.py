"""The server-brownout fault: spec validation, parsing, injection."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    parse_fault_spec,
)
from repro.util.errors import ValidationError


def make_injector(plan, servers, transport, clock):
    injector = FaultInjector(plan, clock=clock)
    injector.install(servers, transport)
    return injector


class TestBrownoutSpec:
    def test_severity_must_be_fraction(self):
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a", value=1.5)
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a", value=-0.1)

    def test_zero_severity_is_rejected(self):
        # A 0% brownout silently arms a no-op fault; refuse it loudly.
        # (No value at all is fine: the injector defaults to 0.5, the
        # same convention LINK_FLAP uses for full outage.)
        with pytest.raises(ValidationError):
            FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a", value=0.0)
        FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a")

    def test_describe_mentions_kind_and_target(self):
        text = FaultSpec(
            FaultKind.SERVER_BROWNOUT, "server-a",
            start_s=50.0, duration_s=60.0, value=0.4,
        ).describe()
        assert "server-brownout" in text
        assert "server-a" in text

    @pytest.mark.parametrize("alias", ["brownout", "server-brownout"])
    def test_parse_aliases(self, alias):
        spec = parse_fault_spec(f"{alias}:server-a:50:60:0.4")
        assert spec.kind is FaultKind.SERVER_BROWNOUT
        assert spec.target_id == "server-a"
        assert spec.start_s == 50.0
        assert spec.end_s == 110.0
        assert spec.value == pytest.approx(0.4)

    def test_parse_without_severity_defaults(self, servers, transport,
                                             clock, loop):
        spec = parse_fault_spec("brownout:server-a:1:10")
        assert spec.value is None
        injector = make_injector(FaultPlan((spec,)), servers, transport,
                                 clock)
        injector.arm(loop)
        observed = {}
        loop.at(
            2.0,
            lambda: observed.setdefault(
                "during", servers["server-a"].degradation
            ),
        )
        loop.run()
        assert observed["during"] == pytest.approx(0.5)


class TestBrownoutInjection:
    def test_degrades_then_heals(self, servers, transport, clock, loop):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a",
                       start_s=2.0, duration_s=5.0, value=0.4),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        server = servers["server-a"]
        observed = {}
        loop.at(3.0, lambda: observed.setdefault("during", server.degradation))
        loop.at(8.0, lambda: observed.setdefault("after", server.degradation))
        loop.run()
        assert observed["during"] == pytest.approx(0.4)
        assert observed["after"] == 0.0
        assert injector.stats.brownouts == 1
        assert injector.stats.brownout_heals == 1

    def test_open_ended_brownout_never_heals(
        self, servers, transport, clock, loop
    ):
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a",
                       start_s=1.0, value=0.25),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        loop.run()
        assert servers["server-a"].degradation == pytest.approx(0.25)
        assert injector.stats.brownouts == 1
        assert injector.stats.brownout_heals == 0

    def test_browned_out_server_keeps_admitting_by_default(
        self, servers, transport, clock, loop
    ):
        # Degradation only sheds *held* streams unless the deployment
        # opts in to admission-budget shrinking (the storm scenario
        # does; the adaptation experiments rely on the default).
        plan = FaultPlan(
            (FaultSpec(FaultKind.SERVER_BROWNOUT, "server-a",
                       start_s=1.0, value=0.9),)
        )
        injector = make_injector(plan, servers, transport, clock)
        injector.arm(loop)
        loop.run()
        server = servers["server-a"]
        assert not server.degradation_limits_admission
        assert server.can_admit(1_000_000.0)
