"""Retry policy: backoff arithmetic and the retry loop."""

import pytest

from repro.faults import RetryPolicy, execute_with_retry, is_retryable
from repro.util.errors import (
    AdmissionError,
    CapacityError,
    FaultTimeoutError,
    ServerCrashedError,
    TransientFaultError,
    ValidationError,
)
from repro.util.rng import make_rng


class TestRetryable:
    def test_transient_faults_are_retryable(self):
        assert is_retryable(TransientFaultError("x"))
        assert is_retryable(FaultTimeoutError("x"))
        assert is_retryable(ServerCrashedError("x"))

    def test_deterministic_refusals_are_not(self):
        # Backoff cannot create capacity: the walk should move to the
        # next offer instead of retrying these.
        assert not is_retryable(AdmissionError("x"))
        assert not is_retryable(CapacityError("x"))
        assert not is_retryable(ValueError("x"))


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.5, multiplier=2.0, jitter=0.0)
        assert policy.backoff_delay(1) == 0.5
        assert policy.backoff_delay(2) == 1.0
        assert policy.backoff_delay(3) == 2.0

    def test_cap(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=5.0, jitter=0.0
        )
        assert policy.backoff_delay(4) == 5.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.2)
        a = [policy.backoff_delay(n, make_rng(7)) for n in (1, 2, 3)]
        b = [policy.backoff_delay(n, make_rng(7)) for n in (1, 2, 3)]
        assert a == b

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.1)
        rng = make_rng(11)
        for _ in range(200):
            delay = policy.backoff_delay(1, rng)
            assert 0.9 - 1e-9 <= delay <= 1.1 + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline_s=0.0)

    def test_backoff_requires_valid_attempt(self):
        with pytest.raises(ValidationError):
            RetryPolicy().backoff_delay(0)


class TestExecuteWithRetry:
    def _flaky(self, failures, error=TransientFaultError):
        """A callable that fails ``failures`` times, then returns 42."""
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise error(f"flake {state['calls']}")
            return 42

        return fn, state

    def test_succeeds_after_transient_failures(self):
        fn, state = self._flaky(2)
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert execute_with_retry(fn, policy) == 42
        assert state["calls"] == 3

    def test_attempts_exhausted_reraises_original(self):
        fn, state = self._flaky(10)
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(TransientFaultError, match="flake 3"):
            execute_with_retry(fn, policy)
        assert state["calls"] == 3

    def test_non_retryable_raises_immediately(self):
        fn, state = self._flaky(10, error=AdmissionError)
        with pytest.raises(AdmissionError, match="flake 1"):
            execute_with_retry(fn, RetryPolicy(max_attempts=5))
        assert state["calls"] == 1

    def test_deadline_bounds_accumulated_backoff(self):
        fn, state = self._flaky(10)
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=4.0, multiplier=1.0,
            jitter=0.0, deadline_s=10.0,
        )
        # 4s + 4s fits in 10s; the third backoff (12s total) does not.
        with pytest.raises(TransientFaultError, match="flake 3"):
            execute_with_retry(fn, policy)
        assert state["calls"] == 3

    def test_on_retry_reports_each_backoff(self):
        fn, _ = self._flaky(2)
        seen = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        execute_with_retry(
            fn, policy,
            on_retry=lambda attempt, error, delay: seen.append(
                (attempt, type(error).__name__, delay)
            ),
        )
        assert seen == [
            (1, "TransientFaultError", 0.5),
            (2, "TransientFaultError", 1.0),
        ]

    def test_sleep_called_with_each_delay(self):
        fn, _ = self._flaky(2)
        slept = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        execute_with_retry(fn, policy, sleep=slept.append)
        assert slept == [0.5, 1.0]

    def test_custom_retryable_predicate(self):
        fn, state = self._flaky(1, error=ValueError)
        result = execute_with_retry(
            fn, RetryPolicy(max_attempts=2, jitter=0.0),
            retryable=lambda e: isinstance(e, ValueError),
        )
        assert result == 42
        assert state["calls"] == 2
