"""Property tests: RetryPolicy construction is total over garbage.

A pathological policy (negative delays, NaN multipliers, zero attempt
budgets) used to construct silently and poison every backoff
computation downstream — NaN compares False against everything, so the
bare ``<`` guards never fired.  These properties pin the contract: any
parameter outside its documented domain raises ValidationError at
construction, and every policy that *does* construct produces finite,
bounded backoff delays.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryPolicy
from repro.util.errors import ValidationError
from repro.util.rng import make_rng

PATHOLOGICAL = (math.nan, math.inf, -math.inf, -1.0, -0.001)


finite_delays = st.floats(
    min_value=0.001, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def valid_policies(draw):
    base = draw(finite_delays)
    return RetryPolicy(
        max_attempts=draw(st.integers(1, 12)),
        base_delay_s=base,
        max_delay_s=draw(
            st.floats(
                min_value=base, max_value=1000.0,
                allow_nan=False, allow_infinity=False,
            )
        ),
        multiplier=draw(
            st.floats(
                min_value=1.0, max_value=10.0,
                allow_nan=False, allow_infinity=False,
            )
        ),
        jitter=draw(
            st.floats(
                min_value=0.0, max_value=1.0,
                allow_nan=False, allow_infinity=False,
            )
        ),
    )


class TestConstructionIsTotal:
    @pytest.mark.parametrize("bad", PATHOLOGICAL)
    @pytest.mark.parametrize(
        "fieldname",
        ["base_delay_s", "max_delay_s", "multiplier", "jitter",
         "attempt_timeout_s", "deadline_s"],
    )
    def test_pathological_floats_rejected(self, fieldname, bad):
        with pytest.raises(ValidationError):
            RetryPolicy(**{fieldname: bad})

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_attempts_rejected(self, bad):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=bad)

    @settings(max_examples=60, deadline=None)
    @given(multiplier=st.floats(max_value=1.0, exclude_max=True))
    def test_sub_one_multiplier_rejected(self, multiplier):
        # Includes NaN and -inf: any multiplier not >= 1 must raise.
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=multiplier)

    @settings(max_examples=60, deadline=None)
    @given(base=finite_delays, cap=finite_delays)
    def test_cap_below_base_rejected(self, base, cap):
        if cap >= base:
            policy = RetryPolicy(base_delay_s=base, max_delay_s=cap)
            assert policy.max_delay_s >= policy.base_delay_s
        else:
            with pytest.raises(ValidationError):
                RetryPolicy(base_delay_s=base, max_delay_s=cap)


class TestBackoffIsBounded:
    @settings(max_examples=80, deadline=None)
    @given(policy=valid_policies(), attempt=st.integers(1, 20),
           seed=st.integers(0, 7))
    def test_delay_finite_and_within_jittered_cap(
        self, policy, attempt, seed
    ):
        delay = policy.backoff_delay(attempt, make_rng(seed))
        assert math.isfinite(delay)
        assert delay >= 0.0
        # The cap holds even after jitter spreads the delay upward.
        assert delay <= policy.max_delay_s * (1.0 + policy.jitter) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(policy=valid_policies(), attempt=st.integers(1, 20),
           seed=st.integers(0, 7))
    def test_delay_is_deterministic_per_seed(self, policy, attempt, seed):
        first = policy.backoff_delay(attempt, make_rng(seed))
        second = policy.backoff_delay(attempt, make_rng(seed))
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(policy=valid_policies(), attempt=st.integers(1, 19))
    def test_unjittered_delays_are_monotone(self, policy, attempt):
        assert (
            policy.backoff_delay(attempt)
            <= policy.backoff_delay(attempt + 1) + 1e-12
        )
