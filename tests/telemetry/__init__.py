"""Telemetry layer: tracer, metrics registry, exporters, reports."""
