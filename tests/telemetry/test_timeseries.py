"""Flight recorder: sampling, derived rates, windows, canonical JSONL."""

import pytest

from repro.session.engine import EventLoop
from repro.telemetry import FlightRecorder, Telemetry, read_timeseries_jsonl
from repro.util.clock import ManualClock
from repro.util.errors import TelemetryError


def make_run(horizon=5):
    """A loop + hub where one counter/gauge/histogram tick per second."""
    clock = ManualClock()
    loop = EventLoop(clock)
    telemetry = Telemetry(clock=clock, seed=0)
    recorder = FlightRecorder(telemetry, interval_s=1.0)

    def emit():
        telemetry.metrics.count("commitment.rollbacks", 2.0)
        telemetry.metrics.count("storm.gate.decisions", decision="shed")
        telemetry.metrics.gauge_set("storm.queue.depth", float(clock.now()))
        telemetry.metrics.observe("service.verdict.wait_s", clock.now())

    loop.every(1.0, emit, label="emit", until=horizon - 0.5)
    recorder.arm(loop, until=horizon)
    loop.run()
    recorder.finish(clock.now())
    return recorder, telemetry


class TestSampling:
    def test_one_baseline_plus_one_sample_per_interval(self):
        recorder, _ = make_run(horizon=5)
        assert recorder.tick_times() == (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)
        assert recorder.samples == 6
        assert recorder.dropped == 0

    def test_finish_is_idempotent_per_instant(self):
        recorder, _ = make_run(horizon=3)
        before = recorder.samples
        recorder.finish(3.0)
        recorder.finish(3.0)
        assert recorder.samples == before

    def test_counter_series_is_cumulative_and_rate_is_per_interval(self):
        # The emitter stops at horizon - 0.5, so the final tick sees no
        # new events: the cumulative series plateaus, the rate drops
        # to zero.  The counter is born at t=1; its first interval
        # counts from zero at the preceding tick (t=0).
        recorder, _ = make_run(horizon=3)
        series = recorder.counter_series("commitment.rollbacks")
        assert series == ((1.0, 2.0), (2.0, 4.0), (3.0, 4.0))
        rates = recorder.counter_rate("commitment.rollbacks")
        assert rates == ((1.0, 2.0), (2.0, 2.0), (3.0, 0.0))

    def test_labelled_counters_need_their_label(self):
        recorder, _ = make_run(horizon=3)
        shed = recorder.counter_series("storm.gate.decisions", "shed")
        assert [value for _, value in shed] == [1.0, 2.0, 2.0]
        assert recorder.label_values("storm.gate.decisions") == ("shed",)
        assert recorder.counter_series("storm.gate.decisions") == ()

    def test_gauge_series_holds_the_last_set_value(self):
        recorder, _ = make_run(horizon=3)
        gauges = recorder.gauge_series("storm.queue.depth")
        assert gauges == ((1.0, 1.0), (2.0, 2.0), (3.0, 2.0))

    def test_quantile_series_is_cumulative(self):
        recorder, _ = make_run(horizon=4)
        quantiles = recorder.quantile_series("service.verdict.wait_s", 1.0)
        values = [value for _, value in quantiles]
        assert values == sorted(values)

    def test_window_histogram_is_a_delta(self):
        recorder, _ = make_run(horizon=4)
        window = recorder.window_histogram(
            "service.verdict.wait_s", 2.0, 4.0
        )
        # The emitter observed at t=1, 2, 3; only t=3 is in (2, 4].
        assert window.total == 1
        assert window.sum == pytest.approx(3.0)
        full = recorder.window_histogram(
            "service.verdict.wait_s", -1.0, 4.0
        )
        assert full.total == 3

    def test_non_catalog_names_are_rejected(self):
        recorder, _ = make_run(horizon=2)
        with pytest.raises(TelemetryError, match="not in the catalog"):
            recorder.counter_series("no.such.metric")
        with pytest.raises(TelemetryError, match="is a counter"):
            recorder.gauge_series("commitment.rollbacks")

    def test_ring_overflow_drops_oldest_and_counts_them(self):
        clock = ManualClock()
        loop = EventLoop(clock)
        telemetry = Telemetry(clock=clock, seed=0)
        recorder = FlightRecorder(telemetry, interval_s=1.0, capacity=4)
        recorder.arm(loop, until=10.0)
        loop.run()
        assert recorder.samples == 4
        assert recorder.tick_times() == (7.0, 8.0, 9.0, 10.0)
        assert recorder.dropped == 7  # baseline + t=1..6


class TestCanonicalExport:
    def test_jsonl_is_byte_identical_across_identical_runs(self):
        first, _ = make_run(horizon=4)
        second, _ = make_run(horizon=4)
        assert first.to_jsonl_lines() == second.to_jsonl_lines()

    def test_jsonl_round_trips_through_the_reader(self, tmp_path):
        recorder, _ = make_run(horizon=3)
        path = tmp_path / "ts.jsonl"
        lines = recorder.write_jsonl(path)
        dump = read_timeseries_jsonl(path)
        assert lines == 1 + len(dump.names())
        assert dump.header["samples"] == recorder.samples
        key = "counter:commitment.rollbacks"
        assert key in dump.names()
        assert dump.points(key) == list(
            recorder.counter_series("commitment.rollbacks")
        )

    def test_reader_rejects_foreign_schemas(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"something/else"}\n', encoding="utf-8")
        with pytest.raises(TelemetryError, match="schema"):
            read_timeseries_jsonl(path)
