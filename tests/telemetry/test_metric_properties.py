"""Property tests for histogram edges and metric-key round-tripping.

The flight recorder serializes histogram states and flat metric keys
into its canonical JSONL, so both must be exact inverses of their
builders: boundary samples land in the bucket whose upper bound they
equal, quantiles are monotone and clamped to the bucket range, and
``parse_metric_key`` inverts ``format_metric_key`` for every label
value a caller can emit (including values containing ``=``/``{``/``}``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import HistogramState
from repro.telemetry.catalog import CATALOG
from repro.telemetry.metrics import format_metric_key, parse_metric_key
from repro.util.errors import TelemetryError

bucket_sets = st.lists(
    st.floats(min_value=0.001, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True,
).map(lambda bounds: tuple(sorted(bounds)))

samples = st.lists(
    st.floats(min_value=0.0, max_value=2000.0,
              allow_nan=False, allow_infinity=False),
    max_size=60,
)

LABELLED = sorted(
    name for name, spec in CATALOG.items() if spec.label is not None
)
UNLABELLED = sorted(
    name for name, spec in CATALOG.items() if spec.label is None
)


class TestHistogramProperties:
    @given(bucket_sets, samples)
    @settings(max_examples=80, deadline=None)
    def test_counts_conserve_every_observation(self, buckets, values):
        state = HistogramState(buckets)
        for value in values:
            state.observe(value)
        assert sum(state.counts) + state.overflow == len(values)
        assert state.total == len(values)
        assert state.sum == pytest.approx(sum(values))

    @given(bucket_sets)
    @settings(max_examples=50, deadline=None)
    def test_boundary_samples_land_in_their_bucket_not_overflow(
        self, buckets
    ):
        state = HistogramState(buckets)
        for bound in buckets:
            state.observe(bound)
        assert state.overflow == 0
        assert state.counts == [1] * len(buckets)

    @given(bucket_sets, samples,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_quantile_is_monotone_and_clamped(self, buckets, values, a, b):
        state = HistogramState(buckets)
        for value in values:
            state.observe(value)
        low, high = min(a, b), max(a, b)
        assert state.quantile(low) <= state.quantile(high) + 1e-12
        for q in (0.0, low, high, 1.0):
            assert 0.0 <= state.quantile(q) <= buckets[-1]

    @given(bucket_sets, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_empty_histogram_quantile_is_zero(self, buckets, q):
        assert HistogramState(buckets).quantile(q) == 0.0

    @given(bucket_sets)
    @settings(max_examples=20, deadline=None)
    def test_overflow_rank_clamps_to_the_highest_bound(self, buckets):
        state = HistogramState(buckets)
        state.observe(buckets[-1] * 2 + 1.0)
        assert state.quantile(1.0) == buckets[-1]

    def test_quantile_rejects_ranks_outside_the_unit_interval(self):
        state = HistogramState((1.0, 5.0))
        state.observe(0.5)
        for q in (-0.1, 1.1):
            with pytest.raises(TelemetryError, match="quantile"):
                state.quantile(q)


class TestMetricKeyRoundTrip:
    @given(st.sampled_from(LABELLED), st.text(max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_labelled_keys_round_trip_any_label_value(self, name, value):
        key = format_metric_key(name, value)
        assert parse_metric_key(key) == (name, value)

    @given(st.sampled_from(UNLABELLED))
    @settings(max_examples=30, deadline=None)
    def test_unlabelled_keys_round_trip(self, name):
        assert parse_metric_key(format_metric_key(name, None)) == (
            name, None
        )

    @given(st.sampled_from(LABELLED), st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_labelled_keys_never_collide_with_catalog_names(
        self, name, value
    ):
        # A flat labelled key must not be mistakable for the bare key
        # of any catalog metric (catalog names contain no braces).
        key = format_metric_key(name, value)
        assert key not in CATALOG

    def test_malformed_keys_raise(self):
        for key in ("name{server=a", "name{nolabel}"):
            with pytest.raises(TelemetryError, match="malformed"):
                parse_metric_key(key)
