"""Tracer: nesting, determinism, error transparency."""

import pytest

from repro.telemetry import NULL_SPAN, InMemorySpanExporter, Telemetry, Tracer, traced
from repro.telemetry.spans import SpanStatus
from repro.util.clock import ManualClock
from repro.util.errors import AdmissionError, ReproError


def make_tracer(seed=0, clock=None):
    return Tracer(clock=clock or ManualClock(), seed=seed)


class TestNesting:
    def test_child_spans_share_the_trace_and_point_at_their_parent(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sequence_fixes_a_total_order(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.sequence > outer.sequence

    def test_timestamps_come_from_the_injected_clock(self):
        clock = ManualClock()
        tracer = make_tracer(clock=clock)
        with tracer.span("step") as span:
            clock.advance(2.5)
        assert span.start_s == 0.0
        assert span.end_s == 2.5
        assert span.duration_s == 2.5

    def test_last_trace_holds_the_whole_finished_root_trace(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        names = [span.name for span in tracer.last_trace()]
        assert names == ["root", "child"]

    def test_emit_parents_a_late_span_under_a_closed_trace(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            context = tracer.root_context()
        late = tracer.emit(
            "late", start_s=1.0, end_s=2.0, parent=context
        )
        assert late.trace_id == root.trace_id
        assert late.parent_id == root.span_id

    def test_annotate_targets_the_innermost_open_span(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.annotate(key="value")
        assert inner.attributes == {"key": "value"}
        assert "key" not in outer.attributes


class TestDeterminism:
    def test_same_seed_same_ids(self):
        first, second = make_tracer(seed=7), make_tracer(seed=7)
        for tracer in (first, second):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        lines = lambda t: [s.to_json_line() for s in t.last_trace()]  # noqa: E731
        assert lines(first) == lines(second)

    def test_different_seed_different_ids(self):
        first, second = make_tracer(seed=1), make_tracer(seed=2)
        for tracer in (first, second):
            with tracer.span("root"):
                pass
        assert (
            first.last_trace()[0].trace_id != second.last_trace()[0].trace_id
        )


class TestErrorTransparency:
    """Instrumentation must never swallow, convert or reorder errors."""

    def test_span_records_error_status_and_reraises_the_same_object(self):
        tracer = make_tracer()
        exporter = InMemorySpanExporter()
        tracer.add_exporter(exporter)
        error = AdmissionError("server full")
        with pytest.raises(AdmissionError) as caught:
            with tracer.span("attempt"):
                raise error
        assert caught.value is error
        (span,) = exporter.spans
        assert span.status == SpanStatus.ERROR
        assert span.attributes["error.type"] == "AdmissionError"
        assert span.end_s is not None  # the span still closed

    def test_traced_decorator_is_transparent_to_repro_errors(self):
        telemetry = Telemetry(clock=ManualClock(), seed=0)
        error = AdmissionError("no capacity")

        class Component:
            def __init__(self, hub):
                self.telemetry = hub

            @traced("component.op")
            def op(self):
                raise error

        with pytest.raises(ReproError) as caught:
            Component(telemetry).op()
        assert caught.value is error
        with pytest.raises(ReproError) as caught:
            Component(Telemetry.disabled()).op()
        assert caught.value is error
        with pytest.raises(ReproError) as caught:
            Component(None).op()
        assert caught.value is error


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer(clock=ManualClock(), enabled=False)
        with tracer.span("anything", key=1) as span:
            span.set_attribute("more", 2)
        assert span is NULL_SPAN
        assert tracer.last_trace() == ()

    def test_disabled_hub_is_a_singleton(self):
        assert Telemetry.disabled() is Telemetry.disabled()
        assert not Telemetry.disabled().enabled
