"""SLO engine: spec validation, burn-rate alerting, budget accounting."""

import pytest

from repro.session.engine import EventLoop
from repro.telemetry import (
    BurnRatePolicy,
    EventSelector,
    FlightRecorder,
    SloSpec,
    Telemetry,
    default_slos,
    evaluate_slos,
)
from repro.util.clock import ManualClock
from repro.util.errors import TelemetryError

POLICIES = (
    BurnRatePolicy(long_s=10.0, short_s=2.0, threshold=4.0,
                   severity="page"),
)

RATIO = SloSpec(
    name="rollback-rate",
    description="rollbacks vs journal appends",
    objective=0.90,
    kind="ratio",
    bad=(EventSelector("commitment.rollbacks"),),
    total=(EventSelector("negotiation.offers.enumerated"),),
    policies=POLICIES,
)


def record(horizon, emit):
    """Drive ``emit(telemetry, t)`` once per second under a recorder."""
    clock = ManualClock()
    loop = EventLoop(clock)
    telemetry = Telemetry(clock=clock, seed=0)
    recorder = FlightRecorder(telemetry, interval_s=1.0)
    loop.every(1.0, lambda: emit(telemetry, clock.now()),
               label="emit", until=horizon - 0.5)
    recorder.arm(loop, until=horizon)
    loop.run()
    recorder.finish(clock.now())
    return recorder


class TestSpecValidation:
    def test_selectors_must_name_catalog_counters(self):
        with pytest.raises(TelemetryError, match="not in the telemetry"):
            EventSelector("no.such.metric")
        with pytest.raises(TelemetryError, match="is a histogram"):
            EventSelector("negotiation.latency_s")
        with pytest.raises(TelemetryError, match="takes no label"):
            EventSelector("commitment.rollbacks", ("oops",))

    def test_ratio_slos_need_both_selector_sides(self):
        with pytest.raises(TelemetryError, match="bad and total"):
            SloSpec(name="half", description="", objective=0.9,
                    kind="ratio", bad=(EventSelector("commitment.rollbacks"),))

    def test_quantile_slos_need_a_catalog_histogram(self):
        with pytest.raises(TelemetryError, match="catalog"):
            SloSpec(name="q", description="", objective=0.9,
                    kind="quantile", metric="commitment.rollbacks")

    def test_burn_windows_must_nest(self):
        with pytest.raises(TelemetryError, match="short < long"):
            BurnRatePolicy(long_s=5.0, short_s=5.0, threshold=1.0)

    def test_default_slos_construct_and_cover_all_kinds(self):
        kinds = {spec.kind for spec in default_slos()}
        assert kinds == {"ratio", "quantile", "zero"}


class TestRatioEvaluation:
    def test_clean_run_spends_no_budget_and_fires_nothing(self):
        def emit(telemetry, now):
            telemetry.metrics.count("negotiation.offers.enumerated", 10.0)

        report = evaluate_slos(record(30, emit), (RATIO,))
        (result,) = report.results
        assert result.bad_events == 0.0
        assert result.budget_spent == 0.0
        assert result.alerts == ()
        assert not report.breached

    def test_sustained_burn_pages_after_a_full_long_window(self):
        def emit(telemetry, now):
            telemetry.metrics.count("negotiation.offers.enumerated", 10.0)
            if now >= 10.0:  # every event bad from t=10 on: burn 10x
                telemetry.metrics.count("commitment.rollbacks", 10.0)

        report = evaluate_slos(record(30, emit), (RATIO,))
        (result,) = report.results
        assert result.paged
        assert result.breached
        (alert,) = result.alerts
        assert alert.severity == "page"
        # Both windows must exceed threshold 4.0 simultaneously; the
        # long window fills with bad intervals by t=20.
        assert alert.long_burn >= 4.0
        assert alert.short_burn >= 4.0
        assert alert.fired_at_s <= 20.0

    def test_a_short_blip_does_not_page(self):
        def emit(telemetry, now):
            telemetry.metrics.count("negotiation.offers.enumerated", 10.0)
            if now == 5.0:  # one bad second in thirty
                telemetry.metrics.count("commitment.rollbacks", 10.0)

        report = evaluate_slos(record(30, emit), (RATIO,))
        (result,) = report.results
        assert result.alerts == ()
        # The blip still spent real budget: 10 bad / (0.1 * ~290).
        assert 0.0 < result.budget_spent < 1.0
        assert not result.breached

    def test_exhausted_budget_breaches_even_without_an_alert(self):
        slow = SloSpec(
            name="slow-burn",
            description="",
            objective=0.90,
            kind="ratio",
            bad=(EventSelector("commitment.rollbacks"),),
            total=(EventSelector("negotiation.offers.enumerated"),),
            policies=(),  # no alerting at all
        )

        def emit(telemetry, now):
            telemetry.metrics.count("negotiation.offers.enumerated", 10.0)
            telemetry.metrics.count("commitment.rollbacks", 2.0)

        report = evaluate_slos(record(30, emit), (slow,))
        (result,) = report.results
        assert result.alerts == ()
        assert result.budget_spent >= 1.0
        assert result.breached


class TestQuantileEvaluation:
    QUANTILE = SloSpec(
        name="latency",
        description="",
        objective=0.80,
        kind="quantile",
        metric="service.verdict.wait_s",
        quantile=0.99,
        threshold_s=5.0,
        policies=POLICIES,
    )

    def test_idle_intervals_are_good(self):
        report = evaluate_slos(record(20, lambda t, n: None),
                               (self.QUANTILE,))
        (result,) = report.results
        assert result.bad_events == 0.0
        assert not result.breached

    def test_slow_intervals_burn_and_page(self):
        def emit(telemetry, now):
            telemetry.metrics.observe("service.verdict.wait_s", 60.0)

        report = evaluate_slos(record(30, emit), (self.QUANTILE,))
        (result,) = report.results
        assert result.bad_events > 0
        assert result.paged


class TestZeroEvaluation:
    ZERO = SloSpec(
        name="leak-free",
        description="",
        objective=0.999,
        kind="zero",
        acquired=(EventSelector("network.flows.reserved"),),
        released=(EventSelector("network.flows.released"),),
        policies=(),
    )

    def test_balanced_counters_pass(self):
        def emit(telemetry, now):
            telemetry.metrics.count("network.flows.reserved")
            telemetry.metrics.count("network.flows.released")

        report = evaluate_slos(record(10, emit), (self.ZERO,))
        assert not report.breached

    def test_any_leak_exhausts_the_budget(self):
        def emit(telemetry, now):
            telemetry.metrics.count("network.flows.reserved")
            if now < 5.0:
                telemetry.metrics.count("network.flows.released")

        report = evaluate_slos(record(10, emit), (self.ZERO,))
        (result,) = report.results
        assert result.bad_events > 0
        assert result.breached

    def test_report_serializes_deterministically(self):
        def emit(telemetry, now):
            telemetry.metrics.count("network.flows.reserved")
            telemetry.metrics.count("network.flows.released")

        first = evaluate_slos(record(10, emit), (self.ZERO,))
        second = evaluate_slos(record(10, emit), (self.ZERO,))
        assert first.to_json() == second.to_json()
        assert "leak-free" in first.render()
