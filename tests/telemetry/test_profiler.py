"""Critical-path profiler: attribution, residuals, folded stacks."""

from repro.telemetry import (
    extract_critical_paths,
    folded_stacks,
    profile_spans,
    write_flamegraph,
)
from repro.telemetry.spans import Span


def span(name, trace, sid, parent, start, end, **attributes):
    return Span(name=name, trace_id=trace, span_id=sid,
                parent_id=parent, start_s=start, end_s=end,
                attributes=attributes)


def service_trace(trace="t1", label="req-1"):
    """A gated request: parked 4s, planned 1s, one rolled-back and one
    committed step-5 attempt, delivered at t=10."""
    return [
        span("service.negotiation", trace, "s0", None, 0.0, 10.0,
             label=label, status="CONFIRMED", overrun=False),
        span("service.gate.wait", trace, "s1", "s0", 0.0, 4.0,
             label=label),
        span("service.plan", trace, "s2", "s0", 4.0, 5.0, early=False),
        span("negotiation.step5.attempt", trace, "s3", "s0", 5.0, 7.0,
             offer="o-1", outcome="rolled-back"),
        span("negotiation.step5.attempt", trace, "s4", "s0", 7.0, 9.5,
             offer="o-2", outcome="committed"),
    ]


class TestExtraction:
    def test_service_trace_attributes_every_segment(self):
        (path,) = extract_critical_paths(service_trace())
        assert path.root == "service.negotiation"
        assert path.label == "req-1"
        assert path.total_s == 10.0
        assert path.segments["gate.wait"] == 4.0
        assert path.segments["plan"] == 1.0
        assert path.segments["step5.retry"] == 2.0
        assert path.segments["step5.commit"] == 2.5
        # 10 - 4 - 1 - 2 - 2.5 = 0.5 of unattributed scheduler time.
        assert path.segments["scheduler.other"] == 0.5

    def test_repeated_gate_waits_sum_without_exceeding_the_root(self):
        # An FTL re-park emits a second, disjoint gate.wait span.
        spans = service_trace() + [
            span("service.gate.wait", "t1", "s5", "s0", 9.5, 10.0,
                 label="req-1"),
        ]
        (path,) = extract_critical_paths(spans)
        assert path.segments["gate.wait"] == 4.5
        assert sum(path.segments.values()) <= path.total_s + 1e-9

    def test_residual_clamps_at_zero(self):
        spans = [
            span("service.negotiation", "t2", "r0", None, 0.0, 1.0,
                 label="req-2", status="CONFIRMED", overrun=False),
            span("service.plan", "t2", "r1", "r0", 0.0, 2.0, early=False),
        ]
        (path,) = extract_critical_paths(spans)
        assert path.segments["scheduler.other"] == 0.0

    def test_sync_traces_count_only_top_level_step_spans(self):
        spans = [
            span("negotiation", "t3", "n0", None, 0.0, 6.0, label="doc-1"),
            span("negotiation.step1.local", "t3", "n1", "n0", 0.0, 1.0),
            span("negotiation.step5.commit", "t3", "n2", "n0", 1.0, 5.0),
            # Nested attempt spans overlap their step-5 parent and must
            # not double-charge.
            span("negotiation.step5.attempt", "t3", "n3", "n2", 1.0, 4.0,
                 outcome="committed"),
        ]
        (path,) = extract_critical_paths(spans)
        assert path.root == "negotiation"
        assert path.segments["negotiation.step1.local"] == 1.0
        assert path.segments["negotiation.step5.commit"] == 4.0
        assert path.segments["scheduler.other"] == 1.0

    def test_traces_without_a_negotiation_root_are_skipped(self):
        spans = [span("service.plan", "t4", "x0", None, 0.0, 1.0)]
        assert extract_critical_paths(spans) == []

    def test_paths_sort_by_start_time(self):
        spans = (service_trace("t-late", "late")
                 + service_trace("t-early", "early"))
        for s in spans:
            if s.trace_id == "t-late":
                s.start_s += 100.0
                if s.end_s is not None:
                    s.end_s += 100.0
        labels = [p.label for p in extract_critical_paths(spans)]
        assert labels == ["early", "late"]


class TestAggregation:
    def test_profile_names_the_top_bottleneck(self):
        report = profile_spans(service_trace())
        assert report.paths == 1
        assert report.total_s == 10.0
        assert report.top_bottleneck == "gate.wait"
        assert report.share("gate.wait") == 0.4
        assert "top bottleneck" in report.render()

    def test_empty_input_yields_an_empty_report(self):
        report = profile_spans([])
        assert report.paths == 0
        assert report.top_bottleneck is None
        assert "no negotiation traces" in report.render()


class TestFoldedStacks:
    def test_stacks_are_integer_microseconds_sorted(self):
        paths = extract_critical_paths(service_trace())
        stacks = folded_stacks(paths)
        assert stacks == sorted(stacks)
        assert "service.negotiation;gate.wait 4000000" in stacks
        assert "service.negotiation;step5.commit 2500000" in stacks
        # Zero-weight segments are omitted entirely.
        assert not any("step5.abandoned" in line for line in stacks)

    def test_sections_prefix_and_file_is_byte_stable(self, tmp_path):
        paths = extract_critical_paths(service_trace())
        one, two = tmp_path / "a.folded", tmp_path / "b.folded"
        lines = write_flamegraph(one, {"x1": paths, "x2": paths})
        write_flamegraph(two, {"x2": paths, "x1": paths})
        assert one.read_bytes() == two.read_bytes()
        content = one.read_text(encoding="utf-8").splitlines()
        assert len(content) == lines
        assert content[0].startswith("x1;service.negotiation;")
