"""NegotiationReport + journal reconciliation from real traces."""

import pytest

from repro.core import standard_profiles
from repro.journal import ReservationJournal
from repro.sim import ScenarioSpec, build_scenario
from repro.telemetry import (
    InMemorySpanExporter,
    NegotiationReport,
    reconcile_journal,
)


@pytest.fixture
def traced_run():
    """One confirmed-and-released negotiation with full telemetry."""
    journal = ReservationJournal()
    scenario = build_scenario(
        ScenarioSpec(document_count=2), journal=journal, telemetry_seed=5
    )
    exporter = InMemorySpanExporter()
    scenario.telemetry.tracer.add_exporter(exporter)
    profile = next(p for p in standard_profiles() if p.name == "balanced")
    result = scenario.manager.negotiate(
        scenario.document_ids()[0], profile, scenario.any_client()
    )
    assert result.commitment is not None
    result.commitment.confirm(scenario.clock.now())
    result.commitment.release()
    return scenario, exporter, result


class TestNegotiationReport:
    def test_report_covers_all_six_steps(self, traced_run):
        _, exporter, _ = traced_run
        report = NegotiationReport.from_spans(exporter.spans)
        assert [s.step for s in report.steps] == [1, 2, 3, 4, 5, 6]
        assert all(s.ran for s in report.steps)
        assert report.status == "SUCCEEDED"

    def test_step2_records_drop_accounting(self, traced_run):
        _, exporter, _ = traced_run
        report = NegotiationReport.from_spans(exporter.spans)
        step2 = report.steps[1]
        assert step2.offers_in is not None and step2.offers_out is not None
        assert step2.dropped == step2.offers_in - step2.offers_out
        assert sum(step2.drop_reasons.values()) == step2.dropped

    def test_attempts_are_listed(self, traced_run):
        _, exporter, _ = traced_run
        report = NegotiationReport.from_spans(exporter.spans)
        assert report.attempts
        assert report.attempts[-1].outcome == "committed"

    def test_as_dict_and_render_agree_on_the_steps(self, traced_run):
        _, exporter, _ = traced_run
        report = NegotiationReport.from_spans(exporter.spans)
        data = report.as_dict()
        assert [s["step"] for s in data["steps"]] == [1, 2, 3, 4, 5, 6]
        text = report.render()
        assert "step 6 user confirmation" in text
        assert "(not reached)" not in text

    def test_result_report_is_attached_at_negotiate_time(self, traced_run):
        _, _, result = traced_run
        # negotiate() attaches a report built from its own trace; step 6
        # happens later (confirm), so only steps 1-5 have run there.
        assert result.report is not None
        assert [s.ran for s in result.report.steps[:5]] == [True] * 5

    def test_unreached_steps_render_as_such(self):
        report = NegotiationReport.from_spans([])
        assert not any(s.ran for s in report.steps)
        assert "(not reached)" in report.render()


class TestReconcileJournal:
    def test_full_lifecycle_reconciles_with_the_metrics(self, traced_run):
        scenario, _, _ = traced_run
        journal = scenario.manager.committer.journal
        audit = reconcile_journal(journal, scenario.telemetry.metrics)
        assert audit["balanced"]
        assert audit["open_holders"] == []
        assert audit["metrics_match"]
        assert audit["records"] == len(journal)
        assert audit["reserved_holders"] == audit["closed_holders"] == 1

    def test_an_open_holder_unbalances_the_audit(self):
        journal = ReservationJournal()
        scenario = build_scenario(
            ScenarioSpec(document_count=1), journal=journal, telemetry_seed=5
        )
        profile = next(
            p for p in standard_profiles() if p.name == "balanced"
        )
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], profile, scenario.any_client()
        )
        assert result.commitment is not None  # reserved, never resolved
        audit = reconcile_journal(journal, scenario.telemetry.metrics)
        assert not audit["balanced"]
        assert audit["open_holders"] == [result.commitment.bundle.holder]
        assert audit["metrics_match"]  # the counters still agree
