"""Metrics registry: catalog validation, histogram edges, snapshots."""

import json

import pytest

from repro.telemetry import HistogramState, MetricsRegistry, metric_names
from repro.util.errors import TelemetryError


class TestCatalogValidation:
    def test_unknown_counter_name_raises(self):
        with pytest.raises(TelemetryError, match="not in the catalog"):
            MetricsRegistry().count("no.such.metric")

    def test_unknown_histogram_name_raises(self):
        with pytest.raises(TelemetryError, match="not in the catalog"):
            MetricsRegistry().observe("no.such.metric", 1.0)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="is a counter"):
            registry.observe("negotiation.outcomes", 1.0)
        with pytest.raises(TelemetryError, match="is a histogram"):
            registry.count("negotiation.latency_s")

    def test_label_discipline(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="requires the 'server'"):
            registry.count("breaker.opens")
        with pytest.raises(TelemetryError, match="takes no label"):
            registry.count("commitment.rollbacks", server="server-a")
        with pytest.raises(TelemetryError, match="at most one label"):
            registry.count("breaker.opens", server="a", extra="b")

    def test_every_catalog_name_is_in_the_rep011_allow_list(self):
        assert "negotiation.outcomes" in metric_names()
        assert "no.such.metric" not in metric_names()

    def test_disabled_registry_is_a_noop_even_for_bad_names(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("no.such.metric")  # must not raise
        registry.observe("also.not.real", 1.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestHistogramBucketEdges:
    def test_value_on_the_bound_lands_in_that_bucket(self):
        state = HistogramState((1.0, 2.0))
        state.observe(1.0)           # exactly on the first bound
        state.observe(1.0 + 1e-9)    # just past it
        state.observe(2.0)           # exactly on the last bound
        state.observe(2.5)           # past every bound
        assert state.counts == [1, 2]
        assert state.overflow == 1
        assert state.total == 4

    def test_registry_histograms_use_the_catalog_buckets(self):
        registry = MetricsRegistry()
        registry.observe("negotiation.attempts", 1.0)
        registry.observe("negotiation.attempts", 1.5)
        state = registry.histogram("negotiation.attempts")
        assert state.buckets == (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0)
        assert state.as_dict()["buckets"]["1"] == 1
        assert state.as_dict()["buckets"]["2"] == 1


class TestReading:
    def test_counter_total_sums_over_labels(self):
        registry = MetricsRegistry()
        registry.count("breaker.opens", server="server-a")
        registry.count("breaker.opens", 2.0, server="server-b")
        assert registry.counter_value("breaker.opens", server="server-a") == 1
        assert registry.counter_total("breaker.opens") == 3

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("sessions.active", 2.0)
        registry.gauge_add("sessions.active", -1.0)
        assert registry.gauge_value("sessions.active") == 1.0

    def test_snapshot_serializes_deterministically(self):
        def build():
            registry = MetricsRegistry()
            registry.count("breaker.opens", server="server-b")
            registry.count("breaker.opens", server="server-a")
            registry.observe("negotiation.latency_s", 0.25)
            registry.gauge_set("sessions.active", 1.0)
            return registry

        assert build().to_json() == build().to_json()
        decoded = json.loads(build().to_json())
        assert list(decoded["counters"]) == [
            "breaker.opens{server=server-a}",
            "breaker.opens{server=server-b}",
        ]

    def test_render_and_reset(self):
        registry = MetricsRegistry()
        assert "none recorded" in registry.render()
        registry.count("negotiation.offers.enumerated", 64.0)
        assert "negotiation.offers.enumerated" in registry.render()
        registry.reset()
        assert "none recorded" in registry.render()
