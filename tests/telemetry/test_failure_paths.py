"""Failure paths under instrumentation: no leaks, no swallowed errors.

The regression this suite pins: wrapping the negotiation stack in
telemetry must not change its error behaviour — a failed commitment
still releases every partial reservation, and a ``ReproError`` raised
under a span reaches the caller as the same object.
"""

import pytest

from repro.core import standard_profiles
from repro.core.status import NegotiationStatus
from repro.sim import ScenarioSpec, build_scenario
from repro.telemetry import InMemorySpanExporter
from repro.util.errors import NotFoundError


def balanced():
    return next(p for p in standard_profiles() if p.name == "balanced")


def crashed_scenario(telemetry_seed):
    scenario = build_scenario(
        ScenarioSpec(server_count=2, document_count=1),
        telemetry_seed=telemetry_seed,
    )
    for server in scenario.servers.values():
        server.crash()
    return scenario


class TestPartialReleaseAudit:
    def test_failed_commitments_leave_nothing_reserved(self):
        scenario = crashed_scenario(telemetry_seed=3)
        exporter = InMemorySpanExporter()
        scenario.telemetry.tracer.add_exporter(exporter)
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced(), scenario.any_client()
        )
        assert not result.status.reserves_resources
        assert result.status is NegotiationStatus.FAILED_TRY_LATER
        # The audit: every partial reservation was rolled back.
        assert scenario.transport.flow_count == 0
        assert all(
            server.stream_count == 0
            for server in scenario.servers.values()
        )
        assert scenario.topology.total_reserved_bps() == 0.0

    def test_the_failure_is_visible_in_the_telemetry(self):
        scenario = crashed_scenario(telemetry_seed=3)
        exporter = InMemorySpanExporter()
        scenario.telemetry.tracer.add_exporter(exporter)
        scenario.manager.negotiate(
            scenario.document_ids()[0], balanced(), scenario.any_client()
        )
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value(
            "negotiation.outcomes", status="FAILEDTRYLATER"
        ) == 1
        assert metrics.counter_total("admission.refusals") > 0
        attempts = [
            span for span in exporter.spans
            if span.name == "negotiation.step5.attempt"
        ]
        assert attempts
        assert all(
            span.attributes["outcome"] == "rolled-back" for span in attempts
        )

    def test_instrumented_and_uninstrumented_runs_fail_identically(self):
        plain = build_scenario(
            ScenarioSpec(server_count=2, document_count=1)
        )
        for server in plain.servers.values():
            server.crash()
        traced = crashed_scenario(telemetry_seed=3)
        args = lambda s: (  # noqa: E731
            s.document_ids()[0], balanced(), s.any_client()
        )
        plain_result = plain.manager.negotiate(*args(plain))
        traced_result = traced.manager.negotiate(*args(traced))
        assert plain_result.status is traced_result.status
        assert plain_result.retry_after_s == traced_result.retry_after_s


class TestErrorTransparency:
    def test_negotiate_raises_the_same_error_with_and_without_telemetry(
        self,
    ):
        traced = build_scenario(
            ScenarioSpec(document_count=1), telemetry_seed=3
        )
        plain = build_scenario(ScenarioSpec(document_count=1))
        errors = []
        for scenario in (traced, plain):
            with pytest.raises(NotFoundError) as caught:
                scenario.manager.negotiate(
                    "doc.missing", balanced(), scenario.any_client()
                )
            errors.append(caught.value)
        assert type(errors[0]) is type(errors[1])
        assert str(errors[0]) == str(errors[1])

    def test_a_raising_negotiation_still_closes_its_spans(self):
        scenario = build_scenario(
            ScenarioSpec(document_count=1), telemetry_seed=3
        )
        exporter = InMemorySpanExporter()
        scenario.telemetry.tracer.add_exporter(exporter)
        with pytest.raises(NotFoundError):
            scenario.manager.negotiate(
                "doc.missing", balanced(), scenario.any_client()
            )
        roots = [s for s in exporter.spans if s.name == "negotiation"]
        assert roots and roots[0].status == "error"
        assert roots[0].end_s is not None
        assert scenario.telemetry.tracer.current_span() is None
