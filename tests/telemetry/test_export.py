"""Exporters: JSONL round-trips and byte-identical same-seed runs."""

import pytest

from repro.core import standard_profiles
from repro.sim import ScenarioSpec, build_scenario
from repro.telemetry import (
    JsonlSpanExporter,
    Tracer,
    read_spans_jsonl,
    render_span_tree,
)
from repro.telemetry.spans import Span
from repro.util.clock import ManualClock
from repro.util.errors import TelemetryError


def run_traced_negotiation(path, seed):
    """One confirmed negotiation with its trace exported to ``path``."""
    scenario = build_scenario(
        ScenarioSpec(document_count=2), telemetry_seed=seed
    )
    exporter = JsonlSpanExporter(path)
    scenario.telemetry.tracer.add_exporter(exporter)
    profile = next(
        p for p in standard_profiles() if p.name == "balanced"
    )
    result = scenario.manager.negotiate(
        scenario.document_ids()[0], profile, scenario.any_client()
    )
    assert result.commitment is not None
    result.commitment.confirm(scenario.clock.now())
    result.commitment.release()
    exporter.close()
    return exporter


class TestJsonlRoundTrip:
    def test_spans_survive_the_round_trip_exactly(self, tmp_path):
        clock = ManualClock()
        tracer = Tracer(clock=clock, seed=3)
        path = tmp_path / "trace.jsonl"
        with JsonlSpanExporter(path) as exporter:
            tracer.add_exporter(exporter)
            with tracer.span("root", document="doc.test"):
                clock.advance(1.0)
                with tracer.span("child", offers_in=16):
                    clock.advance(0.5)
        originals = sorted(tracer.last_trace(), key=lambda s: s.sequence)
        restored = sorted(read_spans_jsonl(path), key=lambda s: s.sequence)
        assert [s.to_dict() for s in restored] == [
            s.to_dict() for s in originals
        ]

    def test_malformed_lines_raise_telemetry_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(TelemetryError):
            read_spans_jsonl(path)
        path.write_text('{"name": "x"}\n', encoding="utf-8")
        with pytest.raises(TelemetryError, match="malformed span record"):
            read_spans_jsonl(path)


class TestDeterminism:
    def test_same_seed_runs_export_byte_identical_jsonl(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_traced_negotiation(first, seed=7)
        run_traced_negotiation(second, seed=7)
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0

    def test_different_seeds_differ_only_in_ids(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_traced_negotiation(first, seed=1)
        run_traced_negotiation(second, seed=2)
        assert first.read_bytes() != second.read_bytes()
        names = lambda p: [s.name for s in read_spans_jsonl(p)]  # noqa: E731
        assert names(first) == names(second)


class TestSpanTreeRenderer:
    def test_tree_nests_children_under_parents(self):
        spans = [
            Span("root", "t1", "s1", None, 0.0, end_s=3.0, sequence=1),
            Span("child-a", "t1", "s2", "s1", 0.0, end_s=1.0, sequence=2),
            Span("child-b", "t1", "s3", "s1", 1.0, end_s=3.0, sequence=3),
        ]
        text = render_span_tree(spans)
        assert "trace t1" in text
        assert "|-- child-a" in text
        assert "`-- child-b" in text

    def test_empty_and_orphan_inputs(self):
        assert render_span_tree([]) == "(no spans)"
        orphan = Span("x", "t1", "s2", "missing-parent", 0.0, end_s=1.0)
        # An unknown parent id degrades to a root, never a crash.
        assert "x" in render_span_tree([orphan])
