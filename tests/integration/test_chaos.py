"""Acceptance: seeded chaos runs are deterministic, degrade gracefully,
adapt to mid-playout failures, and never leak reservations."""

import pytest

from repro.faults import FaultPlan, RetryPolicy, parse_fault_spec
from repro.sim import ChaosSpec, ScenarioSpec, run_chaos


def acceptance_spec(seed=1):
    """The ISSUE acceptance scenario: server-a crashes during the
    step-5 commitments of the early requests, and the first client's
    access link flaps mid-playout."""
    return ChaosSpec(
        scenario=ScenarioSpec(server_count=3),
        plan=FaultPlan(
            (
                parse_fault_spec("crash:server-a:2:20"),
                parse_fault_spec("flap:L-client-1:30:15"),
            ),
            seed=seed,
        ),
        seed=seed,
        requests=4,
        request_spacing_s=5.0,
        retry=RetryPolicy(max_attempts=3),
        lease_ttl_s=120.0,
    )


@pytest.fixture(scope="module")
def report():
    result, _scenario = run_chaos(acceptance_spec())
    return result


class TestAcceptance:
    def test_deterministic_replay(self, report):
        again, _ = run_chaos(acceptance_spec())
        assert again == report

    def test_crash_degrades_to_alternate_server_offers(self, report):
        # Requests arriving while server-a is down commit alternate-
        # server offers instead of failing outright.
        assert report.degraded_offers >= 1
        assert report.succeeded + report.degraded_offers >= 3

    def test_blocked_requests_carry_retry_hints(self, report):
        assert len(report.retry_after_hints) == report.blocked
        assert all(hint > 0 for hint in report.retry_after_hints)

    def test_breaker_quarantines_the_crashed_server(self, report):
        assert report.breaker_opens >= 1
        assert report.breaker_skips >= 1

    def test_midplayout_crash_triggers_adaptation(self, report):
        # The §8 walk: the violation monitor sees the crashed server /
        # flapped link and switches sessions to alternate offers.
        assert report.interruptions >= 1
        assert report.adaptations >= 1

    def test_sessions_survive_the_faults(self, report):
        assert report.completed_sessions >= 3
        assert report.aborted_sessions == 0

    def test_faults_actually_fired(self, report):
        assert report.fault_stats["crashes"] == 1
        assert report.fault_stats["restarts"] == 1
        assert report.fault_stats["link_flaps"] == 1
        assert report.fault_stats["link_heals"] == 1

    def test_no_reservation_leaked_at_teardown(self, report):
        assert report.clean_teardown
        assert report.leaked_streams == 0
        assert report.leaked_flows == 0
        assert report.leaked_bps == 0.0

    def test_report_renders(self, report):
        text = report.render()
        assert "chaos run report" in text
        assert "leaks at teardown" in text
        assert "none" in text


class TestLostReleaseRecovery:
    def test_leaked_releases_are_reaped(self):
        # Swallow the stream releases of the first session's teardown
        # (playout ends ~t=122); the lease reaper recovers the capacity
        # once the fault window closes.
        spec = ChaosSpec(
            scenario=ScenarioSpec(server_count=3),
            plan=FaultPlan(
                (parse_fault_spec("lost-release:*:100:25"),), seed=5
            ),
            seed=5,
            requests=2,
            request_spacing_s=5.0,
            lease_ttl_s=60.0,
        )
        report, _ = run_chaos(spec)
        assert report.fault_stats["lost_releases"] >= 1
        assert report.leases_reaped >= 1
        assert report.clean_teardown


class TestChaosSpecValidation:
    def test_requires_requests(self):
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            ChaosSpec(requests=0)

    def test_rejects_negative_spacing(self):
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            ChaosSpec(request_spacing_s=-1.0)

    def test_unknown_profile_rejected(self):
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            run_chaos(ChaosSpec(profile_name="ghost"))
