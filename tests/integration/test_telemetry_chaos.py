"""Acceptance: chaos-run telemetry reconciles with the ground truth.

The metrics registry and the trace are a *second witness* to what the
chaos runner already reports from its own bookkeeping; this suite
cross-examines the two.  Every counter asserted here has an independent
source of truth — the journal, the breaker, the committer stats — so a
drifting instrument fails loudly.
"""

from dataclasses import replace

import pytest

from repro.faults import FaultPlan, RetryPolicy, parse_fault_spec
from repro.sim import ChaosSpec, ScenarioSpec, run_chaos
from repro.telemetry import read_spans_jsonl, reconcile_journal


def telemetry_spec(seed=1, telemetry_jsonl=None):
    return ChaosSpec(
        scenario=ScenarioSpec(server_count=3),
        plan=FaultPlan(
            (
                parse_fault_spec("crash:server-a:2:20"),
                parse_fault_spec("flap:L-client-1:30:15"),
            ),
            seed=seed,
        ),
        seed=seed,
        requests=4,
        request_spacing_s=5.0,
        retry=RetryPolicy(max_attempts=3),
        lease_ttl_s=120.0,
        telemetry_seed=seed,
        telemetry_jsonl=telemetry_jsonl,
    )


@pytest.fixture(scope="module")
def run():
    return run_chaos(telemetry_spec())


class TestMetricsReconcile:
    def test_journal_counters_match_the_journal(self, run):
        report, scenario = run
        journal = scenario.manager.committer.journal
        audit = reconcile_journal(journal, scenario.telemetry.metrics)
        assert audit["balanced"], audit["open_holders"]
        assert audit["metrics_match"]
        assert audit["records"] == len(journal) == report.journal_records

    def test_zero_leaks_and_zero_open_holders_agree(self, run):
        report, scenario = run
        audit = reconcile_journal(scenario.manager.committer.journal)
        assert report.clean_teardown
        assert audit["open_holders"] == []

    def test_breaker_counters_match_the_breaker(self, run):
        report, scenario = run
        metrics = scenario.telemetry.metrics
        assert metrics.counter_total("breaker.opens") == report.breaker_opens
        assert metrics.counter_value("breaker.skips") == report.breaker_skips

    def test_admission_counters_match_the_committer_stats(self, run):
        report, scenario = run
        metrics = scenario.telemetry.metrics
        assert metrics.counter_total("admission.retries") == report.retries
        assert (
            metrics.counter_value("leases.reaped") == report.leases_reaped
        )

    def test_negotiation_outcomes_match_the_status_mix(self, run):
        report, scenario = run
        metrics = scenario.telemetry.metrics
        for status, count in report.statuses.items():
            assert metrics.counter_value(
                "negotiation.outcomes", status=status
            ) == count
        assert (
            metrics.counter_total("negotiation.outcomes")
            == report.negotiations
        )

    def test_stream_ledger_counters_balance(self, run):
        _, scenario = run
        metrics = scenario.telemetry.metrics
        assert metrics.counter_total(
            "server.streams.reserved"
        ) == metrics.counter_total("server.streams.released")
        assert metrics.counter_value(
            "network.flows.reserved"
        ) == metrics.counter_value("network.flows.released")


class TestTraceArtifact:
    def test_chaos_trace_exports_and_replays_deterministically(
        self, tmp_path
    ):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_chaos(telemetry_spec(telemetry_jsonl=str(first)))
        run_chaos(telemetry_spec(telemetry_jsonl=str(second)))
        assert first.read_bytes() == second.read_bytes()
        spans = read_spans_jsonl(first)
        names = {span.name for span in spans}
        assert "negotiation" in names
        assert "negotiation.step5.attempt" in names
        assert "breaker.transition" in names

    def test_telemetry_does_not_change_the_chaos_outcome(self, run):
        report, _ = run
        plain_report, _ = run_chaos(
            ChaosSpec(
                scenario=ScenarioSpec(server_count=3),
                plan=FaultPlan(
                    (
                        parse_fault_spec("crash:server-a:2:20"),
                        parse_fault_spec("flap:L-client-1:30:15"),
                    ),
                    seed=1,
                ),
                seed=1,
                requests=4,
                request_spacing_s=5.0,
                retry=RetryPolicy(max_attempts=3),
                lease_ttl_s=120.0,
            )
        )
        # The flight-recorder timeline IS telemetry output — present
        # exactly when telemetry is on.  Outcome equality is
        # everything else.
        assert plain_report.timeline == {}
        assert report.timeline
        assert plain_report == replace(report, timeline={})
