"""Stress: a full adaptive service period with random congestion.

Everything at once — Poisson arrivals, Zipf popularity, mixed profiles,
monitoring, automatic adaptation, random link/server congestion
episodes — then the books must balance exactly.
"""

import pytest

from repro.session.violations import RandomInjector
from repro.sim import (
    RunConfig,
    ScenarioSpec,
    SmartNegotiator,
    WorkloadSpec,
    build_scenario,
    generate_requests,
    run_workload,
)

SEED = 1996


@pytest.fixture(scope="module")
def stats_and_scenario():
    scenario = build_scenario(
        ScenarioSpec(server_count=3, client_count=3, document_count=6)
    )
    requests = generate_requests(
        WorkloadSpec(arrival_rate_per_s=0.12, horizon_s=1800.0),
        scenario.document_ids(),
        list(scenario.clients),
        rng=SEED,
    )
    injector = RandomInjector(
        scenario.topology,
        scenario.servers,
        rate_per_s=0.01,
        horizon_s=1800.0,
        mean_duration_s=25.0,
        severity_range=(0.9, 1.0),
        rng=SEED,
    )
    stats = run_workload(
        scenario,
        SmartNegotiator(scenario.manager),
        requests,
        config=RunConfig(adaptation_enabled=True),
        injector=injector,
    )
    return stats, scenario, injector, len(requests)


class TestStressDay:
    def test_every_request_accounted(self, stats_and_scenario):
        stats, _, _, offered = stats_and_scenario
        assert stats.statuses.total == offered
        assert (
            stats.completed_sessions + stats.aborted_sessions
            == stats.statuses.served
        )

    def test_served_sessions_exist(self, stats_and_scenario):
        stats, _, _, _ = stats_and_scenario
        assert stats.completed_sessions > 20

    def test_congestion_actually_happened(self, stats_and_scenario):
        _, _, injector, _ = stats_and_scenario
        assert len(injector.episodes) > 3

    def test_adaptations_occurred(self, stats_and_scenario):
        stats, _, _, _ = stats_and_scenario
        # With >3 severe episodes across 30 minutes of sessions, at
        # least some session adapted or got degraded.
        assert (
            stats.adaptations + stats.failed_adaptations
            + int(stats.total_degraded_s > 0)
        ) > 0

    def test_books_balance_at_end(self, stats_and_scenario):
        _, scenario, _, _ = stats_and_scenario
        assert scenario.transport.flow_count == 0
        assert scenario.topology.total_reserved_bps() == pytest.approx(0.0)
        assert all(
            server.stream_count == 0 for server in scenario.servers.values()
        )

    def test_revenue_consistent_with_served(self, stats_and_scenario):
        stats, _, _, _ = stats_and_scenario
        assert (stats.revenue.cents > 0) == (stats.statuses.served > 0)
