"""End-to-end storm runs: survival, determinism, thrash, recovery."""

import hashlib

import pytest

from repro.faults.plan import FaultKind, FaultSpec
from repro.sim import StormSpec, run_storm, run_storm_comparison
from repro.util.errors import SimulationError


def digest(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestSpecValidation:
    def test_rejects_zero_severity(self):
        with pytest.raises(SimulationError):
            StormSpec(severity=0.0)

    def test_rejects_more_targets_than_servers(self):
        with pytest.raises(SimulationError):
            StormSpec(servers=2, target_servers=3)

    def test_rejects_empty_storm(self):
        with pytest.raises(SimulationError):
            StormSpec(sessions=0)


class TestStormSurvival:
    def test_brownout_at_scale_is_survived(self):
        # The flagship contract: 200+ concurrent sessions, 40% of one
        # server's capacity gone, and every session still reaches a
        # terminal state with nothing leaked.
        report, scenario = run_storm(StormSpec(seed=1))
        assert report.sessions_started >= 200
        assert report.stuck_sessions == 0
        assert report.aborted_sessions == 0
        assert report.clean_teardown
        assert report.journal_balanced
        assert report.survived
        # The brownout actually bit: waves ran and sessions moved.
        assert report.fault_stats["brownouts"] == 1
        assert report.fault_stats["brownout_heals"] == 1
        assert report.waves["waves"] >= 1
        assert report.waves["inplace_switches"] >= 1
        # Load was genuinely shed, and every shed/blocked verdict
        # carried an honest retry hint.
        assert report.blocked > 0
        assert len(report.retry_after_hints) == report.blocked
        assert all(hint > 0.0 for hint in report.retry_after_hints)

    def test_every_holder_timeline_ends_terminal(self):
        report, scenario = run_storm(
            StormSpec(sessions=120, late_requests=24, severity=0.5, seed=5)
        )
        assert report.survived
        journal = scenario.manager.committer.journal
        for timeline in journal.by_holder().values():
            assert timeline[-1].is_terminal


class TestDeterminism:
    def test_same_seed_same_report_and_trace(self, tmp_path):
        def once(path):
            spec = StormSpec(
                sessions=120, late_requests=24, severity=0.5, seed=5,
                telemetry_seed=7, telemetry_jsonl=str(path),
            )
            report, _ = run_storm(spec)
            return report

        first = once(tmp_path / "a.jsonl")
        second = once(tmp_path / "b.jsonl")
        assert first.as_dict() == second.as_dict()
        # Byte-for-byte: the CI storm job diffs exactly this.
        assert digest(tmp_path / "a.jsonl") == digest(tmp_path / "b.jsonl")
        assert first.metrics_match is True

    def test_different_seeds_diverge(self):
        base = dict(sessions=120, late_requests=24, severity=0.5)
        first, _ = run_storm(StormSpec(seed=5, **base))
        second, _ = run_storm(StormSpec(seed=6, **base))
        assert first.as_dict() != second.as_dict()


class TestThrashComparison:
    def test_backpressure_beats_the_bare_deployment(self):
        comparison = run_storm_comparison(
            StormSpec(sessions=140, late_requests=24, severity=0.5, seed=5)
        )
        gated = comparison.with_backpressure
        bare = comparison.without_backpressure
        assert gated.survived
        # The bare deployment demonstrably thrashes: it spends multiples
        # of the commitment attempts and failed adaptations to deliver
        # the same storm.
        assert comparison.demonstrates_thrash
        assert comparison.attempt_ratio > 1.5
        assert comparison.failed_adaptation_ratio > 1.5
        assert bare.commit_attempts > gated.commit_attempts
        # The verdict survives serialization (the CLI's --json path).
        document = comparison.as_dict()
        assert document["demonstrates_thrash"] is True
        assert document["with_backpressure"]["backpressure"] is True
        assert document["without_backpressure"]["backpressure"] is False


class TestInterruptedStorm:
    def test_manager_crash_mid_wave_replays_leak_free(self):
        # Kill the manager while the brownout wave is being processed:
        # recovery must replay the journal, re-adopt live sessions, and
        # still land the whole storm with zero leaks.
        crash = FaultSpec(
            FaultKind.MANAGER_CRASH, "manager", start_s=92.0, value=3
        )
        report, scenario = run_storm(
            StormSpec(
                sessions=140, late_requests=24, severity=0.5, seed=5,
                extra_faults=(crash,),
            )
        )
        assert report.manager_crashes == 1
        assert report.recoveries == 1
        assert report.recovered_active > 0
        assert report.stuck_sessions == 0
        assert report.clean_teardown
        assert report.journal_balanced
        assert report.survived
        journal = scenario.manager.committer.journal
        for timeline in journal.by_holder().values():
            assert timeline[-1].is_terminal
