"""Cross-module integration: the full negotiation→confirm→play→adapt→
complete lifecycle over every substrate at once."""

import pytest

from repro.client.machine import ClientMachine
from repro.core.status import NegotiationStatus
from repro.session.playout import SessionState
from repro.session.violations import CongestionEpisode, ScriptedInjector
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.ui.windows import information_window


class TestFullLifecycle:
    def test_negotiate_confirm_play_complete(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec(server_count=2, document_count=2))
        runtime = scenario.runtime()
        client = scenario.any_client()
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, client
        )
        assert result.status is NegotiationStatus.SUCCEEDED
        session = runtime.start_session(result, balanced_profile, client)
        scenario.loop.run()
        assert session.state is SessionState.COMPLETED
        assert scenario.transport.flow_count == 0
        assert all(s.stream_count == 0 for s in scenario.servers.values())

    def test_rejection_releases_everything(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec())
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        result.commitment.reject(scenario.clock.now())
        assert scenario.transport.flow_count == 0

    def test_confirmation_timeout_releases(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec())
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        deadline = result.commitment.deadline
        scenario.clock.advance_to(deadline + 1.0)
        assert result.commitment.expire_check(scenario.clock.now())
        assert scenario.transport.flow_count == 0

    def test_adaptation_lifecycle_under_injection(self, balanced_profile):
        scenario = build_scenario(
            ScenarioSpec(server_count=3, document_count=2)
        )
        runtime = scenario.runtime()
        client = scenario.any_client()
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, client
        )
        session = runtime.start_session(result, balanced_profile, client)
        # Congest the link of every server the session currently uses.
        episodes = [
            CongestionEpisode("link", f"L-{server_id}", 10.0, 40.0, 0.98)
            for server_id in result.chosen.offer.servers_used()
        ]
        ScriptedInjector(scenario.topology, scenario.servers, episodes).arm(
            scenario.loop
        )
        scenario.loop.run()
        assert session.state is SessionState.COMPLETED
        assert session.record.adaptations >= 1
        assert scenario.transport.flow_count == 0

    def test_capacity_exhaustion_and_recovery(self, balanced_profile):
        scenario = build_scenario(
            ScenarioSpec(server_count=1, client_count=1, document_count=1)
        )
        client = scenario.any_client()
        document_id = scenario.document_ids()[0]
        held = []
        while True:
            result = scenario.manager.negotiate(
                document_id, balanced_profile, client
            )
            if result.status is NegotiationStatus.FAILED_TRY_LATER:
                break
            result.commitment.confirm(scenario.clock.now())
            held.append(result)
            assert len(held) < 200, "capacity never exhausted"
        assert held, "nothing was ever admitted"
        # Release one session: the next request succeeds again.
        held.pop().commitment.release()
        retry = scenario.manager.negotiate(document_id, balanced_profile, client)
        assert retry.status is not NegotiationStatus.FAILED_TRY_LATER
        retry.commitment.release()
        for result in held:
            result.commitment.release()


class TestRenegotiation:
    def test_user_rejects_then_relaxes_profile(self, premium_profile, balanced_profile):
        """The §8 renegotiation flow: reject the offer, edit the profile,
        negotiate again."""
        scenario = build_scenario(ScenarioSpec())
        client = scenario.any_client()
        document_id = scenario.document_ids()[0]
        first = scenario.manager.negotiate(document_id, premium_profile, client)
        assert first.status.reserves_resources
        first.commitment.reject(scenario.clock.now())
        assert scenario.transport.flow_count == 0
        second = scenario.manager.negotiate(document_id, balanced_profile, client)
        assert second.status is NegotiationStatus.SUCCEEDED
        second.commitment.release()

    def test_information_window_round(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec())
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        window = information_window(result)
        assert "SUCCEEDED" in window
        result.commitment.release()


class TestMultiClientContention:
    def test_distinct_clients_share_backbone(self, balanced_profile):
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=3, document_count=2)
        )
        results = []
        for client in scenario.clients.values():
            result = scenario.manager.negotiate(
                scenario.document_ids()[0], balanced_profile, client
            )
            assert result.status is NegotiationStatus.SUCCEEDED
            results.append(result)
        # Flows from different clients end at different access points.
        targets = {
            flow.target
            for result in results
            for flow in result.commitment.bundle.flows
        }
        assert len(targets) == 3
        for result in results:
            result.commitment.release()
