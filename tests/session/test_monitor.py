"""QoS monitor: mapping infrastructure violations to sessions."""

import pytest

from repro.session.monitor import JitterCompensator, QoSMonitor
from repro.session.playout import PlayoutSession


@pytest.fixture
def session(manager, document, balanced_profile, client):
    result = manager.negotiate(document.document_id, balanced_profile, client)
    result.commitment.confirm(0.0)
    return PlayoutSession(
        "sess-m", result, balanced_profile, client,
        started_at=0.0, duration_s=120.0,
    )


@pytest.fixture
def monitor(transport, servers):
    return QoSMonitor(transport, servers)


class TestScan:
    def test_healthy_system_no_violations(self, monitor, session):
        assert monitor.scan([session], now=1.0) == []

    def test_link_congestion_attributed(self, monitor, session, topology):
        topology.link("L-a").set_congestion(0.99)
        violations = monitor.scan([session], now=5.0)
        assert violations
        v = violations[0]
        assert v.session_id == "sess-m"
        assert v.source == "network"
        assert v.component == "L-a"
        assert v.detected_at == 5.0

    def test_server_degradation_attributed(self, monitor, session, servers):
        servers["server-a"].set_degradation(1.0)
        violations = monitor.scan([session], now=3.0)
        assert any(
            v.source == "server" and v.component == "server-a"
            for v in violations
        )

    def test_deduplicated_per_component(self, monitor, session, topology):
        topology.link("L-a").set_congestion(0.99)
        violations = monitor.scan([session], now=1.0)
        keys = [(v.session_id, v.source, v.component) for v in violations]
        assert len(keys) == len(set(keys))

    def test_unrelated_session_untouched(
        self, monitor, manager, document, balanced_profile, topology, servers
    ):
        from repro.client.machine import ClientMachine

        # Session on server-b path only; congest server-a's link.
        client_b = ClientMachine("bob", access_point="client-net")
        result = manager.negotiate(document.document_id, balanced_profile, client_b)
        result.commitment.confirm(0.0)
        session_b = PlayoutSession(
            "sess-b", result, balanced_profile, client_b,
            started_at=0.0, duration_s=60.0,
        )
        used = result.chosen.offer.servers_used()
        other = ({"server-a", "server-b"} - used) or {"server-b"}
        # Congest a server the session does not use.
        victim = next(iter(other))
        servers[victim].set_degradation(1.0)
        violations = monitor.scan([session_b], now=1.0)
        assert violations == []


class TestJitterCompensator:
    def test_absorbs_short_violations(self):
        compensator = JitterCompensator(buffer_s=1.0)
        assert compensator.visible_stall(0.5) == 0.0

    def test_exposes_excess(self):
        compensator = JitterCompensator(buffer_s=1.0)
        assert compensator.visible_stall(3.0) == pytest.approx(2.0)

    def test_buffer_must_be_positive(self):
        with pytest.raises(Exception):
            JitterCompensator(buffer_s=0.0)
