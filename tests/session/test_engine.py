"""Discrete-event loop: ordering, periodic tasks, cancellation."""

import pytest

from repro.session.engine import EventLoop
from repro.util.clock import ManualClock
from repro.util.errors import SessionError


@pytest.fixture
def loop():
    return EventLoop(ManualClock())


class TestScheduling:
    def test_events_fire_in_time_order(self, loop):
        fired = []
        loop.at(2.0, lambda: fired.append("b"))
        loop.at(1.0, lambda: fired.append("a"))
        loop.at(3.0, lambda: fired.append("c"))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self, loop):
        fired = []
        for name in "abc":
            loop.at(1.0, lambda n=name: fired.append(n))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, loop):
        seen = []
        loop.at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]
        assert loop.now == 5.0

    def test_after_is_relative(self, loop):
        loop.clock.advance(10.0)
        fired = []
        loop.after(2.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [12.0]

    def test_past_scheduling_rejected(self, loop):
        loop.clock.advance(5.0)
        with pytest.raises(SessionError):
            loop.at(4.0, lambda: None)

    def test_events_can_schedule_events(self, loop):
        fired = []

        def first():
            fired.append("first")
            loop.after(1.0, lambda: fired.append("second"))

        loop.at(1.0, first)
        loop.run()
        assert fired == ["first", "second"]
        assert loop.now == 2.0


class TestCancellation:
    def test_cancelled_events_skipped(self, loop):
        fired = []
        event = loop.at(1.0, lambda: fired.append("x"))
        event.cancel()
        loop.run()
        assert fired == []
        assert loop.processed == 0

    def test_pending_excludes_cancelled(self, loop):
        event = loop.at(1.0, lambda: None)
        loop.at(2.0, lambda: None)
        assert loop.pending == 2
        event.cancel()
        assert loop.pending == 1


class TestRunUntil:
    def test_stops_at_boundary(self, loop):
        fired = []
        loop.at(1.0, lambda: fired.append(1))
        loop.at(2.0, lambda: fired.append(2))
        loop.at(3.0, lambda: fired.append(3))
        loop.run_until(2.0)
        assert fired == [1, 2]
        assert loop.now == 2.0

    def test_advances_clock_when_idle(self, loop):
        loop.run_until(7.5)
        assert loop.now == 7.5


class TestPeriodic:
    def test_every_until(self, loop):
        ticks = []
        loop.every(1.0, lambda: ticks.append(loop.now), until=3.5)
        loop.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_unbounded_every_guarded(self, loop):
        loop.every(0.001, lambda: None)
        with pytest.raises(SessionError, match="exceeded"):
            loop.run(max_events=100)

    def test_zero_period_rejected(self, loop):
        with pytest.raises(SessionError):
            loop.every(0.0, lambda: None)


class TestRunUntilWithCancellation:
    def test_cancelled_head_skipped_in_run_until(self, loop):
        fired = []
        head = loop.at(1.0, lambda: fired.append("head"))
        loop.at(2.0, lambda: fired.append("tail"))
        head.cancel()
        loop.run_until(3.0)
        assert fired == ["tail"]
        assert loop.now == 3.0
