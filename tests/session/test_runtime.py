"""Session runtime: the active-phase monitoring/adaptation loop."""

import pytest

from repro.session.engine import EventLoop
from repro.session.playout import SessionState
from repro.session.runtime import SessionRuntime
from repro.session.violations import CongestionEpisode, ScriptedInjector
from repro.util.errors import SessionError


@pytest.fixture
def runtime(manager, loop):
    return SessionRuntime(manager, loop)


@pytest.fixture
def negotiated(manager, document, balanced_profile, client):
    return manager.negotiate(document.document_id, balanced_profile, client)


class TestLifecycle:
    def test_plain_session_completes(self, runtime, negotiated,
                                     balanced_profile, client, loop, transport):
        session = runtime.start_session(negotiated, balanced_profile, client)
        assert runtime.active_count == 1
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert runtime.active_count == 0
        assert runtime.finished == [session]
        assert transport.flow_count == 0

    def test_duration_defaults_to_document(self, runtime, negotiated,
                                           balanced_profile, client, document):
        session = runtime.start_session(negotiated, balanced_profile, client)
        assert session.duration_s == pytest.approx(document.duration_s)

    def test_abort(self, runtime, negotiated, balanced_profile, client, loop):
        session = runtime.start_session(negotiated, balanced_profile, client)
        loop.run_until(10.0)
        runtime.abort_session(session)
        assert session.state is SessionState.ABORTED
        assert runtime.active_count == 0

    def test_clock_mismatch_rejected(self, manager):
        from repro.util.clock import ManualClock

        with pytest.raises(SessionError):
            SessionRuntime(manager, EventLoop(ManualClock()))

    def test_requires_commitment(self, runtime, balanced_profile, client):
        from repro.core.negotiation import NegotiationResult
        from repro.core.status import NegotiationStatus

        bare = NegotiationResult(status=NegotiationStatus.FAILED_TRY_LATER)
        with pytest.raises(SessionError):
            runtime.start_session(bare, balanced_profile, client)


class TestAdaptationLoop:
    def test_congestion_triggers_switch(
        self, runtime, negotiated, balanced_profile, client, loop,
        topology, servers,
    ):
        session = runtime.start_session(negotiated, balanced_profile, client)
        first_offer = session.current_offer_id
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 10.0, 30.0, 0.97)],
        )
        injector.arm(loop)
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert session.record.adaptations >= 1
        assert session.record.total_interruption_s > 0

    def test_interruption_extends_session(self, runtime, negotiated,
                                          balanced_profile, client, loop,
                                          topology, servers):
        session = runtime.start_session(negotiated, balanced_profile, client)
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 10.0, 30.0, 0.97)],
        )
        injector.arm(loop)
        loop.run()
        if session.record.adaptations:
            # completion happens later than the nominal duration
            assert loop.now >= session.duration_s

    def test_adaptation_disabled_marks_degraded(
        self, manager, loop, negotiated, balanced_profile, client,
        topology, servers,
    ):
        runtime = SessionRuntime(manager, loop, adaptation_enabled=False)
        session = runtime.start_session(negotiated, balanced_profile, client)
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 10.0, 30.0, 0.97)],
        )
        injector.arm(loop)
        loop.run()
        assert session.record.adaptations == 0
        assert session.record.degraded_time_s > 0

    def test_degradation_clears_when_congestion_heals(
        self, manager, loop, negotiated, balanced_profile, client,
        topology, servers,
    ):
        runtime = SessionRuntime(manager, loop, adaptation_enabled=False)
        session = runtime.start_session(negotiated, balanced_profile, client)
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 10.0, 20.0, 0.97)],
        )
        injector.arm(loop)
        loop.run()
        # ~20 s congested (plus detection lag), far below full duration.
        assert 15.0 <= session.record.degraded_time_s <= 30.0

    def test_violation_callback(self, manager, loop, negotiated,
                                balanced_profile, client, topology, servers):
        seen = []
        runtime = SessionRuntime(
            manager, loop, on_violation=seen.append,
        )
        runtime.start_session(negotiated, balanced_profile, client)
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 5.0, 10.0, 0.99)],
        )
        injector.arm(loop)
        loop.run()
        assert seen and seen[0].component == "L-a"


class TestMultipleSessions:
    def test_concurrent_sessions_complete(self, runtime, manager, document,
                                          balanced_profile, client, loop):
        sessions = []
        for _ in range(3):
            result = manager.negotiate(
                document.document_id, balanced_profile, client
            )
            assert result.succeeded
            sessions.append(
                runtime.start_session(result, balanced_profile, client)
            )
        loop.run()
        assert all(s.state is SessionState.COMPLETED for s in sessions)
