"""Recovery paths: sessions that lose all resources and regain them."""

import pytest

from repro.session.playout import SessionState
from repro.session.runtime import SessionRuntime
from repro.session.violations import CongestionEpisode, ScriptedInjector


class TestResourceLossRecovery:
    def test_session_regains_resources_after_total_outage(
        self, manager, loop, document, balanced_profile, client,
        topology, servers, transport,
    ):
        """The client access link dies completely (no alternate path
        exists), the session loses its guarantees, the link heals, and
        the next monitoring sweep re-secures resources."""
        runtime = SessionRuntime(manager, loop)
        result = manager.negotiate(document.document_id, balanced_profile, client)
        session = runtime.start_session(result, balanced_profile, client)
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-client", 10.0, 30.0, 1.0)],
        )
        injector.arm(loop)

        # Run until mid-outage: resources are gone.
        loop.run_until(20.0)
        assert session.record.resources_lost
        assert transport.flow_count == 0
        assert session.state is SessionState.DEGRADED

        # Run to completion: the link heals at t=40, a later sweep
        # re-reserves, and playout finishes with resources held.
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert not session.record.resources_lost
        assert session.record.degraded_time_s > 0
        assert transport.flow_count == 0  # released at completion

    def test_total_outage_without_adaptation_stays_degraded(
        self, manager, loop, document, balanced_profile, client,
        topology, servers,
    ):
        runtime = SessionRuntime(manager, loop, adaptation_enabled=False)
        result = manager.negotiate(document.document_id, balanced_profile, client)
        session = runtime.start_session(result, balanced_profile, client)
        ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-client", 10.0, 30.0, 1.0)],
        ).arm(loop)
        loop.run()
        assert session.state is SessionState.COMPLETED
        # Without adaptation the violation simply rides out the episode.
        assert session.record.adaptations == 0
        assert session.record.degraded_time_s >= 25.0


class TestServerOutage:
    def test_server_degradation_triggers_switch_to_other_server(
        self, manager, loop, document, balanced_profile, client, servers
    ):
        runtime = SessionRuntime(manager, loop)
        result = manager.negotiate(document.document_id, balanced_profile, client)
        session = runtime.start_session(result, balanced_profile, client)
        used = result.chosen.offer.servers_used()
        victim = next(iter(used))
        loop.at(10.0, lambda: servers[victim].set_degradation(1.0))
        loop.at(60.0, lambda: servers[victim].set_degradation(0.0))
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert session.record.adaptations >= 1
