"""Playout sessions: position tracking and QoE ledger."""

import pytest

from repro.session.playout import PlayoutSession, SessionState
from repro.util.errors import SessionError


@pytest.fixture
def result(manager, document, balanced_profile, client):
    result = manager.negotiate(document.document_id, balanced_profile, client)
    result.commitment.confirm(0.0)
    return result


@pytest.fixture
def session(result, balanced_profile, client):
    return PlayoutSession(
        "sess-t", result, balanced_profile, client,
        started_at=0.0, duration_s=120.0,
    )


class TestPosition:
    def test_advances_while_playing(self, session):
        assert session.position_at(0.0) == 0.0
        assert session.position_at(30.0) == 30.0

    def test_capped_at_duration(self, session):
        assert session.position_at(500.0) == 120.0
        assert session.finished_by(120.0)

    def test_finished_tolerates_roundoff(self, session):
        assert session.finished_by(120.0 - 1e-9)


class TestDegradation:
    def test_degraded_time_accounted(self, session):
        session.mark_degraded(10.0)
        assert session.state is SessionState.DEGRADED
        session.clear_degraded(25.0)
        assert session.state is SessionState.PLAYING
        assert session.record.degraded_time_s == pytest.approx(15.0)

    def test_position_still_advances_degraded(self, session):
        session.mark_degraded(10.0)
        assert session.position_at(20.0) == 20.0

    def test_mark_idempotent(self, session):
        session.mark_degraded(10.0)
        session.mark_degraded(12.0)
        session.clear_degraded(20.0)
        assert session.record.degraded_time_s == pytest.approx(10.0)


class TestCompletion:
    def test_complete_releases_resources(self, session, transport):
        session.complete(120.0)
        assert session.state is SessionState.COMPLETED
        assert session.record.completed
        assert transport.flow_count == 0

    def test_abort(self, session, transport):
        session.abort(50.0)
        assert session.state is SessionState.ABORTED
        assert session.record.aborted
        assert transport.flow_count == 0

    def test_double_complete_rejected(self, session):
        session.complete(120.0)
        with pytest.raises(SessionError):
            session.complete(121.0)

    def test_degraded_time_closed_on_completion(self, session):
        session.mark_degraded(100.0)
        session.complete(120.0)
        assert session.record.degraded_time_s == pytest.approx(20.0)


class TestConstruction:
    def test_requires_commitment(self, balanced_profile, client):
        from repro.core.negotiation import NegotiationResult
        from repro.core.status import NegotiationStatus

        bare = NegotiationResult(status=NegotiationStatus.FAILED_TRY_LATER)
        with pytest.raises(SessionError):
            PlayoutSession("s", bare, balanced_profile, client,
                           started_at=0.0, duration_s=10.0)

    def test_holder_exposed(self, session):
        assert session.holder.startswith("session-")
