"""Session supervision: heartbeats, stalls, dead sessions, adoption."""

import pytest

from repro.session.playout import SessionState
from repro.session.runtime import SessionRuntime
from repro.session.supervisor import SessionSupervisor
from repro.util.errors import SessionError, ValidationError


@pytest.fixture
def runtime(manager, loop):
    return SessionRuntime(manager, loop)


@pytest.fixture
def session(runtime, manager, document, balanced_profile, client):
    result = manager.negotiate(
        document.document_id, balanced_profile, client
    )
    return runtime.start_session(result, balanced_profile, client)


@pytest.fixture
def supervisor(clock, runtime):
    return SessionSupervisor(
        clock=clock, runtime=runtime, heartbeat_timeout_s=30.0, period_s=5.0
    )


class TestConstruction:
    def test_timeout_must_be_positive(self, clock):
        with pytest.raises(ValidationError):
            SessionSupervisor(clock=clock, heartbeat_timeout_s=0.0)

    def test_period_must_be_positive(self, clock):
        with pytest.raises(ValidationError):
            SessionSupervisor(clock=clock, period_s=-1.0)

    def test_adopt_rejects_empty_holder(self, supervisor):
        with pytest.raises(SessionError):
            supervisor.adopt("")


class TestLiveSessions:
    def test_progress_is_the_heartbeat(self, supervisor, session, clock):
        supervisor.watch(session)
        clock.advance(40.0)  # longer than the timeout, but playing
        assert supervisor.check() == []
        assert supervisor.stats.heartbeats == 1
        assert session.state is SessionState.PLAYING

    def test_completed_session_is_forgotten(
        self, supervisor, session, loop
    ):
        supervisor.watch(session)
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert supervisor.check() == []
        assert supervisor.watch_count == 0

    def test_dead_session_is_adapted_onto_fresh_resources(
        self, supervisor, session, clock, servers, transport
    ):
        supervisor.watch(session)
        # The reservation vanishes underneath the playout (a reaped
        # lease, a wiped ledger): the next sweep must reclaim it —
        # here capacity is free, so release-or-adapt picks adapt.
        transport.release_all()
        for server in servers.values():
            server.release_all()
        clock.advance(5.0)
        acted = supervisor.check()
        assert len(acted) == 1
        assert supervisor.stats.dead_sessions == 1
        assert supervisor.stats.adaptations_driven == 1
        assert session.state is SessionState.PLAYING
        assert transport.flow_count > 0  # re-reserved by the adaptation

    def test_dead_session_is_aborted_without_adaptation(
        self, manager, loop, clock, document, balanced_profile, client,
        servers, transport
    ):
        runtime = SessionRuntime(manager, loop, adaptation_enabled=False)
        result = manager.negotiate(
            document.document_id, balanced_profile, client
        )
        session = runtime.start_session(result, balanced_profile, client)
        supervisor = SessionSupervisor(
            clock=clock, runtime=runtime, heartbeat_timeout_s=30.0
        )
        supervisor.watch(session)
        transport.release_all()
        for server in servers.values():
            server.release_all()
        clock.advance(5.0)
        assert supervisor.check() == [session.holder]
        assert supervisor.stats.dead_sessions == 1
        assert session.state is SessionState.ABORTED
        assert runtime.active_count == 0
        assert supervisor.watch_count == 0


class TestAdoptedHolders:
    def test_silence_invokes_the_release_closure(self, supervisor, clock):
        released = []
        supervisor.adopt("ghost", lambda when: released.append(when))
        clock.advance(31.0)
        assert supervisor.check() == ["ghost"]
        assert released == [pytest.approx(31.0)]
        assert supervisor.stats.sessions_released == 1

    def test_heartbeat_defers_the_timeout(self, supervisor, clock):
        released = []
        supervisor.adopt("ghost", lambda when: released.append(when))
        clock.advance(25.0)
        assert supervisor.heartbeat("ghost")
        clock.advance(25.0)
        assert supervisor.check() == []
        clock.advance(10.0)
        assert supervisor.check() == ["ghost"]
        assert released

    def test_heartbeat_for_unknown_holder_is_false(self, supervisor):
        assert not supervisor.heartbeat("nobody")

    def test_forget_cancels_the_watch(self, supervisor, clock):
        released = []
        supervisor.adopt("ghost", lambda when: released.append(when))
        supervisor.forget("ghost")
        clock.advance(100.0)
        assert supervisor.check() == []
        assert released == []


class TestArmedSweep:
    def test_sweep_runs_until_nothing_is_watched(
        self, supervisor, clock, loop
    ):
        released = []
        supervisor.adopt("ghost", lambda when: released.append(when))
        supervisor.arm(loop)
        supervisor.arm(loop)  # re-arming is a no-op, not a double sweep
        loop.run()
        # The sweep fired every period until the timeout reclaimed the
        # holder, then auto-stopped (the loop drained).
        assert released and released[0] == pytest.approx(35.0)
        assert supervisor.watch_count == 0

    def test_watched_playout_survives_the_sweep(
        self, supervisor, session, loop, transport
    ):
        supervisor.watch(session)
        supervisor.arm(loop)
        loop.run()
        assert session.state is SessionState.COMPLETED
        assert supervisor.stats.sessions_released == 0
        assert transport.flow_count == 0
