"""Data-path simulation: rounds, buffers, stalls."""

import pytest

from repro.cmfs.disk import DiskModel
from repro.session.datapath import StreamDemand, simulate_rounds
from repro.util.errors import SimulationError


def demand(stream_id="s1", avg=4e6, peak=8e6, prebuffer=1.0):
    return StreamDemand(
        stream_id=stream_id, avg_bps=avg, max_bps=peak, prebuffer_s=prebuffer
    )


class TestStreamDemand:
    def test_peak_below_avg_rejected(self):
        with pytest.raises(SimulationError):
            StreamDemand("s", avg_bps=2e6, max_bps=1e6)


class TestFeasibleLoad:
    def test_admitted_load_is_smooth(self):
        disk = DiskModel()
        n = disk.max_streams_at_rate(8e6)  # worst-case admissible at peak
        demands = [demand(f"s{i}") for i in range(n)]
        reports = simulate_rounds(disk, demands, 120.0, rng=1)
        for report in reports.values():
            assert report.smooth, report
            assert report.infeasible_rounds == 0

    def test_delivery_tracks_demand(self):
        disk = DiskModel()
        reports = simulate_rounds(disk, [demand()], 120.0, rng=1)
        report = reports["s1"]
        # Delivered roughly avg_bps x duration (VBR noise averages out).
        assert report.delivered_bits == pytest.approx(4e6 * 120.0, rel=0.1)

    def test_deterministic_with_seed(self):
        disk = DiskModel()
        a = simulate_rounds(disk, [demand()], 60.0, rng=9)["s1"]
        b = simulate_rounds(disk, [demand()], 60.0, rng=9)["s1"]
        assert a.delivered_bits == b.delivered_bits
        assert a.stall_s == b.stall_s


class TestOverload:
    def test_oversubscription_stalls(self):
        disk = DiskModel()
        n = disk.max_streams_at_rate(6e6)
        demands = [demand(f"s{i}", avg=6e6, peak=9e6) for i in range(2 * n)]
        reports = simulate_rounds(disk, demands, 120.0, rng=1)
        stalled = [r for r in reports.values() if r.stall_s > 0]
        assert len(stalled) == len(demands)  # everyone suffers
        assert all(r.infeasible_rounds > 0 for r in reports.values())

    def test_stall_grows_with_overload(self):
        disk = DiskModel()
        def total_stall(count):
            demands = [demand(f"s{i}", avg=6e6, peak=9e6) for i in range(count)]
            reports = simulate_rounds(disk, demands, 60.0, rng=1)
            return sum(r.stall_s for r in reports.values())

        n = disk.max_streams_at_rate(6e6)
        assert total_stall(n) <= total_stall(2 * n) <= total_stall(3 * n)
        assert total_stall(3 * n) > 0


class TestValidation:
    def test_empty_demands_rejected(self):
        with pytest.raises(SimulationError):
            simulate_rounds(DiskModel(), [], 10.0)

    def test_bad_spread_rejected(self):
        with pytest.raises(SimulationError):
            simulate_rounds(DiskModel(), [demand()], 10.0, vbr_spread=1.5)

    def test_prebuffer_delays_consumption(self):
        disk = DiskModel()
        long_pre = simulate_rounds(
            disk, [demand(prebuffer=10.0)], 30.0, rng=1
        )["s1"]
        short_pre = simulate_rounds(
            disk, [demand(prebuffer=0.5)], 30.0, rng=1
        )["s1"]
        assert long_pre.consumed_bits < short_pre.consumed_bits
