"""Congestion injection: scripted and random episodes."""

import pytest

from repro.session.engine import EventLoop
from repro.session.violations import (
    CongestionEpisode,
    RandomInjector,
    ScriptedInjector,
)
from repro.util.errors import SimulationError


class TestCongestionEpisode:
    def test_validation(self):
        with pytest.raises(SimulationError):
            CongestionEpisode("disk", "x", 0.0, 1.0, 0.5)
        with pytest.raises(Exception):
            CongestionEpisode("link", "x", 0.0, 0.0, 0.5)
        with pytest.raises(Exception):
            CongestionEpisode("link", "x", 0.0, 1.0, 1.5)


class TestScriptedInjector:
    def test_applies_and_clears(self, topology, servers, loop):
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("link", "L-a", 5.0, 10.0, 0.8)],
        )
        injector.arm(loop)
        loop.run_until(6.0)
        assert topology.link("L-a").congestion == pytest.approx(0.8)
        loop.run_until(16.0)
        assert topology.link("L-a").congestion == 0.0
        assert len(injector.applied) == 1
        assert len(injector.cleared) == 1

    def test_server_episodes(self, topology, servers, loop):
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("server", "server-a", 1.0, 2.0, 0.6)],
        )
        injector.arm(loop)
        loop.run_until(1.5)
        assert servers["server-a"].degradation == pytest.approx(0.6)
        loop.run()
        assert servers["server-a"].degradation == 0.0

    def test_overlapping_episodes_compose_by_max(self, topology, servers, loop):
        injector = ScriptedInjector(
            topology, servers,
            [
                CongestionEpisode("link", "L-a", 0.0, 10.0, 0.5),
                CongestionEpisode("link", "L-a", 2.0, 4.0, 0.9),
            ],
        )
        injector.arm(loop)
        loop.run_until(3.0)
        assert topology.link("L-a").congestion == pytest.approx(0.9)
        loop.run_until(7.0)
        # Second episode ended; first still active.
        assert topology.link("L-a").congestion == pytest.approx(0.5)
        loop.run()
        assert topology.link("L-a").congestion == 0.0

    def test_unknown_server_rejected(self, topology, servers, loop):
        injector = ScriptedInjector(
            topology, servers,
            [CongestionEpisode("server", "server-zz", 1.0, 2.0, 0.6)],
        )
        injector.arm(loop)
        with pytest.raises(SimulationError):
            loop.run()


class TestRandomInjector:
    def test_reproducible(self, topology, servers):
        a = RandomInjector(
            topology, servers, rate_per_s=0.1, horizon_s=100.0, rng=5
        )
        b = RandomInjector(
            topology, servers, rate_per_s=0.1, horizon_s=100.0, rng=5
        )
        assert a.episodes == b.episodes

    def test_episodes_within_horizon(self, topology, servers):
        injector = RandomInjector(
            topology, servers, rate_per_s=0.5, horizon_s=50.0, rng=5
        )
        assert all(e.start_s < 50.0 for e in injector.episodes)

    def test_severity_range_respected(self, topology, servers):
        injector = RandomInjector(
            topology, servers, rate_per_s=0.5, horizon_s=100.0,
            severity_range=(0.3, 0.4), rng=5,
        )
        assert all(0.3 <= e.severity <= 0.4 for e in injector.episodes)

    def test_invalid_severity_range(self, topology, servers):
        with pytest.raises(SimulationError):
            RandomInjector(
                topology, servers, rate_per_s=0.5, horizon_s=10.0,
                severity_range=(0.8, 0.2), rng=5,
            )
