"""Vectorized classification ≡ scalar reference on random offer spaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.machine import ClientMachine
from repro.core.classification import (
    ClassificationPolicy,
    classify_offers,
    classify_space,
)
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.profiles import MMProfile, UserProfile
from repro.documents.document import Document
from repro.documents.media import ColorMode
from repro.documents.monomedia import Monomedia
from repro.documents.quality import VideoQoS

from .strategies import video_variants


@st.composite
def random_spaces(draw):
    """A 1–3 monomedia document with 1–4 MPEG video variants each."""
    components = []
    n_components = draw(st.integers(min_value=1, max_value=3))
    for c in range(n_components):
        monomedia_id = f"m{c}.video"
        count = draw(st.integers(min_value=1, max_value=4))
        variants = tuple(
            draw(video_variants(monomedia_id=monomedia_id, index=i))
            for i in range(count)
        )
        components.append(
            Monomedia(
                monomedia_id=monomedia_id,
                medium="video",
                title=f"clip {c}",
                duration_s=max(v.duration_s for v in variants),
                variants=variants,
            )
        )
    document = Document(
        document_id="doc.prop",
        title="prop",
        components=tuple(components),
    )
    client = ClientMachine("c", access_point="net")
    return build_offer_space(document, client, default_cost_model())


@st.composite
def random_profiles(draw):
    worst = VideoQoS(
        color=ColorMode(draw(st.integers(min_value=0, max_value=3))),
        frame_rate=draw(st.integers(min_value=1, max_value=60)),
        resolution=draw(st.integers(min_value=10, max_value=1920)),
    )
    desired = VideoQoS(
        color=ColorMode(draw(st.integers(min_value=int(worst.color), max_value=3))),
        frame_rate=draw(st.integers(min_value=worst.frame_rate, max_value=60)),
        resolution=draw(st.integers(min_value=worst.resolution, max_value=1920)),
    )
    cost = draw(st.integers(min_value=0, max_value=5_000)) / 100
    return UserProfile(
        name="prop",
        desired=MMProfile(video=desired, cost=cost),
        worst=MMProfile(video=worst, cost=cost),
        importance=default_importance(),
    )


class TestVectorizedEquivalence:
    @given(
        random_spaces(),
        random_profiles(),
        st.sampled_from(list(ClassificationPolicy)),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_scalar(self, space, profile, policy):
        importance = default_importance()
        vectorized = classify_space(space, profile, importance, policy=policy)
        scalar = classify_offers(
            space.materialize(), profile, importance, policy=policy
        )
        assert len(vectorized) == len(scalar)
        for v, s in zip(vectorized, scalar):
            assert v.offer.variant_ids == s.offer.variant_ids
            assert v.sns == s.sns
            assert v.oif == pytest.approx(s.oif, abs=1e-9)
            assert v.affordable == s.affordable
