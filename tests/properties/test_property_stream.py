"""Best-first streaming ≡ full classification on random offer spaces.

The heap-based stream must reproduce ``classify_space``'s order *exactly*
— same offer ids, same SNS levels, bit-identical OIF values — for every
policy, on arbitrary documents and profiles, ties included.  This is
what lets steps 3–5 consume the stream in place of the full sort.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.machine import ClientMachine
from repro.core.classification import ClassificationPolicy, classify_space
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.stream import stream_classified
from repro.documents.document import Document
from repro.documents.monomedia import Monomedia

from .strategies import video_variants


@st.composite
def random_spaces(draw):
    """A 1–3 monomedia document with 1–4 MPEG video variants each."""
    components = []
    n_components = draw(st.integers(min_value=1, max_value=3))
    for c in range(n_components):
        monomedia_id = f"m{c}.video"
        count = draw(st.integers(min_value=1, max_value=4))
        variants = tuple(
            draw(video_variants(monomedia_id=monomedia_id, index=i))
            for i in range(count)
        )
        components.append(
            Monomedia(
                monomedia_id=monomedia_id,
                medium="video",
                title=f"clip {c}",
                duration_s=max(v.duration_s for v in variants),
                variants=variants,
            )
        )
    document = Document(
        document_id="doc.prop",
        title="prop",
        components=tuple(components),
    )
    client = ClientMachine("c", access_point="net")
    return build_offer_space(document, client, default_cost_model())


def random_profiles():
    from .test_property_vectorized import random_profiles as base

    return base()


class TestStreamEquivalence:
    @given(
        random_spaces(),
        random_profiles(),
        st.sampled_from(list(ClassificationPolicy)),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_matches_full_sort(self, space, profile, policy):
        importance = default_importance()
        streamed = list(
            stream_classified(space, profile, importance, policy=policy)
        )
        full = classify_space(space, profile, importance, policy=policy)
        assert len(streamed) == len(full) == space.offer_count
        for s, f in zip(streamed, full):
            assert s.offer.offer_id == f.offer.offer_id
            assert s.sns is f.sns
            assert s.affordable == f.affordable
            assert s.oif == f.oif  # bit-identical, not approx

    @given(random_spaces(), random_profiles())
    @settings(max_examples=30, deadline=None)
    def test_tie_determinism(self, space, profile):
        """Equal-OIF runs must stay in enumeration order on both paths
        — run the stream twice to rule out heap-order nondeterminism."""
        importance = default_importance().with_cost_per_dollar(0.0)
        first = [
            c.offer.offer_id
            for c in stream_classified(space, profile, importance)
        ]
        second = [
            c.offer.offer_id
            for c in stream_classified(space, profile, importance)
        ]
        full = [
            c.offer.offer_id
            for c in classify_space(space, profile, importance)
        ]
        assert first == second == full


class TestNegotiationEquivalence:
    """End to end: every offer_mode commits the same offer with the same
    status and attempt count, with and without offer_bonus preferences
    (which force the streaming path to fall back to the full sort)."""

    @given(
        random_profiles(),
        st.booleans(),
        st.sampled_from(list(ClassificationPolicy)),
    )
    @settings(max_examples=25, deadline=None)
    def test_modes_agree(self, profile, biased, policy):
        from dataclasses import replace

        from repro.core.preferences import UserPreferences
        from repro.sim import ScenarioSpec, build_scenario

        if biased:
            profile = replace(
                profile,
                preferences=UserPreferences(
                    server_preference={"server-a": 0.25}
                ),
            )
        signatures = []
        for offer_mode, use_cache in (
            ("full", False), ("stream", False), ("auto", True),
        ):
            scenario = build_scenario(
                ScenarioSpec(document_count=1),
                policy=policy,
                offer_mode=offer_mode,
                use_cache=use_cache,
            )
            result = scenario.manager.negotiate(
                scenario.document_ids()[0],
                profile,
                scenario.any_client(),
            )
            signatures.append(
                (
                    result.status,
                    result.chosen.offer.offer_id if result.chosen else None,
                    result.attempts,
                )
            )
            if result.commitment is not None:
                result.commitment.release()
        assert signatures[0] == signatures[1] == signatures[2]
