"""Fingerprint laws, property-tested.

A cache key fingerprint has two obligations, and violating either is a
correctness bug — one direction causes false sharing (wrong offers
served from another input's entry), the other silent cache misses:

* **structural soundness** — structurally equal inputs always share a
  fingerprint, no matter where the objects were built;
* **state sensitivity** — any change to classification-relevant state
  changes the fingerprint, while identity-only attributes (client id,
  access point, profile name) never do.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.machine import ClientMachine
from repro.core.mapping import QoSMapper
from repro.core.profile_manager import make_profile, standard_profiles
from repro.documents.media import ColorMode
from repro.documents.quality import VideoQoS
from repro.perf.fingerprint import (
    client_fingerprint,
    digest,
    mapper_fingerprint,
    profile_fingerprint,
)
from .strategies import video_qos

PROFILES = standard_profiles()

names = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1,
    max_size=12,
)
identities = st.tuples(names, names)
capabilities = st.fixed_dictionaries(
    {
        "screen_width": st.integers(min_value=320, max_value=1920),
        "screen_height": st.integers(min_value=240, max_value=1080),
        "screen_color": st.sampled_from(list(ColorMode)),
        "max_frame_rate": st.integers(min_value=1, max_value=60),
        "audio_output": st.booleans(),
        "interface_bps": st.floats(min_value=1e6, max_value=1e9),
    }
)
mapper_params = st.fixed_dictionaries(
    {
        "discrete_window_s": st.floats(min_value=0.1, max_value=30.0),
        "rate_scale": st.floats(min_value=0.1, max_value=4.0),
    }
)


class TestClientFingerprint:
    @given(capabilities, identities, identities)
    @settings(max_examples=50, deadline=None)
    def test_identity_never_enters(self, caps, first, second):
        one = ClientMachine(first[0], access_point=first[1], **caps)
        two = ClientMachine(second[0], access_point=second[1], **caps)
        assert client_fingerprint(one) == client_fingerprint(two)

    @given(capabilities, capabilities)
    @settings(max_examples=50, deadline=None)
    def test_capability_changes_split(self, caps, other_caps):
        one = ClientMachine("a", **caps)
        two = ClientMachine("b", **other_caps)
        same = caps == other_caps
        assert (client_fingerprint(one) == client_fingerprint(two)) == same


class TestMapperFingerprint:
    @given(mapper_params, mapper_params)
    @settings(max_examples=50, deadline=None)
    def test_equal_iff_structurally_equal(self, params, other_params):
        one, two = QoSMapper(**params), QoSMapper(**other_params)
        assert (mapper_fingerprint(one) == mapper_fingerprint(two)) == (
            one == two
        )


class TestProfileFingerprint:
    @given(st.sampled_from(PROFILES), names)
    @settings(max_examples=25, deadline=None)
    def test_name_never_enters(self, profile, name):
        assert profile_fingerprint(
            replace(profile, name=name)
        ) == profile_fingerprint(profile)

    @given(video_qos, video_qos)
    @settings(max_examples=50, deadline=None)
    def test_qos_bounds_split(self, desired, other_desired):
        worst = VideoQoS(
            color=ColorMode.BLACK_AND_WHITE, frame_rate=1, resolution=10
        )
        one = make_profile("p", desired_video=desired, worst_video=worst)
        two = make_profile("p", desired_video=other_desired, worst_video=worst)
        assert (
            profile_fingerprint(one) == profile_fingerprint(two)
        ) == (desired == other_desired)

    @given(st.sampled_from(PROFILES))
    @settings(max_examples=10, deadline=None)
    def test_rebuilt_standard_profiles_share(self, profile):
        rebuilt = next(
            p for p in standard_profiles() if p.name == profile.name
        )
        assert rebuilt is not profile
        assert profile_fingerprint(rebuilt) == profile_fingerprint(profile)


class TestDigest:
    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_and_fixed_width(self, payload):
        assert digest(payload) == digest(payload)
        assert len(digest(payload)) == 16
