"""The batch engine's equivalence contract, property-tested.

For ANY mix of requests — documents, profiles, clients, offer modes,
walk bounds, duplicates, singletons — ``negotiate_batch`` on one
deployment must produce the same per-request ``(status, offer id,
attempts)`` sequence as the plain sequential procedure on a twin
deployment, with and without the shared cache.  This is the
randomized version of the bench's equivalence gate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchRequest, negotiate_batch
from repro.core.profile_manager import standard_profiles
from repro.sim import ScenarioSpec, build_scenario

PROFILES = standard_profiles()
SPEC = ScenarioSpec(server_count=2, client_count=2, document_count=2)

# One request = (document index, profile index, client index, mode
# index, max-offers index).  Indexes keep the strategy shrinkable and
# are resolved against the concrete deployment inside the test.
MODES = (None, "full", "stream")
MAX_OFFERS = (None, 1, 3)

requests_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=len(PROFILES) - 1),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=len(MODES) - 1),
        st.integers(min_value=0, max_value=len(MAX_OFFERS) - 1),
    ),
    min_size=1,
    max_size=12,
)


def signature(result):
    return (
        result.status.name,
        result.chosen.offer.offer_id if result.chosen else None,
        result.attempts,
    )


def resolve(scenario, script):
    documents = scenario.document_ids()
    clients = list(scenario.clients.values())
    return [
        BatchRequest(
            document=documents[d],
            profile=PROFILES[p],
            client=clients[c],
            offer_mode=MODES[m],
            max_offers=MAX_OFFERS[k],
        )
        for d, p, c, m, k in script
    ]


def run_sequential(scenario, script, release):
    signatures = []
    for request in resolve(scenario, script):
        result = scenario.manager.negotiate(
            request.document,
            request.profile,
            request.client,
            offer_mode=request.offer_mode,
            max_offers=request.max_offers,
        )
        signatures.append(signature(result))
        if release and result.commitment is not None:
            result.commitment.release()
    return signatures


def run_batched(scenario, script, release):
    def after_each(request, result):
        if release and result.commitment is not None:
            result.commitment.release()

    results = negotiate_batch(
        scenario.manager, resolve(scenario, script), after_each=after_each
    )
    return [signature(result) for result in results]


class TestBatchedEqualsSequential:
    @given(requests_strategy, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_equivalence_without_cache(self, script, release):
        sequential = build_scenario(SPEC)
        batched = build_scenario(SPEC)
        assert run_batched(batched, script, release) == run_sequential(
            sequential, script, release
        )

    @given(requests_strategy, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_equivalence_with_shared_cache(self, script, release):
        """The cached batch path — preseeded SoA classifications and
        all — must still match the cold sequential procedure."""
        sequential = build_scenario(SPEC)
        batched = build_scenario(SPEC, use_cache=True)
        assert run_batched(batched, script, release) == run_sequential(
            sequential, script, release
        )

    @given(requests_strategy)
    @settings(max_examples=10, deadline=None)
    def test_batching_is_idempotent_across_twins(self, script):
        """Two identical batched deployments agree with each other —
        the engine has no hidden per-process state."""
        first = build_scenario(SPEC, use_cache=True)
        second = build_scenario(SPEC, use_cache=True)
        assert run_batched(first, script, True) == run_batched(
            second, script, True
        )
