"""Shared hypothesis strategies for the property suites."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.documents.media import (
    AudioGrade,
    Codecs,
    ColorMode,
    Language,
)
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import AudioQoS, ImageQoS, TextQoS, VideoQoS
from repro.util.units import Money

color_modes = st.sampled_from(list(ColorMode))
audio_grades = st.sampled_from(list(AudioGrade))
languages = st.sampled_from(list(Language))
frame_rates = st.integers(min_value=1, max_value=60)
resolutions = st.integers(min_value=10, max_value=1920)

video_qos = st.builds(
    VideoQoS, color=color_modes, frame_rate=frame_rates, resolution=resolutions
)
audio_qos = st.builds(AudioQoS, grade=audio_grades, language=languages)
image_qos = st.builds(ImageQoS, color=color_modes, resolution=resolutions)
text_qos = st.builds(TextQoS, language=languages)
any_qos = st.one_of(video_qos, audio_qos, image_qos, text_qos)

money = st.integers(min_value=0, max_value=100_000).map(Money)
signed_money = st.integers(min_value=-100_000, max_value=100_000).map(Money)


@st.composite
def block_stats(draw, continuous: bool = True):
    avg = draw(st.floats(min_value=1e3, max_value=1e6, allow_nan=False))
    burst = draw(st.floats(min_value=1.0, max_value=5.0, allow_nan=False))
    rate = draw(st.floats(min_value=1.0, max_value=60.0)) if continuous else 0.0
    return BlockStats(
        max_block_bits=avg * burst, avg_block_bits=avg, blocks_per_second=rate
    )


@st.composite
def video_variants(draw, monomedia_id: str = "m.v", index: int | None = None):
    qos = draw(video_qos)
    stats = draw(block_stats())
    name = draw(st.integers(min_value=0, max_value=10**6)) if index is None else index
    return Variant(
        variant_id=f"{monomedia_id}.v{name}",
        monomedia_id=monomedia_id,
        codec=draw(st.sampled_from([Codecs.MPEG1, Codecs.MPEG2])),
        qos=qos,
        size_bits=draw(st.floats(min_value=1e6, max_value=1e10)),
        block_stats=stats,
        server_id=draw(st.sampled_from(["server-a", "server-b", "server-c"])),
        duration_s=draw(st.floats(min_value=1.0, max_value=600.0)),
    )
