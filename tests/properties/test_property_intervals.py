"""Interval-ledger properties: sweep-line peak equals brute force, and
booked capacity is never exceeded at any instant."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reservations.interval import IntervalLedger
from repro.util.errors import CapacityError

windows = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=6.0, allow_nan=False),
)


def brute_force_peak(bookings, start, end, resolution=997):
    """Sampled peak (dense grid plus every endpoint)."""
    points = set(np.linspace(start, end, resolution))
    for b in bookings:
        for t in (b.start_s, b.end_s):
            if start <= t < end:
                points.add(t)
    peak = 0.0
    for t in sorted(points):
        if not (start <= t < end):
            continue
        level = sum(b.amount for b in bookings if b.start_s <= t < b.end_s)
        peak = max(peak, level)
    return peak


class TestLedgerProperties:
    @given(st.lists(windows, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_peak_matches_brute_force(self, specs):
        ledger = IntervalLedger("L", 10.0)
        for start, length, amount in specs:
            try:
                ledger.book(start, start + length, amount, "h")
            except CapacityError:
                pass
        peak = ledger.peak_usage(0.0, 200.0)
        expected = brute_force_peak(ledger.bookings(), 0.0, 200.0)
        assert abs(peak - expected) < 1e-6

    @given(st.lists(windows, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, specs):
        ledger = IntervalLedger("L", 10.0)
        for start, length, amount in specs:
            try:
                ledger.book(start, start + length, amount, "h")
            except CapacityError:
                pass
        for booking in ledger.bookings():
            midpoint = (booking.start_s + booking.end_s) / 2
            assert ledger.usage_at(midpoint) <= ledger.capacity + 1e-6

    @given(st.lists(windows, min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_release_restores_availability(self, specs):
        ledger = IntervalLedger("L", 10.0)
        taken = []
        for start, length, amount in specs:
            try:
                taken.append(ledger.book(start, start + length, amount, "h"))
            except CapacityError:
                pass
        for booking in taken:
            ledger.release(booking)
        assert ledger.available(0.0, 200.0) == ledger.capacity
