"""Crash-safety properties: a manager crash at *any* point of steps 5–6
leaks nothing, and the torn-tail reader always recovers the intact
prefix of the journal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.journal import (
    JournalRecord,
    JournalRecordType,
    read_journal_bytes,
)
from repro.sim import ChaosSpec, CrashRecoverySpec, run_chaos, run_crash_recovery


def assert_nothing_reserved(scenario):
    assert scenario.transport.flow_count == 0
    assert sum(s.stream_count for s in scenario.servers.values()) == 0
    assert scenario.topology.total_reserved_bps() == 0.0


@settings(max_examples=20, deadline=None)
@given(crash_opportunity=st.integers(1, 48), seed=st.integers(0, 3))
def test_crash_anywhere_is_leak_free(crash_opportunity, seed):
    report, scenario = run_crash_recovery(
        CrashRecoverySpec(crash_opportunity=crash_opportunity, seed=seed)
    )
    if report.crashed:
        assert report.recovery is not None
        assert report.recovery.leak_free
    # After the post-recovery drain nothing may stay reserved anywhere,
    # whether or not the crash opportunity was ever reached.
    assert_nothing_reserved(scenario)
    # Every holder's journal timeline ends closed: confirmed sessions
    # tore down after playout, pending ones expired, orphans were
    # compensated — no timeline is left dangling.
    journal = scenario.manager.committer.journal
    assert len(journal) == 0 or journal.records()[-1].sequence == len(journal)
    for timeline in journal.by_holder().values():
        assert timeline[-1].is_terminal


@settings(max_examples=10, deadline=None)
@given(crash_opportunity=st.integers(1, 60), seed=st.integers(0, 2))
def test_chaos_with_manager_crash_tears_down_clean(crash_opportunity, seed):
    plan = FaultPlan(
        faults=(
            FaultSpec(
                kind=FaultKind.MANAGER_CRASH,
                target_id="manager",
                value=float(crash_opportunity),
            ),
        ),
        seed=seed,
    )
    report, scenario = run_chaos(ChaosSpec(plan=plan, seed=seed))
    assert report.clean_teardown
    assert_nothing_reserved(scenario)
    if report.manager_crashes:
        assert report.recoveries == report.manager_crashes


def test_crash_recovery_is_deterministic():
    spec = CrashRecoverySpec(crash_opportunity=20, seed=7)
    first, _ = run_crash_recovery(spec)
    second, _ = run_crash_recovery(spec)
    assert first.journal_timeline == second.journal_timeline
    assert first.crash_time_s == second.crash_time_s
    assert first.preserved_holders == second.preserved_holders


def sample_journal_bytes():
    records = []
    t = 0.0
    for seq, (record_type, holder) in enumerate(
        [
            (JournalRecordType.INTENT, "s1"),
            (JournalRecordType.RESERVED, "s1"),
            (JournalRecordType.CONFIRMED, "s1"),
            (JournalRecordType.INTENT, "s2"),
            (JournalRecordType.RESERVED, "s2"),
            (JournalRecordType.EXPIRED, "s2"),
            (JournalRecordType.RELEASED, "s1"),
        ],
        start=1,
    ):
        records.append(
            JournalRecord(
                sequence=seq,
                record_type=record_type,
                holder=holder,
                timestamp=t,
                payload={"offer_id": f"offer-{seq}"},
            )
        )
        t += 2.5
    data = b"".join(r.to_line().encode() + b"\n" for r in records)
    return records, data


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=0, max_value=2048))
def test_torn_tail_reader_recovers_the_intact_prefix(cut):
    records, data = sample_journal_bytes()
    cut = min(cut, len(data))
    torn_data = data[: len(data) - cut]

    parsed, clean_length, torn = read_journal_bytes(torn_data)

    # The clean prefix is exactly the records whose full line survived
    # (a final record that only lost its newline is still complete).
    expected = []
    offset = 0
    for record in records:
        line_length = len(record.to_line().encode())
        if offset + line_length <= len(torn_data):
            expected.append(record)
            offset += line_length + 1
        else:
            break
    assert parsed == expected
    assert clean_length <= len(torn_data)
    assert torn in (0, 1)
    # Truncating to the reported clean prefix then re-reading is stable.
    reparsed, reclean, retorn = read_journal_bytes(torn_data[:clean_length])
    assert reparsed == parsed
    assert retorn == 0
