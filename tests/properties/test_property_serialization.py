"""Round-trip properties of the metadata persistence layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.document import Document
from repro.documents.monomedia import Monomedia
from repro.metadata.database import MetadataDatabase
from repro.metadata.persistence import dumps, loads
from repro.metadata.schema import qos_from_record, qos_to_record

from .strategies import any_qos, video_variants


@st.composite
def documents(draw):
    doc_index = draw(st.integers(min_value=0, max_value=10**6))
    monomedia_id = f"doc{doc_index}.video"
    count = draw(st.integers(min_value=1, max_value=5))
    variants = tuple(
        draw(video_variants(monomedia_id=monomedia_id, index=i))
        for i in range(count)
    )
    duration = max(v.duration_s for v in variants)
    component = Monomedia(
        monomedia_id=monomedia_id,
        medium="video",
        title="clip",
        duration_s=duration,
        variants=variants,
    )
    return Document(
        document_id=f"doc{doc_index}",
        title=draw(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF),
                min_size=1,
                max_size=20,
            ).filter(str.strip)
        ),
        components=(component,),
        copyright_cost=draw(st.integers(min_value=0, max_value=10_000)) / 100,
    )


class TestQoSRoundtrip:
    @given(any_qos)
    def test_qos_record_roundtrip(self, qos):
        assert qos_from_record(qos_to_record(qos)) == qos


class TestDatabaseRoundtrip:
    @given(documents())
    @settings(max_examples=30, deadline=None)
    def test_document_roundtrip(self, document):
        db = MetadataDatabase()
        db.insert_document(document)
        restored = loads(dumps(db))
        assert restored.get_document(document.document_id) == document

    @given(st.lists(documents(), min_size=1, max_size=3, unique_by=lambda d: d.document_id))
    @settings(max_examples=20, deadline=None)
    def test_multi_document_roundtrip(self, docs):
        db = MetadataDatabase()
        seen_monomedia = set()
        inserted = []
        for document in docs:
            ids = set(document.monomedia_ids)
            if ids & seen_monomedia:
                continue
            seen_monomedia |= ids
            db.insert_document(document)
            inserted.append(document)
        restored = loads(dumps(db))
        assert restored.document_count == len(inserted)
        for document in inserted:
            assert restored.get_document(document.document_id) == document
