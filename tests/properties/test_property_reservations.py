"""Conservation properties of the reservation substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmfs.server import MediaServer
from repro.network.link import Link
from repro.network.qosparams import FlowSpec
from repro.network.topology import Topology
from repro.network.transport import TransportSystem
from repro.util.errors import AdmissionError, CapacityError


class TestLinkConservation:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["reserve", "release"]),
                st.floats(min_value=1e3, max_value=5e6, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_reserved_equals_sum_of_active(self, operations):
        link = Link("L", "a", "b", 10e6)
        active = []
        for op, rate in operations:
            if op == "reserve":
                try:
                    active.append(link.reserve(rate, holder="h"))
                except CapacityError:
                    pass
            elif active:
                link.release(active.pop())
        assert link.reserved_bps <= link.capacity_bps + 1e-6
        expected = sum(r.bit_rate for r in active)
        assert abs(link.reserved_bps - expected) < 1e-6
        for reservation in list(active):
            link.release(reservation)
        assert link.reserved_bps == 0.0


class TestTransportConservation:
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_flows_and_links_agree(self, script):
        topo = Topology()
        topo.connect("s", "m", 30e6, link_id="L1")
        topo.connect("m", "c", 30e6, link_id="L2")
        transport = TransportSystem(topo)
        spec = FlowSpec(4e6, 2e6, 0.25, 0.02, 0.05)
        flows = []
        for do_reserve in script:
            if do_reserve:
                try:
                    flows.append(transport.reserve("s", "c", spec))
                except CapacityError:
                    pass
            elif flows:
                transport.release(flows.pop())
            # Invariant: every link carries exactly flow_count x rate.
            expected = len(flows) * 4e6
            assert abs(topo.link("L1").reserved_bps - expected) < 1e-3
            assert abs(topo.link("L2").reserved_bps - expected) < 1e-3
        transport.release_all()
        assert topo.total_reserved_bps() == 0.0


class TestServerConservation:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.floats(min_value=1e5, max_value=10e6, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_aggregate_rate_matches_streams(self, script):
        server = MediaServer("s")
        active = []
        for admit, rate in script:
            if admit:
                try:
                    active.append(server.admit("v", rate))
                except AdmissionError:
                    pass
            elif active:
                server.release(active.pop())
            expected = sum(r.rate_bps for r in active)
            assert abs(server.aggregate_rate_bps - expected) < 1e-3
            assert server.scheduler.stream_count == len(active)
        # Admission invariant: what was admitted is always feasible.
        assert server.disk.round_feasibility(server.stream_rates()).feasible
