"""Advance-booking conservation under random book/claim/cancel scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile_manager import standard_profiles
from repro.reservations.advance import AdvanceBookingPlan, AdvanceNegotiator
from repro.sim.scenario import ScenarioSpec, build_scenario

PROFILES = standard_profiles()

scripts = st.lists(
    st.tuples(
        st.sampled_from(["book", "cancel", "claim"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=25,
)


class TestAdvanceConservation:
    @given(scripts)
    @settings(max_examples=20, deadline=None)
    def test_ledgers_balance(self, script):
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=1, document_count=2)
        )
        advance = AdvanceNegotiator(scenario.manager)
        client = scenario.any_client()
        plans: list[AdvanceBookingPlan] = []
        live = []

        for action, arg in script:
            if action == "book":
                profile = PROFILES[arg % len(PROFILES)]
                plan = advance.negotiate_advance(
                    scenario.document_ids()[arg % 2],
                    profile,
                    client,
                    start_s=float((arg % 4) * 500),
                )
                if isinstance(plan, AdvanceBookingPlan):
                    plans.append(plan)
            elif action == "cancel" and plans:
                advance.cancel(plans.pop(arg % len(plans)))
            elif action == "claim" and plans:
                plan = plans.pop(arg % len(plans))
                profile = PROFILES[arg % len(PROFILES)]
                result = advance.claim(plan, profile, client)
                if result.commitment is not None:
                    live.append(result)

            # Invariant: total booked amount equals the active plans'
            # bookings, no more.
            total_bookings = sum(
                len(ledger) for ledger in advance.planner.ledgers()
            )
            expected = sum(len(plan.bookings) for plan in plans)
            assert total_bookings == expected

        # Teardown: everything returns to zero.
        for plan in plans:
            advance.cancel(plan)
        for result in live:
            result.commitment.release()
        assert all(len(l) == 0 for l in advance.planner.ledgers())
        assert scenario.transport.flow_count == 0

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_booked_never_exceeds_capacity(self, seed):
        scenario = build_scenario(
            ScenarioSpec(server_count=1, client_count=1, document_count=1)
        )
        advance = AdvanceNegotiator(scenario.manager)
        client = scenario.any_client()
        profile = PROFILES[seed % len(PROFILES)]
        window = float((seed % 3) * 1000)
        plans = []
        while True:
            plan = advance.negotiate_advance(
                scenario.document_ids()[0], profile, client, start_s=window
            )
            if not isinstance(plan, AdvanceBookingPlan):
                break
            plans.append(plan)
            assert len(plans) < 200
        for ledger in advance.planner.ledgers():
            assert (
                ledger.peak_usage(window, window + 1000)
                <= ledger.capacity + 1e-6
            )
        for plan in plans:
            advance.cancel(plan)
