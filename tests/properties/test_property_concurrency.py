"""Concurrency properties of the negotiation service.

The scheduler seed changes *who runs when* — and nothing else that
matters: whatever the interleaving, every request gets one honest
verdict, the ledgers end empty, the journal reconciles balanced, and
the outcome multiset of a fixed workload is invariant.  A contended
deployment (one server, ten near-simultaneous identical requests, four
of which can fit) makes the invariance nontrivial: *which* negotiation
wins a slot depends on the interleaving, but *how many* never does.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProfileManager
from repro.journal import ReservationJournal
from repro.service import NegotiationService, ServicePolicy
from repro.sim import ScenarioSpec, build_scenario
from repro.telemetry.report import reconcile_journal

scheduler_seeds = st.integers(min_value=0, max_value=200)


def run_service(
    scheduler_seed, *, count=10, spacing_s=0.05, hold_s=30.0
):
    """A fixed contended workload under one scheduler seed.

    User behaviour is neutral (no jitter, no slow users, no rejects),
    so the seed steers the interleaving alone."""
    journal = ReservationJournal()
    scenario = build_scenario(
        ScenarioSpec(server_count=1, client_count=3, document_count=1),
        journal=journal,
    )
    policy = ServicePolicy(
        hold_s=hold_s,
        max_offers=2,
        confirm_jitter=0.0,
        slow_user_fraction=0.0,
        reject_fraction=0.0,
    )
    service = NegotiationService(
        scenario.manager,
        scenario.loop,
        policy=policy,
        scheduler_seed=scheduler_seed,
    )
    profile = ProfileManager().get("balanced")
    clients = list(scenario.clients.values())
    document = scenario.document_ids()[0]
    for index in range(count):
        scenario.loop.at(
            index * spacing_s,
            lambda i=index: service.submit(
                document,
                profile,
                clients[i % len(clients)],
                label=f"p-{i}",
            ),
            label=f"submit-{index}",
        )
    scenario.loop.run()
    return scenario, service, journal


def status_multiset(service):
    return Counter(str(r.status) for r in service.requests)


def per_client_multisets(service):
    grouped = {}
    for request in service.requests:
        grouped.setdefault(request.client_id, []).append(
            str(request.status)
        )
    return {client: sorted(v) for client, v in grouped.items()}


BASELINE = None


def baseline_multiset():
    global BASELINE
    if BASELINE is None:
        _, service, _ = run_service(0)
        BASELINE = status_multiset(service)
    return BASELINE


@settings(max_examples=12, deadline=None)
@given(scheduler_seed=scheduler_seeds)
def test_every_interleaving_is_leak_free_and_honest(scheduler_seed):
    scenario, service, journal = run_service(scheduler_seed)
    # Every request got exactly one verdict — no starved client.
    assert service.unfinished() == []
    assert service.inflight == 0
    # The write-ahead journal reconciles: every RESERVED holder ends on
    # a terminal record.
    assert reconcile_journal(journal)["balanced"]
    # The final ledger state is empty — nothing outlives its session.
    assert sum(
        s.stream_count for s in scenario.servers.values()
    ) == 0
    assert scenario.transport.flow_count == 0
    assert scenario.topology.total_reserved_bps() == 0.0
    # Every refusal carries an honest, positive retry hint.
    for request in service.requests:
        if str(request.status) == "FAILEDTRYLATER":
            assert request.result.retry_after_s is not None
            assert request.result.retry_after_s > 0.0


@settings(max_examples=12, deadline=None)
@given(scheduler_seed=scheduler_seeds)
def test_outcome_multiset_is_interleaving_invariant(scheduler_seed):
    """Contended capacity: which negotiations win varies with the
    interleaving; how many win (and lose) does not."""
    _, service, _ = run_service(scheduler_seed)
    assert status_multiset(service) == baseline_multiset()
    # The workload genuinely contends — both verdicts occur.
    assert len(baseline_multiset()) >= 2


@settings(max_examples=8, deadline=None)
@given(scheduler_seed=scheduler_seeds)
def test_serialized_arrivals_pin_per_client_outcomes(scheduler_seed):
    """With arrivals spaced far beyond a negotiation's duration, the
    arrival order fully determines each client's outcomes — the
    scheduler seed must not be able to move a verdict between clients."""
    _, service, _ = run_service(scheduler_seed, spacing_s=2.0)
    _, base_service, _ = run_service(0, spacing_s=2.0)
    assert per_client_multisets(service) == per_client_multisets(
        base_service
    )


@settings(max_examples=6, deadline=None)
@given(scheduler_seed=scheduler_seeds)
def test_same_seed_is_byte_deterministic(scheduler_seed):
    _, first, _ = run_service(scheduler_seed)
    _, second, _ = run_service(scheduler_seed)
    assert [
        (r.label, str(r.status), r.finished_at) for r in first.requests
    ] == [
        (r.label, str(r.status), r.finished_at) for r in second.requests
    ]
