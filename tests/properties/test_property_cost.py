"""Properties of the §7 cost model and Money arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import default_cost_model
from repro.network.qosparams import FlowSpec
from repro.network.transport import GuaranteeType
from repro.util.units import Money

from .strategies import signed_money, video_variants

rates = st.floats(min_value=1e3, max_value=150e6, allow_nan=False)


class TestMoneyAlgebra:
    @given(signed_money, signed_money)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(signed_money, signed_money, signed_money)
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(signed_money)
    def test_zero_identity(self, a):
        assert a + Money.zero() == a
        assert a - a == Money.zero()

    @given(signed_money, st.integers(min_value=0, max_value=1000))
    def test_integer_scaling_is_repeated_addition(self, a, n):
        total = Money.zero()
        for _ in range(n):
            total = total + a
        assert a * n == total

    @given(signed_money, signed_money)
    def test_ordering_consistent_with_cents(self, a, b):
        assert (a < b) == (a.cents < b.cents)


class TestCostTableProperties:
    @given(rates, rates)
    def test_network_cost_monotone_in_rate(self, r1, r2):
        model = default_cost_model()
        if r1 > r2:
            r1, r2 = r2, r1
        assert model.network.cost_per_second(r1) <= model.network.cost_per_second(r2)

    @given(rates)
    def test_classify_covers_rate(self, rate):
        model = default_cost_model()
        cls = model.network.classify(rate)
        assert rate <= cls.ceiling_bps


class TestEquationOne:
    @given(video_variants(), rates)
    @settings(max_examples=50)
    def test_guaranteed_never_cheaper_than_best_effort(self, variant, rate):
        model = default_cost_model()
        spec = FlowSpec(
            max_bit_rate=max(rate, 2.0),
            avg_bit_rate=max(rate, 2.0) / 2,
            max_delay_s=0.25, max_jitter_s=0.02, max_loss_rate=0.05,
        )
        guaranteed = model.monomedia_cost(variant, spec, GuaranteeType.GUARANTEED)
        best_effort = model.monomedia_cost(variant, spec, GuaranteeType.BEST_EFFORT)
        assert guaranteed.total >= best_effort.total

    @given(st.lists(video_variants(), min_size=1, max_size=5), signed_money)
    @settings(max_examples=50)
    def test_document_cost_is_sum_of_parts(self, variants, copyright_money):
        model = default_cost_model()
        spec = FlowSpec(2e6, 1e6, 0.25, 0.02, 0.05)
        items = [(v, spec) for v in variants]
        breakdown = model.document_cost(items, copyright_cost=copyright_money)
        total = copyright_money
        for item in breakdown.items:
            total = total + item.network_cost + item.server_cost
        assert breakdown.total == total
        assert len(breakdown.items) == len(variants)

    @given(video_variants())
    @settings(max_examples=50)
    def test_cost_scales_with_duration(self, variant):
        from dataclasses import replace

        model = default_cost_model()
        spec = FlowSpec(2e6, 1e6, 0.25, 0.02, 0.05)
        single = model.monomedia_cost(variant, spec)
        doubled = model.monomedia_cost(
            replace(variant, duration_s=variant.duration_s * 2), spec
        )
        assert doubled.total.cents == pytest.approx(
            2 * single.total.cents, abs=2
        )
