"""End-to-end negotiation invariants under randomized request sequences.

Whatever sequence of negotiate / confirm / reject / release / adapt the
system sees, the resource books must balance: every link's reserved
bandwidth equals the sum of the live flows crossing it, every server's
stream count equals its live sessions' streams, and tearing everything
down returns the deployment to pristine state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.status import NegotiationStatus
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.core.profile_manager import standard_profiles

PROFILES = standard_profiles()

actions = st.lists(
    st.tuples(
        st.sampled_from(["negotiate", "release", "reject", "congest", "heal"]),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=30,
)


class TestNegotiationConservation:
    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_books_balance_under_random_sequences(self, script):
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=2, document_count=2)
        )
        manager = scenario.manager
        client = scenario.any_client()
        held = []

        for action, arg in script:
            if action == "negotiate":
                profile = PROFILES[arg % len(PROFILES)]
                document_id = scenario.document_ids()[
                    arg % len(scenario.document_ids())
                ]
                result = manager.negotiate(document_id, profile, client)
                if result.status.reserves_resources:
                    held.append(result)
            elif action == "release" and held:
                result = held.pop(arg % len(held))
                result.commitment.release()
            elif action == "reject" and held:
                result = held.pop(arg % len(held))
                result.commitment.reject(manager.clock.now())
            elif action == "congest":
                links = scenario.topology.links()
                links[arg % len(links)].set_congestion(0.5)
            elif action == "heal":
                scenario.topology.clear_congestion()

            # Invariant 1: link reservations equal the live flows.
            flows = scenario.transport.flows()
            for link in scenario.topology.links():
                expected = sum(
                    flow.reserved_bps
                    for flow in flows
                    if link in flow.route.links
                )
                assert link.reserved_bps == pytest.approx(expected)
            # Invariant 2: flows per held result are intact.
            assert scenario.transport.flow_count == sum(
                len(result.commitment.bundle.flows) for result in held
            )
            # Invariant 3: admitted streams match held commitments.
            assert sum(
                server.stream_count for server in scenario.servers.values()
            ) == sum(
                len(result.commitment.bundle.streams) for result in held
            )

        for result in held:
            result.commitment.release()
        assert scenario.transport.flow_count == 0
        assert scenario.topology.total_reserved_bps() == 0.0
        assert all(s.stream_count == 0 for s in scenario.servers.values())

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_failed_negotiations_never_leak(self, seed):
        """Saturate the system, then hammer it with requests that must
        all fail: the books must not move at all."""
        scenario = build_scenario(
            ScenarioSpec(server_count=1, client_count=1, document_count=1)
        )
        manager = scenario.manager
        client = scenario.any_client()
        profile = PROFILES[seed % len(PROFILES)]
        held = []
        while True:
            result = manager.negotiate(
                scenario.document_ids()[0], profile, client
            )
            if result.status is NegotiationStatus.FAILED_TRY_LATER:
                break
            held.append(result)
            assert len(held) < 200
        snapshot = scenario.topology.total_reserved_bps()
        for _ in range(5):
            result = manager.negotiate(
                scenario.document_ids()[0], profile, client
            )
            assert result.status is NegotiationStatus.FAILED_TRY_LATER
            assert scenario.topology.total_reserved_bps() == pytest.approx(
                snapshot
            )
        for result in held:
            result.commitment.release()
