"""Property tests on the §5 classification machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import (
    ClassificationPolicy,
    classify_offer,
    classify_offers,
    compute_sns,
)
from repro.core.importance import default_importance
from repro.core.offers import SystemOffer
from repro.core.profiles import MMProfile, UserProfile
from repro.core.status import StaticNegotiationStatus
from repro.documents.media import ColorMode
from repro.documents.quality import VideoQoS
from repro.util.units import Money

from .strategies import money, video_qos


def _offer(offer_id: str, qos: VideoQoS, cost: Money) -> SystemOffer:
    from repro.documents.media import Codecs
    from repro.documents.monomedia import BlockStats, Variant

    variant = Variant(
        variant_id=f"{offer_id}.v",
        monomedia_id="m",
        codec=Codecs.MPEG1,
        qos=qos,
        size_bits=1e6,
        block_stats=BlockStats(2e5, 1e5, float(qos.frame_rate)),
        server_id="server-a",
        duration_s=60.0,
    )
    return SystemOffer(
        offer_id=offer_id,
        variants={"m": variant},
        presented={"m": qos},
        cost=cost,
    )


def _profile(desired: VideoQoS, worst: VideoQoS, max_cost: Money) -> UserProfile:
    return UserProfile(
        name="prop",
        desired=MMProfile(video=desired, cost=max_cost),
        worst=MMProfile(video=worst, cost=max_cost),
        importance=default_importance(),
    )


@st.composite
def profiles(draw):
    worst = draw(video_qos)
    # Build a desired point dominating the worst point.
    desired = VideoQoS(
        color=ColorMode(
            draw(st.integers(min_value=int(worst.color), max_value=3))
        ),
        frame_rate=draw(
            st.integers(min_value=worst.frame_rate, max_value=60)
        ),
        resolution=draw(
            st.integers(min_value=worst.resolution, max_value=1920)
        ),
    )
    return _profile(desired, worst, draw(money))


@st.composite
def offer_lists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    return [
        _offer(f"offer-{i}", draw(video_qos), draw(money))
        for i in range(count)
    ]


class TestSnsProperties:
    @given(profiles(), video_qos, money)
    def test_sns_total_function(self, profile, qos, cost):
        offer = _offer("o", qos, cost)
        assert compute_sns(offer, profile) in StaticNegotiationStatus

    @given(profiles(), video_qos, money)
    def test_desirable_implies_acceptable_qos(self, profile, qos, cost):
        offer = _offer("o", qos, cost)
        if compute_sns(offer, profile) is StaticNegotiationStatus.DESIRABLE:
            # The same QoS with any cost is at worst ACCEPTABLE.
            pricey = _offer("o2", qos, Money(10**9))
            assert compute_sns(pricey, profile) in (
                StaticNegotiationStatus.DESIRABLE,  # unreachable: cost
                StaticNegotiationStatus.ACCEPTABLE,
            )

    @given(profiles(), video_qos, money)
    def test_improving_color_never_worsens_sns(self, profile, qos, cost):
        offer = _offer("o", qos, cost)
        before = compute_sns(offer, profile)
        if qos.color is ColorMode.SUPER_COLOR:
            return
        better = VideoQoS(
            color=ColorMode(int(qos.color) + 1),
            frame_rate=qos.frame_rate,
            resolution=qos.resolution,
        )
        after = compute_sns(_offer("o2", better, cost), profile)
        assert int(after) <= int(before)


class TestOrderingProperties:
    @given(offer_lists(), profiles())
    @settings(max_examples=50)
    def test_sns_primary_is_sorted_by_key(self, offers, profile):
        importance = default_importance()
        ranked = classify_offers(offers, profile, importance)
        keys = [(int(c.sns), -c.oif) for c in ranked]
        assert keys == sorted(keys)

    @given(offer_lists(), profiles())
    @settings(max_examples=50)
    def test_pure_oif_is_sorted(self, offers, profile):
        ranked = classify_offers(
            offers, profile, default_importance(),
            policy=ClassificationPolicy.PURE_OIF,
        )
        oifs = [c.oif for c in ranked]
        assert oifs == sorted(oifs, reverse=True)

    @given(offer_lists(), profiles())
    @settings(max_examples=50)
    def test_classification_is_permutation(self, offers, profile):
        ranked = classify_offers(offers, profile, default_importance())
        assert sorted(c.offer.offer_id for c in ranked) == sorted(
            o.offer_id for o in offers
        )

    @given(offer_lists(), profiles())
    @settings(max_examples=50)
    def test_cost_gated_never_promotes(self, offers, profile):
        importance = default_importance()
        plain = {
            c.offer.offer_id: c.sns
            for c in classify_offers(offers, profile, importance)
        }
        gated = classify_offers(
            offers, profile, importance,
            policy=ClassificationPolicy.COST_GATED,
        )
        for c in gated:
            assert int(c.sns) >= int(plain[c.offer.offer_id])


class TestOifProperties:
    @given(video_qos, money, money)
    def test_oif_decreases_with_cost(self, qos, cheap, pricey):
        importance = default_importance()
        if cheap > pricey:
            cheap, pricey = pricey, cheap
        oif_cheap = importance.overall_importance([qos], cheap)
        oif_pricey = importance.overall_importance([qos], pricey)
        assert oif_cheap >= oif_pricey

    @given(video_qos, money)
    def test_oif_linear_in_cost_weight(self, qos, cost):
        base = default_importance().with_cost_per_dollar(1.0)
        double = default_importance().with_cost_per_dollar(2.0)
        qos_part = base.overall_importance([qos], Money.zero())
        assert double.overall_importance([qos], cost) == pytest.approx(
            qos_part - 2.0 * cost.amount
        )
