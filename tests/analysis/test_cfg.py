"""CFG construction: exception edges, finally duplication, loop exits."""

import ast

from repro.analysis.cfg import (
    ENTRY,
    EXC,
    EXIT,
    LOOP_EXIT,
    NORMAL,
    RAISE,
    build_cfg,
    statement_may_raise,
)


def cfg_of(source):
    tree = ast.parse(source)
    func = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


def stmt_node(cfg, line):
    """The first statement node anchored at ``line``."""
    for node in sorted(cfg.statement_nodes(), key=lambda n: n.node_id):
        if node.line == line:
            return node
    raise AssertionError(f"no statement node at line {line}")


def all_edges(cfg):
    return {
        (node.node_id, target, kind)
        for node in cfg.nodes.values()
        for (target, kind) in node.succ
    }


class TestStatementMayRaise:
    def test_raise_and_assert_may_raise(self):
        assert statement_may_raise(ast.parse("raise ValueError()").body[0])
        assert statement_may_raise(ast.parse("assert x").body[0])

    def test_plain_assignment_cannot(self):
        assert not statement_may_raise(ast.parse("x = y + 1").body[0])

    def test_ordinary_call_may_raise(self):
        assert statement_may_raise(ast.parse("server.admit(spec)").body[0])

    def test_teardown_markers_are_total(self):
        for snippet in (
            "server.release(r)",
            "committer.rollback(streams, flows)",
            "pool.teardown()",
        ):
            assert not statement_may_raise(ast.parse(snippet).body[0])


class TestLinearFlow:
    def test_straight_line_reaches_exit_without_exception_edges(self):
        cfg = cfg_of("def f(x):\n    y = x + 1\n    return y\n")
        edges = all_edges(cfg)
        assert all(kind == NORMAL for (_s, _t, kind) in edges)
        assert not cfg.predecessors(RAISE)
        assert cfg.predecessors(EXIT)

    def test_unprotected_call_links_to_raise(self):
        cfg = cfg_of("def f(s):\n    s.ping()\n")
        node = stmt_node(cfg, 2)
        assert (RAISE, EXC) in node.succ

    def test_release_call_gets_no_exception_edge(self):
        cfg = cfg_of("def f(s, r):\n    s.release(r)\n")
        node = stmt_node(cfg, 2)
        assert all(kind == NORMAL for (_t, kind) in node.succ)


class TestTryExcept:
    SOURCE = (
        "def f(s):\n"
        "    try:\n"
        "        s.ping()\n"
        "    except ValueError:\n"
        "        s.log()\n"
    )

    def test_body_exceptions_route_to_the_handler_not_raise(self):
        cfg = cfg_of(self.SOURCE)
        body = stmt_node(cfg, 3)
        exc_targets = [t for (t, kind) in body.succ if kind == EXC]
        assert exc_targets
        assert RAISE not in exc_targets

    def test_handler_body_can_still_unwind(self):
        cfg = cfg_of(self.SOURCE)
        handler_stmt = stmt_node(cfg, 5)
        assert (RAISE, EXC) in handler_stmt.succ


class TestTryFinally:
    SOURCE = (
        "def f(s):\n"
        "    try:\n"
        "        s.ping()\n"
        "    finally:\n"
        "        s.release_all()\n"
    )

    def test_finally_suite_is_duplicated(self):
        cfg = cfg_of(self.SOURCE)
        copies = [n for n in cfg.statement_nodes() if n.line == 5]
        assert len(copies) == 2

    def test_exceptional_copy_resumes_the_raise_with_normal_kind(self):
        # The exceptional-finally tail links onward with NORMAL kind:
        # the suite *completed* before the exception resumes, so its
        # effects (the release) must reach the RAISE state.
        cfg = cfg_of(self.SOURCE)
        copies = [n for n in cfg.statement_nodes() if n.line == 5]
        assert any((RAISE, NORMAL) in n.succ for n in copies)

    def test_normal_copy_reaches_exit(self):
        cfg = cfg_of(self.SOURCE)
        copies = [n for n in cfg.statement_nodes() if n.line == 5]
        assert any(
            (EXIT, NORMAL) in n.succ or any(k == NORMAL for (_t, k) in n.succ)
            for n in copies
        )


class TestLoops:
    def test_for_head_exits_with_loop_exit_kind(self):
        cfg = cfg_of(
            "def f(items, s):\n"
            "    for item in items:\n"
            "        s.ping(item)\n"
            "    return None\n"
        )
        kinds = {kind for (_s, _t, kind) in all_edges(cfg)}
        assert LOOP_EXIT in kinds
        head = stmt_node(cfg, 2)
        assert any(kind == LOOP_EXIT for (_t, kind) in head.succ)

    def test_while_exit_stays_normal(self):
        cfg = cfg_of(
            "def f(s):\n"
            "    while s.more():\n"
            "        s.ping()\n"
            "    return None\n"
        )
        kinds = {kind for (_s, _t, kind) in all_edges(cfg)}
        assert LOOP_EXIT not in kinds

    def test_entry_is_wired(self):
        cfg = cfg_of("def f():\n    return 1\n")
        assert cfg.successors(ENTRY)
