"""Pragma edge cases: first line, multi-line statements, decorators."""

import pathlib

from repro.analysis import LintEngine, ModuleContext

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestSuppressionExtents:
    def test_pragma_on_the_first_line_of_the_file(self):
        ctx = ModuleContext.from_source(
            "WIDTH = 1920  # reprolint: disable=REP007\n"
        )
        assert ctx.suppressed("REP007", 1)

    def test_multiline_statement_is_covered_from_its_opening_line(self):
        ctx = ModuleContext.from_source(
            "import time\n"
            "\n"
            "record.update(  # reprolint: disable=REP001\n"
            "    stamped_at=time.time(),\n"
            ")\n"
        )
        assert ctx.suppressed("REP001", 4)

    def test_multiline_statement_is_covered_from_an_inner_line(self):
        ctx = ModuleContext.from_source(
            "import time\n"
            "\n"
            "record.update(\n"
            "    stamped_at=time.time(),  # reprolint: disable=REP001\n"
            ")\n"
        )
        assert ctx.suppressed("REP001", 3)

    def test_decorator_pragma_covers_the_def_line(self):
        ctx = ModuleContext.from_source(
            "@decorate  # reprolint: disable=REP009\n"
            "def untyped(a, b):\n"
            "    return a\n"
        )
        assert ctx.suppressed("REP009", 2)

    def test_def_line_pragma_covers_the_decorator_line(self):
        ctx = ModuleContext.from_source(
            "@decorate\n"
            "def untyped(a, b):  # reprolint: disable=REP009\n"
            "    return a\n"
        )
        assert ctx.suppressed("REP009", 1)

    def test_header_pragma_never_covers_the_body(self):
        ctx = ModuleContext.from_source(
            "@decorate  # reprolint: disable=REP001\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert not ctx.suppressed("REP001", 3)

    def test_bare_disable_hits_every_rule(self):
        ctx = ModuleContext.from_source("x = 1  # reprolint: disable\n")
        assert ctx.suppressed("REP001", 1)
        assert ctx.suppressed("REP007", 1)


class TestPragmaFixtures:
    def test_edge_case_pass_fixture_is_fully_suppressed(self):
        report = LintEngine().run(
            [FIXTURES / "passing" / "pragma_edges_pass.py"]
        )
        assert report.findings == []
        assert report.suppressed == 2

    def test_decorated_pass_fixture_is_suppressed_in_the_typed_core(self):
        report = LintEngine().run(
            [FIXTURES / "passing" / "repro" / "core" / "pragma_decorated_pass.py"]
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_edge_case_flag_fixture_still_flags_the_body(self):
        report = LintEngine(select=["REP001"]).run(
            [FIXTURES / "flagging" / "pragma_edges_flag.py"]
        )
        assert [f.rule_id for f in report.findings] == ["REP001"]
        assert report.suppressed == 0
