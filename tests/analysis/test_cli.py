"""CLI-level behaviour of ``python -m repro lint`` / ``typecheck``."""

import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_flagging_fixtures_exit_nonzero(self, capsys):
        code = main(["lint", str(FIXTURES / "flagging"), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        for rule_id in (
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007", "REP008", "REP009", "REP010", "REP011",
        ):
            assert rule_id in out, f"{rule_id} missing from CLI output"

    def test_passing_fixtures_exit_zero(self, capsys):
        code = main(["lint", str(FIXTURES / "passing"), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 findings" in out

    def test_json_format(self, capsys):
        code = main([
            "lint", str(FIXTURES / "flagging"), "--no-baseline",
            "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert {f["rule"] for f in payload["findings"]} >= {"REP001", "REP009"}

    def test_select_restricts_rules(self, capsys):
        code = main([
            "lint", str(FIXTURES / "flagging"), "--no-baseline",
            "--select", "REP005",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP005" in out and "REP001" not in out

    def test_select_accepts_comma_separated_rule_lists(self, capsys):
        code = main([
            "lint", str(FIXTURES / "flagging"), "--no-baseline",
            "--select", "REP005,REP001",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP005" in out and "REP001" in out
        assert "REP009" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert out.count("REP0") >= 9

    def test_update_baseline_then_clean_with_justifications(self, tmp_path, capsys):
        baseline = tmp_path / ".reprolint.json"
        target = str(FIXTURES / "flagging" / "rep005_flag.py")
        assert main([
            "lint", target, "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        payload = json.loads(baseline.read_text())
        assert payload["entries"]
        # Entries start unjustified: the gate must still fail.
        assert main(["lint", target, "--baseline", str(baseline)]) == 1
        for entry in payload["entries"]:
            entry["justification"] = "fixture: deliberately mutable"
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["lint", target, "--baseline", str(baseline)]) == 0

    def test_unknown_rule_is_usage_error(self, capsys):
        code = main(["lint", "--select", "REP999", str(FIXTURES / "passing")])
        assert code == 2
        assert "REP999" in capsys.readouterr().err


class TestTypecheckCommand:
    def test_gates_gracefully_without_mypy(self, capsys, monkeypatch):
        import repro.analysis.cli as analysis_cli

        monkeypatch.setattr(analysis_cli, "mypy_available", lambda: False)
        assert main(["typecheck"]) == 0
        assert "skipped" in capsys.readouterr().err
        assert main(["typecheck", "--require-mypy"]) == 3
