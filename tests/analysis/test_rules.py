"""Every lint rule has a flagging fixture and a passing fixture.

The fixtures are real files under ``tests/analysis/fixtures`` — the
same files the CLI-level tests lint as directories — so the unit tests
and the end-to-end behaviour can never drift apart.
"""

import pathlib

import pytest

from repro.analysis import LintEngine, ModuleContext
from repro.analysis.registry import all_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "REP001": ("flagging/rep001_flag.py", "passing/rep001_pass.py"),
    "REP002": ("flagging/rep002_flag.py", "passing/rep002_pass.py"),
    "REP003": ("flagging/rep003_flag.py", "passing/rep003_pass.py"),
    "REP004": ("flagging/rep004_flag.py", "passing/rep004_pass.py"),
    "REP005": ("flagging/rep005_flag.py", "passing/rep005_pass.py"),
    "REP006": ("flagging/rep006_flag.py", "passing/rep006_pass.py"),
    "REP007": ("flagging/rep007_flag.py", "passing/rep007_pass.py"),
    "REP008": ("flagging/rep008_flag.py", "passing/rep008_pass.py"),
    "REP009": (
        "flagging/repro/core/rep009_flag.py",
        "passing/repro/core/rep009_pass.py",
    ),
    "REP010": (
        "flagging/repro/session/rep010_flag.py",
        "passing/repro/session/rep010_pass.py",
    ),
    "REP011": ("flagging/rep011_flag.py", "passing/rep011_pass.py"),
    "REP018": ("flagging/rep018_flag.py", "passing/rep018_pass.py"),
}


def findings_for(rule_id: str, fixture: str):
    engine = LintEngine(select=[rule_id])
    ctx = ModuleContext.from_path(FIXTURES / fixture)
    return engine.check_context(ctx)


class TestFixturePairs:
    def test_every_rule_has_a_fixture_pair(self):
        assert sorted(RULE_FIXTURES) == [r.rule_id for r in all_rules()]

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_flagging_fixture_flags(self, rule_id):
        flag, _ = RULE_FIXTURES[rule_id]
        findings = findings_for(rule_id, flag)
        assert findings, f"{flag} produced no {rule_id} findings"
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 and f.hint for f in findings)

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_passing_fixture_is_clean(self, rule_id):
        _, ok = RULE_FIXTURES[rule_id]
        assert findings_for(rule_id, ok) == []

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_passing_fixture_is_clean_under_every_rule(self, rule_id):
        """The passing fixtures double as the CLI exit-0 corpus."""
        _, ok = RULE_FIXTURES[rule_id]
        engine = LintEngine()
        assert engine.check_context(ModuleContext.from_path(FIXTURES / ok)) == []


class TestRuleSpecifics:
    def test_rep001_exempts_the_sanctioned_wrappers(self):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        engine = LintEngine(select=["REP001"])
        assert engine.check_source(
            source, path="src/repro/util/clock.py", module="repro.util.clock"
        ) == []
        assert engine.check_source(source, path="src/repro/sim/run.py")

    def test_rep003_backstop_requires_justification(self):
        source = (
            "def f(fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except Exception:  # reprolint: backstop\n"
            "        return None\n"
        )
        engine = LintEngine(select=["REP003"])
        findings = engine.check_source(source)
        assert len(findings) == 1
        assert "justification" in findings[0].message

    def test_rep004_allows_integer_equality(self):
        engine = LintEngine(select=["REP004"])
        assert engine.check_source("ok = count == 3\n") == []

    def test_rep006_counts_capture_across_nested_loops(self):
        source = (
            "def f(loop, grid):\n"
            "    for row in grid:\n"
            "        for cell in row:\n"
            "            loop.after(1.0, lambda: cell.fire(row))\n"
        )
        findings = LintEngine(select=["REP006"]).check_source(source)
        assert len(findings) == 1
        assert "cell" in findings[0].message and "row" in findings[0].message

    def test_rep002_leaf_primitive_is_exempt(self):
        source = (
            "class Link:\n"
            "    def reserve(self, rate):\n"
            "        return self._pool.reserve(rate)\n"
        )
        assert LintEngine(select=["REP002"]).check_source(source) == []

    def test_rep007_exempts_the_defining_modules(self):
        engine = LintEngine(select=["REP007"])
        source = "WIDTH = 1920\n"
        assert engine.check_source(
            source, path="src/repro/documents/media.py"
        ) == []
        assert engine.check_source(source, path="src/repro/ui/widgets.py")

    def test_rep009_ignores_modules_outside_the_typed_core(self):
        source = "def untyped(a, b):\n    return a\n"
        engine = LintEngine(select=["REP009"])
        assert engine.check_source(
            source, path="src/repro/ui/windows.py", module="repro.ui.windows"
        ) == []
        assert engine.check_source(
            source, path="src/repro/core/offers.py", module="repro.core.offers"
        )
