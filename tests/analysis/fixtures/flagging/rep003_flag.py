"""REP003 fixture: bare except, unsanctioned broad except, builtin raise."""


def swallow(fn):
    try:
        return fn()
    except:
        return None


def too_broad(fn):
    try:
        return fn()
    except Exception:
        return None


def reject(value):
    raise ValueError(f"bad value: {value!r}")
