"""Header pragmas never cover the body: this still flags REP001."""

import time


def decorate(fn):
    return fn


@decorate  # reprolint: disable=REP001
def stamp():
    return time.time()
