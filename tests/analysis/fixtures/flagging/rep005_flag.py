"""REP005 fixture: mutable default arguments."""


def collect(item, seen=[]):
    seen.append(item)
    return seen


def tally(key, counts={}, *, labels=set()):
    counts[key] = counts.get(key, 0) + 1
    return counts, labels
