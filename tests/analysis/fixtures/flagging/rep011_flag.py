"""REP011 fixture (flagged): naked timing + unregistered metric."""

from time import perf_counter
from time import time as wall_time


def measure(telemetry):
    started = perf_counter()
    telemetry.count("negotiation.bogus.counter")
    telemetry.metrics.observe("not.in.the.catalog", 1.0)
    return wall_time() - started
