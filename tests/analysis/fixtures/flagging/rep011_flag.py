"""REP011 fixture (flagged): naked timing, unregistered metric names on
the write side (emission), the read side (series queries), and in SLO
declarations."""

from time import perf_counter
from time import time as wall_time

from repro.telemetry import EventSelector, SloSpec


def measure(telemetry):
    started = perf_counter()
    telemetry.count("negotiation.bogus.counter")
    telemetry.metrics.observe("not.in.the.catalog", 1.0)
    return wall_time() - started


def dashboard(recorder):
    series = recorder.counter_series("no.such.counter")
    rates = recorder.counter_rate("also.not.registered")
    tail = recorder.quantile_series("missing.histogram", 0.99)
    return series, rates, tail


def objectives():
    return SloSpec(
        name="typo-latency",
        description="reads an empty series forever",
        objective=0.9,
        kind="quantile",
        metric="service.verdict.wait_seconds",
        bad=(EventSelector("negotiation.outcomez"),),
    )
