"""REP001 fixture: wall clock, sleeping, and process-global RNG."""

import random
import time

import numpy as np


def jittered_timestamp() -> float:
    time.sleep(0.1)
    return time.time() + random.random()


def unseeded_draw() -> float:
    return float(np.random.uniform(0.0, 1.0))
