"""REP007 fixture: bare literals duplicating named paper anchors."""


def full_resolution_area() -> int:
    return 1920 * 1080


def is_tv_width(width: int) -> bool:
    return width >= 720
