"""REP010 fixture: commitment state flips that bypass the journal."""


class CommitmentState:
    PENDING = "pending"
    CONFIRMED = "confirmed"
    RELEASED = "released"


class ShadowCommitment:
    def __init__(self) -> None:
        self.state = CommitmentState.PENDING  # flips with no journal call

    def confirm(self) -> None:
        self.state = CommitmentState.CONFIRMED

    def release(self) -> None:
        if self.state != CommitmentState.RELEASED:
            self.state = CommitmentState.RELEASED
