"""REP009 fixture: unannotated functions inside the typed core."""


def classify(offer, profile):
    return offer, profile


class Negotiator:
    def negotiate(self, document) -> None:
        del document

    def status(self):
        return "ok"
