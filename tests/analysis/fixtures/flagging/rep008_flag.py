"""REP008 fixture: a mutable offer dataclass."""

from dataclasses import dataclass


@dataclass
class SystemOffer:
    offer_id: str
    cost: float


@dataclass(slots=True)
class UserOffer:
    offer_id: str
