"""REP004 fixture: exact float equality on QoS/cost values."""


def costs_match(cost: float, limit: str) -> bool:
    return cost == float(limit)


def is_full_rate(rate: float) -> bool:
    return rate == 29.97 or rate != 23.976
