"""REP018 fixture (flagged): private NegotiationCache constructions —
bare, dotted, and aliased — outside repro.perf.cache."""

from repro.perf import cache as cache_module
from repro.perf.cache import NegotiationCache
from repro.perf.cache import NegotiationCache as PrivateCache


def build_manager_cache():
    return NegotiationCache(max_spaces=8)


def build_dotted():
    return cache_module.NegotiationCache()


def build_aliased():
    return PrivateCache(max_classifications=4)
