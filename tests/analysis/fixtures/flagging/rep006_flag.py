"""REP006 fixture: late-binding loop-variable capture in callbacks."""


def schedule_all(loop, servers):
    for server in servers:
        loop.after(1.0, lambda: server.restart())


def schedule_pairs(loop, episodes):
    callbacks = [lambda: episode.apply() for episode in episodes]
    for callback in callbacks:
        loop.after(1.0, callback)
