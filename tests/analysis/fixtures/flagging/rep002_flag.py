"""REP002 fixture: acquisitions with no rollback path."""


def commit_all(servers, transport, spec):
    streams = []
    for server in servers:
        streams.append(server.admit(spec))
    flow = transport.reserve(spec)
    return streams, flow
