"""REP007 fixture (clean): named anchors referenced, not duplicated."""

from repro.documents.media import HDTV_RESOLUTION, TV_RESOLUTION


def full_resolution_area() -> int:
    return HDTV_RESOLUTION * 1080


def is_tv_width(width: int) -> bool:
    return width >= TV_RESOLUTION
