"""REP001 fixture (clean): explicit clock and seeded generators."""

from repro.util.clock import ManualClock
from repro.util.rng import make_rng


def jittered_timestamp(clock: ManualClock, seed: int) -> float:
    rng = make_rng(seed)
    return clock.now() + float(rng.uniform(0.0, 1.0))
