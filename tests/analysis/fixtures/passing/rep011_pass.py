"""REP011 fixture (clean): clock-derived spans, catalog metric names on
the write side, the read side, and in SLO declarations."""

from repro.telemetry import EventSelector, SloSpec
from repro.util.clock import ManualClock


def measure(telemetry, clock: ManualClock) -> float:
    started = clock.now()
    telemetry.count("negotiation.offers.enumerated", 1.0)
    telemetry.metrics.observe("negotiation.latency_s", clock.now() - started)
    return clock.now() - started


def dashboard(recorder):
    series = recorder.counter_series("negotiation.outcomes", "CONFIRMED")
    rates = recorder.counter_rate("commitment.rollbacks")
    tail = recorder.quantile_series("service.verdict.wait_s", 0.99)
    return series, rates, tail


def objectives():
    return SloSpec(
        name="verdict-latency",
        description="p99 verdict wait within budget",
        objective=0.9,
        kind="quantile",
        metric="service.verdict.wait_s",
        bad=(EventSelector("negotiation.outcomes"),),
    )
