"""REP011 fixture (clean): clock-derived spans, catalog metric names."""

from repro.util.clock import ManualClock


def measure(telemetry, clock: ManualClock) -> float:
    started = clock.now()
    telemetry.count("negotiation.offers.enumerated", 1.0)
    telemetry.metrics.observe("negotiation.latency_s", clock.now() - started)
    return clock.now() - started
