"""REP008 fixture (clean): offers are frozen dataclasses."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SystemOffer:
    offer_id: str
    cost: float


class OfferBook:
    """Hand-written (non-dataclass) classes manage their own invariants."""

    def __init__(self) -> None:
        self.offers = ()
