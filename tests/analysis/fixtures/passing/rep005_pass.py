"""REP005 fixture (clean): None defaults, container built in the body."""


def collect(item, seen=None):
    if seen is None:
        seen = []
    seen.append(item)
    return seen


def lookup(key, table=(), default=0):
    return dict(table).get(key, default)
