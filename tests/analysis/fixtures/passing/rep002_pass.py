"""REP002 fixture (clean): acquisitions rolled back on failure."""

from repro.util.errors import CapacityError


def commit_all(servers, transport, spec):
    streams = []
    flow = None
    try:
        for server in servers:
            streams.append(server.admit(spec))
        flow = transport.reserve(spec)
    except CapacityError:
        rollback(transport, streams)
        raise
    return streams, flow


def rollback(transport, streams):
    for stream in streams:
        stream.server.release(stream)
