"""REP018 fixture (clean): the process-wide accessor, the test-reset
helper, and classmethod key access — no private construction."""

from repro.perf.cache import NegotiationCache, reset_shared_cache, shared_cache


def manager_cache():
    return shared_cache()


def isolated_run():
    reset_shared_cache()
    return shared_cache()


def key_helper(space_key, profile, importance, policy):
    # Classmethod access is not a construction.
    return NegotiationCache.classification_key(
        space_key, profile, importance, policy
    )
