"""REP010 fixture (clean): journaled flips, and exempt session state."""


class CommitmentState:
    PENDING = "pending"
    CONFIRMED = "confirmed"


class SessionState:
    PLAYING = "playing"
    COMPLETED = "completed"


class JournaledCommitment:
    def __init__(self, journal: object) -> None:
        self._journal = journal
        self.state = None

    def _journal_transition(self, record_type: str) -> None:
        del record_type

    def begin(self) -> None:
        self._journal_transition("reserved")
        self.state = CommitmentState.PENDING

    def confirm(self) -> None:
        self._journal_transition("confirmed")
        self.state = CommitmentState.CONFIRMED


class Playout:
    def __init__(self) -> None:
        # SessionState is volatile playout state, not a reservation:
        # no journal record is owed.
        self.state = SessionState.PLAYING

    def complete(self) -> None:
        self.state = SessionState.COMPLETED
