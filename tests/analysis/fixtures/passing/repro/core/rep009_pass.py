"""REP009 fixture (clean): fully annotated typed-core functions."""


def classify(offer: str, profile: str) -> "tuple[str, str]":
    return offer, profile


class Negotiator:
    def negotiate(self, document: str) -> None:
        del document

    def status(self) -> str:
        def helper():  # nested defs are exempt: mypy infers them
            return "ok"

        return helper()
