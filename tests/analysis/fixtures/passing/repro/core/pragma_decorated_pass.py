"""A pragma on the decorator line covers the whole def header."""


def decorate(fn: object) -> object:
    return fn


@decorate  # reprolint: disable=REP009 -- fixture: decorated header
def untyped(a, b):
    return a
