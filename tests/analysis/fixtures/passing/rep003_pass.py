"""REP003 fixture (clean): narrow excepts, sanctioned backstop, taxonomy raise."""

from repro.util.errors import ReproError, ValidationError


def narrow(fn):
    try:
        return fn()
    except ReproError:
        return None


def outermost_boundary(fn):
    try:
        return fn()
    except Exception:  # reprolint: backstop -- CLI boundary: render any bug as exit code 1
        return None


def reject(value):
    raise ValidationError(f"bad value: {value!r}")
