WIDTH = 1920  # reprolint: disable=REP007 -- first physical line of the file

import time


def stamp(record):
    record.update(  # reprolint: disable=REP001 -- fixture: multi-line statement
        stamped_at=time.time(),
    )
    return record
