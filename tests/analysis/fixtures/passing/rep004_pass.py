"""REP004 fixture (clean): tolerance-based comparison, zero sentinel."""

import math


def costs_match(cost: float, limit: str) -> bool:
    return math.isclose(cost, float(limit))


def is_idle(stall_s: float) -> bool:
    return stall_s == 0.0
