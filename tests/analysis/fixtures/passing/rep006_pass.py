"""REP006 fixture (clean): default-bound callbacks, eager consumers."""


def schedule_all(loop, servers):
    for server in servers:
        loop.after(1.0, lambda s=server: s.restart())


def rank_per_spec(specs, servers):
    ranked = {}
    for spec in specs:
        ranked[spec] = sorted(servers, key=lambda s: s.distance_to(spec))
    return ranked
