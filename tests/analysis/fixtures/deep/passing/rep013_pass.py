"""The fallible step is guarded: the handler rolls back, then re-raises."""


def validate(spec):
    if spec.rate <= 0:
        raise ValueError("unusable rate")


def run(server, spec):
    stream = server.admit(spec)
    try:
        validate(spec)
    except ValueError:
        server.rollback(stream)
        raise
    server.release(stream)
    return True
