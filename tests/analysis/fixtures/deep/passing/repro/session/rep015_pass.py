"""Session-scoped state lives on an object, not at module level."""


class SessionRegistry:
    def __init__(self):
        self._sessions = {}

    def register(self, session_id, session):
        self._sessions[session_id] = session
        return len(self._sessions)
