"""The journal write dominates the flip on every path."""


class CommitmentState:
    PREPARED = "prepared"
    COMMITTED = "committed"


class Commitment:
    def __init__(self, journal):
        self._journal = journal
        self.state = None

    def commit(self):
        self._journal.journal_event("commit")
        self.state = CommitmentState.COMMITTED
