"""REP016 pass: a cooperative task that never blocks inline."""


def account(ledger, delay_s):
    ledger.append(delay_s)


def negotiation_task(session, ledger):
    yield
    account(ledger, 0.01)
    return True
