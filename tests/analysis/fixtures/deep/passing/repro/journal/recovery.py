"""The recovery seam may repair the server's ledger directly."""


def reinstate(server, stream_id, stream):
    server._streams[stream_id] = stream
