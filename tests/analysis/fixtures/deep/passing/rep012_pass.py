"""The same cross-function acquisition, released on the normal path."""


def reserve(server, spec):
    return server.admit(spec)


def run_presentation(server, spec):
    stream = reserve(server, spec)
    stream.play()
    server.release(stream)
    return True
