"""Blocking I/O stays on sync paths the event loop never calls."""

import os


def flush(fd):
    os.fsync(fd)


def snapshot(clock):
    return clock.now()


async def drive(session):
    await session.open()
    return snapshot(session.clock)
