"""REP012: the reservation escapes `reserve` and is never released.

Per-file REP002 cannot see this — the acquiring call in the driver is a
bare name, and the helper is an exempt leaf primitive — but following
`returns_acquisition` across the call edge makes the leak visible.
"""


def reserve(server, spec):
    return server.admit(spec)


def run_presentation(server, spec):
    stream = reserve(server, spec)
    if stream is None:
        return False
    return True
