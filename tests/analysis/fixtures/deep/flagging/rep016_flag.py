"""REP016: a blocking fsync is reachable from the async drive loop."""

import os


def persist(fd):
    os.fsync(fd)


async def drive(session, fd):
    await session.open()
    persist(fd)
    return True
