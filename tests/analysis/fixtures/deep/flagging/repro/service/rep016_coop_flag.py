"""REP016: a blocking fsync is reachable from a cooperative task.

The function is a plain generator — no ``async def`` anywhere — but it
lives under ``repro/service``, so the cooperative-root extension must
still root the reachability walk at it.
"""

import os


def persist(fd):
    os.fsync(fd)


def negotiation_task(session, fd):
    yield
    persist(fd)
    return True
