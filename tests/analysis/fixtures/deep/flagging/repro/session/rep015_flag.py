"""REP015: module-level dict mutated from a negotiation-path function."""

_ACTIVE_SESSIONS = {}


def register(session_id, session):
    _ACTIVE_SESSIONS[session_id] = session
    return len(_ACTIVE_SESSIONS)
