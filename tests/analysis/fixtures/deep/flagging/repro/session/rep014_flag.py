"""REP014: the journal write only happens on one branch before the flip.

Per-file REP010 is satisfied — the function *contains* a journal call —
but the urgent path reaches the state assignment without one, which is
exactly the crash window the dataflow version exists to catch.
"""


class CommitmentState:
    PREPARED = "prepared"
    COMMITTED = "committed"


class Commitment:
    def __init__(self, journal):
        self._journal = journal
        self.state = None

    def commit(self, urgent):
        if not urgent:
            self._journal.journal_event("commit")
        self.state = CommitmentState.COMMITTED
