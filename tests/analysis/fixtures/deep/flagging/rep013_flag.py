"""REP013: a fallible step runs while the reservation is unprotected.

`validate` demonstrably raises, so the exception edge out of its call
site carries the still-held stream to the function's exceptional exit.
"""


def validate(spec):
    if spec.rate <= 0:
        raise ValueError("unusable rate")


def run(server, spec):
    stream = server.admit(spec)
    validate(spec)
    server.release(stream)
    return True
