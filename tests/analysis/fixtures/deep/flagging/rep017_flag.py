"""REP017: poking the server's reservation ledger from outside its seam."""


def hijack(server, stream_id, stream):
    server._streams[stream_id] = stream


def evict(server, stream_id):
    server._streams.pop(stream_id, None)
