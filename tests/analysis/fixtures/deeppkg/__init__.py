"""Fixture package: a cross-module reservation leak only --deep can see."""
