"""Leaf admission primitive — the caller inherits the release duty."""


def admit(server, spec):
    return server.admit(spec)
