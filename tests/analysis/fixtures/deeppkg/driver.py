"""Forgets to release what the pool admitted.

Invisible to per-file REP002: the acquiring call below is a bare name
(no ``.admit`` attribute syntax in this file), and the pool primitive
itself is an exempt single-acquisition leaf.  Only the whole-program
engine, which knows ``pool.admit`` returns an acquisition, can tell the
driver leaks it.
"""

from .pool import admit


def run_session(server, spec):
    stream = admit(server, spec)
    if stream is None:
        return False
    return True
