"""Project assembly: symbol table, call resolution, SCC ordering."""

from tests.analysis.projutil import project_from


class TestResolution:
    def test_bare_name_resolves_within_the_module(self):
        project = project_from(
            {
                "mod": (
                    "def helper():\n"
                    "    return 1\n"
                    "\n"
                    "def top():\n"
                    "    return helper()\n"
                )
            }
        )
        assert "mod::helper" in project.callees["mod::top"]

    def test_imported_name_resolves_across_modules(self):
        project = project_from(
            {
                "pkg.pool": "def lease(spec):\n    return spec\n",
                "pkg.driver": (
                    "from pkg.pool import lease\n"
                    "\n"
                    "def run(spec):\n"
                    "    return lease(spec)\n"
                ),
            }
        )
        assert "pkg.pool::lease" in project.callees["pkg.driver::run"]

    def test_relative_import_is_anchored_to_the_package(self):
        project = project_from(
            {
                "pkg.pool": "def lease(spec):\n    return spec\n",
                "pkg.driver": (
                    "from .pool import lease\n"
                    "\n"
                    "def run(spec):\n"
                    "    return lease(spec)\n"
                ),
            }
        )
        assert "pkg.pool::lease" in project.callees["pkg.driver::run"]

    def test_self_method_dispatches_through_base_classes(self):
        project = project_from(
            {
                "mod": (
                    "class Base:\n"
                    "    def ping(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.ping()\n"
                )
            }
        )
        assert "mod::Base.ping" in project.callees["mod::Child.run"]

    def test_instantiation_runs_init(self):
        project = project_from(
            {
                "mod": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "\n"
                    "def make():\n"
                    "    return C()\n"
                )
            }
        )
        assert "mod::C.__init__" in project.callees["mod::make"]

    def test_unknown_receiver_stays_unresolved(self):
        project = project_from(
            {
                "mod": (
                    "def run(thing):\n"
                    "    return thing.frobnicate()\n"
                )
            }
        )
        assert not project.callees.get("mod::run")


class TestGraphQueries:
    CHAIN = {
        "mod": (
            "def c():\n"
            "    return 1\n"
            "\n"
            "def b():\n"
            "    return c()\n"
            "\n"
            "def a():\n"
            "    return b()\n"
            "\n"
            "def island():\n"
            "    return 0\n"
        )
    }

    def test_reachability_follows_the_chain(self):
        project = project_from(self.CHAIN)
        reachable = project.reachable_from(["mod::a"])
        assert {"mod::a", "mod::b", "mod::c"} <= reachable
        assert "mod::island" not in reachable

    def test_sccs_come_out_callees_first(self):
        project = project_from(self.CHAIN)
        order = [ref for scc in project.sccs_bottom_up() for ref in scc]
        assert order.index("mod::c") < order.index("mod::b")
        assert order.index("mod::b") < order.index("mod::a")

    def test_mutual_recursion_lands_in_one_scc(self):
        project = project_from(
            {
                "mod": (
                    "def even(n):\n"
                    "    return n == 0 or odd(n - 1)\n"
                    "\n"
                    "def odd(n):\n"
                    "    return n != 0 and even(n - 1)\n"
                )
            }
        )
        sccs = [set(scc) for scc in project.sccs_bottom_up()]
        assert {"mod::even", "mod::odd"} in sccs
