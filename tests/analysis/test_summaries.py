"""Per-function summaries: seeds, alias closure, SCC propagation."""

from tests.analysis.projutil import project_from


def summaries_of(sources):
    project = project_from(sources)
    return project, project.summaries()


class TestLocalSeeds:
    def test_returning_an_acquisition_is_recorded(self):
        _, summaries = summaries_of(
            {"mod": "def grab(server, spec):\n    return server.admit(spec)\n"}
        )
        summary = summaries["mod::grab"]
        assert summary.acquires
        assert summary.returns_acquisition

    def test_acquisition_consumed_locally_does_not_return_it(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def use(server, spec):\n"
                    "    r = server.admit(spec)\n"
                    "    server.release(r)\n"
                    "    return True\n"
                )
            }
        )
        summary = summaries["mod::use"]
        assert summary.acquires
        assert not summary.returns_acquisition

    def test_release_through_an_alias_frees_the_parameter(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def free(server, r):\n"
                    "    handle = r\n"
                    "    server.release(handle)\n"
                )
            }
        )
        summary = summaries["mod::free"]
        assert summary.releases_args
        assert "r" in summary.released_params

    def test_explicit_raise_marks_the_function_risky(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def check(x):\n"
                    "    if x < 0:\n"
                    "        raise ValueError(x)\n"
                )
            }
        )
        assert summaries["mod::check"].raises

    def test_blocking_primitive_is_detected_with_its_site(self):
        _, summaries = summaries_of(
            {"mod": "import os\n\ndef sync(fd):\n    os.fsync(fd)\n"}
        )
        summary = summaries["mod::sync"]
        assert summary.blocking
        assert "os.fsync" in summary.blocking_site


class TestTransitivePropagation:
    def test_releases_args_flows_callee_to_caller(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def free(server, r):\n"
                    "    server.release(r)\n"
                    "\n"
                    "def wrapper(server, r):\n"
                    "    free(server, r)\n"
                )
            }
        )
        summary = summaries["mod::wrapper"]
        assert summary.releases_args
        assert "r" in summary.released_params

    def test_journals_and_raises_propagate_up_the_chain(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def write(journal, record):\n"
                    "    journal.journal_event(record)\n"
                    "    if record is None:\n"
                    "        raise ValueError(record)\n"
                    "\n"
                    "def middle(journal, record):\n"
                    "    write(journal, record)\n"
                    "\n"
                    "def top(journal, record):\n"
                    "    middle(journal, record)\n"
                )
            }
        )
        assert summaries["mod::top"].journals
        assert summaries["mod::top"].raises

    def test_blocking_propagates_with_the_original_site(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "import time\n"
                    "\n"
                    "def nap(delay):\n"
                    "    time.sleep(delay)\n"
                    "\n"
                    "def caller(delay):\n"
                    "    nap(delay)\n"
                )
            }
        )
        summary = summaries["mod::caller"]
        assert summary.blocking
        assert "time.sleep" in summary.blocking_site

    def test_returns_acquisition_is_deliberately_local_only(self):
        # Propagating it transitively would tag every coordinator as a
        # resource source; only the function that talks to the server
        # carries the obligation.
        _, summaries = summaries_of(
            {
                "mod": (
                    "def grab(server, spec):\n"
                    "    return server.admit(spec)\n"
                    "\n"
                    "def coordinator(server, spec):\n"
                    "    return grab(server, spec)\n"
                )
            }
        )
        assert summaries["mod::grab"].returns_acquisition
        assert not summaries["mod::coordinator"].returns_acquisition

    def test_mutual_recursion_converges(self):
        _, summaries = summaries_of(
            {
                "mod": (
                    "def ping(journal, n):\n"
                    "    if n:\n"
                    "        pong(journal, n - 1)\n"
                    "\n"
                    "def pong(journal, n):\n"
                    "    journal.journal_event(n)\n"
                    "    if n:\n"
                    "        ping(journal, n - 1)\n"
                )
            }
        )
        assert summaries["mod::ping"].journals
        assert summaries["mod::pong"].journals
