"""Shared helper: build an in-memory Project from {module: source}."""

from repro.analysis.callgraph import build_project
from repro.analysis.context import ModuleContext
from repro.analysis.extract import extract_module


def project_from(sources):
    """Build a :class:`Project` from ``{dotted_module: source}`` pairs.

    Paths are synthesized from the module names so path-based scoping
    (``repro/session/...``) behaves exactly like an on-disk tree.
    """
    extracts = []
    for module, source in sources.items():
        path = module.replace(".", "/") + ".py"
        ctx = ModuleContext.from_source(source, path=path, module=module)
        extracts.append(extract_module(ctx))
    return build_project(extracts)
