"""The repo must self-lint clean against its shipped baseline.

This is the invariant gate every future PR rides through: ``src/repro``
produces zero unbaselined findings, and every baseline entry (if any)
carries a justification.
"""

import pathlib

from repro.analysis import Baseline, LintEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestSelfLint:
    def test_src_is_clean_against_the_shipped_baseline(self):
        baseline = Baseline.load(REPO_ROOT / ".reprolint.json")
        engine = LintEngine(baseline=baseline)
        report = engine.run([REPO_ROOT / "src"])
        formatted = "\n".join(
            f"{f.location()}: {f.rule_id} {f.message}" for f in report.findings
        )
        assert report.findings == [], f"reprolint findings:\n{formatted}"
        assert report.errors == []
        assert report.unjustified_baseline == []
        assert report.files_checked > 90

    def test_shipped_baseline_entries_are_all_justified(self):
        baseline = Baseline.load(REPO_ROOT / ".reprolint.json")
        assert baseline.unjustified() == []
