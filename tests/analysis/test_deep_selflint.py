"""The repo must also deep-lint clean: the whole-program rules find no
reservation leaks, unjournaled flips, or concurrency hazards in
``src/repro`` — with an *empty* deep baseline.
"""

import pathlib

from repro.analysis import Baseline
from repro.analysis.deep import DeepLintEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestDeepSelfLint:
    def test_src_is_clean_under_the_whole_program_rules(self):
        baseline = Baseline.load(REPO_ROOT / ".reprolint.json")
        engine = DeepLintEngine(baseline=baseline, cache_dir=None)
        report = engine.run([REPO_ROOT / "src"])
        formatted = "\n".join(
            f"{f.location()}: {f.rule_id} {f.message}"
            for f in report.findings
        )
        assert report.findings == [], f"deep lint findings:\n{formatted}"
        assert report.errors == []
        assert report.unjustified_baseline == []
        assert report.files_checked > 90
