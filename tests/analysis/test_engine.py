"""Engine mechanics: pragmas, baseline, reporters, file collection."""

import json
import pathlib

import pytest

from repro.analysis import (
    Baseline,
    LintEngine,
    ModuleContext,
    iter_python_files,
    render_json,
    render_text,
)
from repro.analysis.findings import Finding
from repro.util.errors import ValidationError

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

FLAGGING_SNIPPET = "import time\n\n\ndef now():\n    return time.time()\n"


class TestSuppression:
    def test_inline_disable_suppresses_the_line(self, tmp_path):
        clean = FLAGGING_SNIPPET.replace(
            "time.time()", "time.time()  # reprolint: disable=REP001"
        )
        path = tmp_path / "wall.py"
        path.write_text(clean)
        report = LintEngine(select=["REP001"]).run([path])
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_of_other_rule_does_not_suppress(self, tmp_path):
        noisy = FLAGGING_SNIPPET.replace(
            "time.time()", "time.time()  # reprolint: disable=REP005"
        )
        path = tmp_path / "wall.py"
        path.write_text(noisy)
        report = LintEngine(select=["REP001"]).run([path])
        assert [f.rule_id for f in report.findings] == ["REP001"]


class TestBaseline:
    def _one_finding(self, tmp_path):
        path = tmp_path / "wall.py"
        path.write_text(FLAGGING_SNIPPET)
        report = LintEngine(select=["REP001"]).run([path])
        assert len(report.findings) == 1
        return path, report.findings[0]

    def test_baselined_finding_is_filtered(self, tmp_path):
        path, finding = self._one_finding(tmp_path)
        baseline = Baseline.from_findings([finding])
        for entry in baseline.entries.values():
            baseline.entries[entry.fingerprint] = type(entry)(
                rule_id=entry.rule_id,
                fingerprint=entry.fingerprint,
                path=entry.path,
                justification="legacy wall-clock call, tracked in #42",
            )
        report = LintEngine(select=["REP001"], baseline=baseline).run([path])
        assert report.findings == []
        assert report.baselined == 1
        assert report.clean

    def test_unjustified_entry_makes_the_run_dirty(self, tmp_path):
        path, finding = self._one_finding(tmp_path)
        baseline = Baseline.from_findings([finding])
        report = LintEngine(select=["REP001"], baseline=baseline).run([path])
        assert report.findings == []
        assert report.unjustified_baseline
        assert not report.clean

    def test_fingerprint_survives_line_moves(self, tmp_path):
        _, finding = self._one_finding(tmp_path)
        moved = tmp_path / "wall.py"
        moved.write_text("# a new leading comment\n" + FLAGGING_SNIPPET)
        report = LintEngine(select=["REP001"]).run([moved])
        assert report.findings[0].line != finding.line
        assert report.findings[0].fingerprint == finding.fingerprint

    def test_round_trips_through_disk(self, tmp_path):
        _, finding = self._one_finding(tmp_path)
        baseline = Baseline.from_findings([finding])
        target = tmp_path / ".reprolint.json"
        baseline.dump(target)
        loaded = Baseline.load(target)
        assert set(loaded.entries) == set(baseline.entries)
        assert loaded.match(finding) is not None

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}

    def test_malformed_file_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            Baseline.load(bad)


class TestContextFingerprints:
    def test_identical_lines_in_different_functions_differ(self, tmp_path):
        path = tmp_path / "wall.py"
        path.write_text(
            "import time\n"
            "\n"
            "\n"
            "def first():\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "def second():\n"
            "    return time.time()\n"
        )
        report = LintEngine(select=["REP001"]).run([path])
        assert len(report.findings) == 2
        fingerprints = {f.fingerprint for f in report.findings}
        assert len(fingerprints) == 2  # context qualname splits them

    def test_pre_context_baseline_entries_keep_matching(self, tmp_path):
        from repro.analysis.baseline import BaselineEntry

        path = tmp_path / "wall.py"
        path.write_text(FLAGGING_SNIPPET)
        (finding,) = LintEngine(select=["REP001"]).run([path]).findings
        legacy = Baseline(
            entries={
                finding.legacy_fingerprint: BaselineEntry(
                    rule_id="REP001",
                    fingerprint=finding.legacy_fingerprint,
                    path=finding.path,
                    justification="entry written before context hashing",
                )
            }
        )
        assert legacy.match(finding) is not None
        report = LintEngine(select=["REP001"], baseline=legacy).run([path])
        assert report.findings == []
        assert report.baselined == 1


class TestReporters:
    def _report(self, tmp_path):
        path = tmp_path / "wall.py"
        path.write_text(FLAGGING_SNIPPET)
        return LintEngine(select=["REP001"]).run([path])

    def test_text_reporter_formats_location_and_hint(self, tmp_path):
        report = self._report(tmp_path)
        text = render_text(report)
        assert "wall.py:5:" in text
        assert "REP001" in text
        assert "hint:" in text
        assert "1 finding" in text

    def test_json_reporter_is_machine_readable(self, tmp_path):
        report = self._report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP001"
        assert finding["fingerprint"]


class TestCollection:
    def test_directory_walk_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["mod.py"]

    def test_missing_path_is_an_error(self):
        with pytest.raises(ValidationError):
            list(iter_python_files(["definitely/not/here"]))

    def test_unparseable_file_is_an_engine_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        report = LintEngine().run([path])
        assert report.errors and "broken.py" in report.errors[0]
        assert not report.clean

    def test_unknown_rule_selection_is_rejected(self):
        with pytest.raises(ValidationError):
            LintEngine(select=["REP999"])


class TestModuleContext:
    def test_module_name_resolved_from_package_layout(self):
        ctx = ModuleContext.from_path(
            pathlib.Path("src/repro/core/offers.py").resolve()
        )
        assert ctx.module == "repro.core.offers"
        assert ctx.in_package("repro", "core")
        assert not ctx.in_package("repro", "faults")

    def test_finding_sorting_is_stable(self):
        a = Finding("REP001", "a.py", 3, 0, "m")
        b = Finding("REP001", "a.py", 1, 0, "m")
        assert sorted([a, b], key=Finding.sort_key)[0] is b
