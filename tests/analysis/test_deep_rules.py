"""Every whole-program rule has a flagging and a passing fixture.

Mirrors ``test_rules.py`` for the REP012+ rules, plus the headline
demonstration: a cross-function leak that the per-file REP002 rule
provably cannot see but the interprocedural engine reports.
"""

import pathlib

import pytest

from repro.analysis import LintEngine
from repro.analysis.deep import DeepLintEngine
from repro.analysis.registry import all_deep_rules, deep_rule_ids

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

DEEP_RULE_FIXTURES = {
    "REP012": (
        "deep/flagging/rep012_flag.py",
        "deep/passing/rep012_pass.py",
    ),
    "REP013": (
        "deep/flagging/rep013_flag.py",
        "deep/passing/rep013_pass.py",
    ),
    "REP014": (
        "deep/flagging/repro/session/rep014_flag.py",
        "deep/passing/repro/session/rep014_pass.py",
    ),
    "REP015": (
        "deep/flagging/repro/session/rep015_flag.py",
        "deep/passing/repro/session/rep015_pass.py",
    ),
    "REP016": (
        "deep/flagging/rep016_flag.py",
        "deep/passing/rep016_pass.py",
    ),
    "REP017": (
        "deep/flagging/rep017_flag.py",
        "deep/passing/repro/journal/recovery.py",
    ),
}


def deep_findings_for(rule_id, fixture):
    engine = DeepLintEngine(select=[rule_id], cache_dir=None)
    return engine.run([FIXTURES / fixture]).findings


class TestDeepFixturePairs:
    def test_every_deep_rule_has_a_fixture_pair(self):
        assert sorted(DEEP_RULE_FIXTURES) == [
            r.rule_id for r in all_deep_rules()
        ]

    @pytest.mark.parametrize("rule_id", sorted(DEEP_RULE_FIXTURES))
    def test_flagging_fixture_flags(self, rule_id):
        flag, _ = DEEP_RULE_FIXTURES[rule_id]
        findings = deep_findings_for(rule_id, flag)
        assert findings, f"{flag} produced no {rule_id} findings"
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 and f.hint for f in findings)

    @pytest.mark.parametrize("rule_id", sorted(DEEP_RULE_FIXTURES))
    def test_passing_fixture_is_clean(self, rule_id):
        _, ok = DEEP_RULE_FIXTURES[rule_id]
        assert deep_findings_for(rule_id, ok) == []

    def test_passing_tree_is_clean_under_every_deep_rule(self):
        engine = DeepLintEngine(
            select=sorted(deep_rule_ids()), cache_dir=None
        )
        report = engine.run([FIXTURES / "deep" / "passing"])
        assert report.findings == []
        assert report.errors == []


class TestCooperativeRoots:
    """REP016 roots at cooperative-scheduler tasks, not just async."""

    def test_generator_task_in_service_package_is_a_blocking_root(self):
        findings = deep_findings_for(
            "REP016", "deep/flagging/repro/service/rep016_coop_flag.py"
        )
        assert findings, "cooperative task did not root REP016"
        assert any("cooperative task" in f.message for f in findings)
        assert any("fsync" in f.message for f in findings)

    def test_non_blocking_cooperative_task_is_clean(self):
        assert deep_findings_for(
            "REP016", "deep/passing/repro/service/rep016_coop_pass.py"
        ) == []


class TestCrossFunctionLeak:
    """The deeppkg fixture: REP002 misses it, REP012 catches it."""

    def test_per_file_pairing_rule_provably_misses_the_leak(self):
        report = LintEngine(select=["REP002"]).run([FIXTURES / "deeppkg"])
        assert report.findings == []

    def test_interprocedural_engine_reports_it(self):
        engine = DeepLintEngine(select=["REP012"], cache_dir=None)
        report = engine.run([FIXTURES / "deeppkg"])
        assert [f.rule_id for f in report.findings] == ["REP012"]
        (finding,) = report.findings
        assert finding.path.endswith("driver.py")
        assert "stream" in finding.message
        assert finding.context == "run_session"

    def test_whole_program_findings_carry_fingerprint_context(self):
        engine = DeepLintEngine(select=["REP012"], cache_dir=None)
        (finding,) = engine.run([FIXTURES / "deeppkg"]).findings
        assert finding.source_line.strip().startswith("stream =")
        assert finding.fingerprint


class TestDeepSuppression:
    def test_inline_pragma_silences_a_deep_finding(self, tmp_path):
        source = (FIXTURES / "deep/flagging/rep012_flag.py").read_text()
        source = source.replace(
            "stream = reserve(server, spec)",
            "stream = reserve(server, spec)  # reprolint: disable=REP012",
        )
        target = tmp_path / "suppressed.py"
        target.write_text(source)
        engine = DeepLintEngine(select=["REP012"], cache_dir=None)
        report = engine.run([target])
        assert report.findings == []
        assert report.suppressed == 1

    def test_baseline_matches_deep_findings(self, tmp_path):
        from repro.analysis import Baseline

        target = tmp_path / "leak.py"
        target.write_text(
            (FIXTURES / "deep/flagging/rep012_flag.py").read_text()
        )
        first = DeepLintEngine(select=["REP012"], cache_dir=None).run(
            [target]
        )
        baseline = Baseline.from_findings(first.findings)
        engine = DeepLintEngine(
            select=["REP012"], baseline=baseline, cache_dir=None
        )
        report = engine.run([target])
        assert report.findings == []
        assert report.baselined == 1
