"""Dataflow over the CFG: leak sites and journal domination."""

from repro.analysis.dataflow import leak_sites, unjournaled_flips
from tests.analysis.projutil import project_from


def leaks_of(sources, ref):
    project = project_from(sources)
    func = project.functions[ref]
    return leak_sites(func, project.classifier())


class TestExitLeaks:
    def test_unreleased_acquisition_leaks_at_exit(self):
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert [var for var, _l, _c in exit_leaks] == ["stream"]
        assert raise_leaks == []

    def test_release_settles_the_site(self):
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    server.release(stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert (exit_leaks, raise_leaks) == ([], [])

    def test_returning_the_acquisition_transfers_ownership(self):
        exit_leaks, _ = leaks_of(
            {
                "mod": (
                    "def grab(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    return stream\n"
                )
            },
            "mod::grab",
        )
        assert exit_leaks == []

    def test_rebinding_drops_the_old_site_on_the_normal_path(self):
        # Deliberate under-approximation: a rebind may follow an
        # ownership hand-off the analysis cannot see, so the old site is
        # dropped (no REP012) — but the *exceptional* edge of the second
        # admit still carries it: if that admit raises, the first
        # reservation really does leak.
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def run(server, a, b):\n"
                    "    stream = server.admit(a)\n"
                    "    stream = server.admit(b)\n"
                    "    server.release(stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert exit_leaks == []
        assert [line for _v, line, _c in raise_leaks] == [2]

    def test_an_alias_keeps_a_rebound_site_alive(self):
        exit_leaks, _ = leaks_of(
            {
                "mod": (
                    "def run(server, a, b):\n"
                    "    stream = server.admit(a)\n"
                    "    kept = stream\n"
                    "    stream = server.admit(b)\n"
                    "    server.release(stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert [(var, line) for var, line, _c in exit_leaks] == [("kept", 2)]

    def test_releasing_one_alias_settles_every_alias(self):
        exit_leaks, _ = leaks_of(
            {
                "mod": (
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    handle = stream\n"
                    "    server.release(handle)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert exit_leaks == []

    def test_interprocedural_release_through_a_helper(self):
        exit_leaks, _ = leaks_of(
            {
                "mod": (
                    "def free(server, r):\n"
                    "    server.release(r)\n"
                    "\n"
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    free(server, stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert exit_leaks == []


class TestRaiseLeaks:
    def test_risky_call_carries_held_state_to_the_raise_exit(self):
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def validate(spec):\n"
                    "    if spec is None:\n"
                    "        raise ValueError(spec)\n"
                    "\n"
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    validate(spec)\n"
                    "    server.release(stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert exit_leaks == []
        assert [var for var, _l, _c in raise_leaks] == ["stream"]

    def test_handler_rollback_clears_the_raise_path(self):
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def validate(spec):\n"
                    "    if spec is None:\n"
                    "        raise ValueError(spec)\n"
                    "\n"
                    "def run(server, spec):\n"
                    "    stream = server.admit(spec)\n"
                    "    try:\n"
                    "        validate(spec)\n"
                    "    except ValueError:\n"
                    "        server.rollback(stream)\n"
                    "        raise\n"
                    "    server.release(stream)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        assert (exit_leaks, raise_leaks) == ([], [])

    def test_non_risky_statements_do_not_fabricate_leak_paths(self):
        # tuple() and unresolved telemetry calls get conservative CFG
        # edges, but the dataflow only follows edges from statements
        # that can demonstrably raise.
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def run(server, spec, telemetry):\n"
                    "    stream = server.admit(spec)\n"
                    "    snapshot = tuple()\n"
                    "    telemetry.count(spec)\n"
                    "    server.release(stream)\n"
                    "    return snapshot\n"
                )
            },
            "mod::run",
        )
        assert (exit_leaks, raise_leaks) == ([], [])

    def test_mid_loop_failure_leaks_the_earlier_acquisitions(self):
        exit_leaks, raise_leaks = leaks_of(
            {
                "mod": (
                    "def run(server, specs):\n"
                    "    taken = []\n"
                    "    for spec in specs:\n"
                    "        r = server.admit(spec)\n"
                    "        taken.append(r)\n"
                    "    for r in taken:\n"
                    "        server.release(r)\n"
                    "    return True\n"
                )
            },
            "mod::run",
        )
        # Normal path: everything acquired is released through the
        # container alias; exceptional path: an admit failing mid-loop
        # leaves the earlier iterations' reservations held.
        assert exit_leaks == []
        assert raise_leaks


class TestUnjournaledFlips:
    FLAGGING = (
        "class CommitmentState:\n"
        "    COMMITTED = 'committed'\n"
        "\n"
        "class Commitment:\n"
        "    def commit(self, urgent):\n"
        "        if not urgent:\n"
        "            self._journal.journal_event('commit')\n"
        "        self.state = CommitmentState.COMMITTED\n"
    )
    PASSING = (
        "class CommitmentState:\n"
        "    COMMITTED = 'committed'\n"
        "\n"
        "class Commitment:\n"
        "    def commit(self):\n"
        "        self._journal.journal_event('commit')\n"
        "        self.state = CommitmentState.COMMITTED\n"
    )

    def test_branch_that_skips_the_journal_is_flagged(self):
        project = project_from({"mod": self.FLAGGING})
        func = project.functions["mod::Commitment.commit"]
        flips = unjournaled_flips(func, project.classifier())
        assert [flip.line for flip in flips] == [8]

    def test_dominating_journal_write_is_clean(self):
        project = project_from({"mod": self.PASSING})
        func = project.functions["mod::Commitment.commit"]
        assert unjournaled_flips(func, project.classifier()) == []
