"""CLI behaviour of ``lint --deep``, the extract cache, and ``--changed``."""

import json
import pathlib
import shutil

import pytest

import repro.analysis.gitdiff as gitdiff
from repro.analysis.gitdiff import changed_python_files
from repro.cli import main
from repro.util.errors import ValidationError

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

FLAGGING_SNIPPET = "import time\n\n\ndef now():\n    return time.time()\n"


class TestDeepFlag:
    def test_deep_flagging_fixtures_report_every_deep_rule(self, capsys):
        code = main([
            "lint", str(FIXTURES / "deep" / "flagging"),
            str(FIXTURES / "deeppkg"),
            "--deep", "--no-cache", "--no-baseline",
        ])
        out = capsys.readouterr().out
        assert code == 1
        for rule_id in (
            "REP012", "REP013", "REP014", "REP015", "REP016", "REP017",
        ):
            assert rule_id in out, f"{rule_id} missing from --deep output"
        assert "deep:" in out and "cache off" in out

    def test_deep_rule_selection_without_deep_is_a_usage_error(self, capsys):
        code = main([
            "lint", str(FIXTURES / "deeppkg"), "--select", "REP012",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "REP012" in err and "--deep" in err

    def test_list_rules_marks_the_whole_program_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP012" in out and "REP017" in out
        assert "[--deep]" in out

    def test_json_payload_carries_cache_counters(self, tmp_path, capsys):
        code = main([
            "lint", str(FIXTURES / "deeppkg"), "--deep", "--no-baseline",
            "--cache-dir", str(tmp_path / "cache"), "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cold_files"] == 3
        assert payload["warm_files"] == 0


class TestDeepCache:
    def test_second_run_is_fully_warm_and_agrees_with_cold(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        argv = [
            "lint", str(FIXTURES / "deeppkg"), "--deep", "--no-baseline",
            "--cache-dir", str(cache), "--format", "json",
        ]
        main(argv)
        cold = json.loads(capsys.readouterr().out)
        main(argv)
        warm = json.loads(capsys.readouterr().out)
        assert cold["cold_files"] == 3 and cold["warm_files"] == 0
        assert warm["cold_files"] == 0 and warm["warm_files"] == 3
        assert warm["findings"] == cold["findings"]

    def test_editing_a_file_invalidates_only_its_entry(
        self, tmp_path, capsys
    ):
        tree = tmp_path / "deeppkg"
        shutil.copytree(FIXTURES / "deeppkg", tree)
        cache = tmp_path / "cache"
        argv = [
            "lint", str(tree), "--deep", "--no-baseline",
            "--cache-dir", str(cache), "--format", "json",
        ]
        main(argv)
        capsys.readouterr()
        driver = tree / "driver.py"
        driver.write_text(driver.read_text() + "\n# touched\n")
        main(argv)
        payload = json.loads(capsys.readouterr().out)
        assert payload["cold_files"] == 1
        assert payload["warm_files"] == 2

    def test_corrupt_cache_entry_falls_back_to_a_cold_pass(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        argv = [
            "lint", str(FIXTURES / "deeppkg"), "--deep", "--no-baseline",
            "--cache-dir", str(cache), "--format", "json",
        ]
        main(argv)
        capsys.readouterr()
        for entry in cache.glob("*.json"):
            entry.write_text("{not json")
        main(argv)
        payload = json.loads(capsys.readouterr().out)
        assert payload["cold_files"] == 3
        assert payload["warm_files"] == 0


class TestChangedFlag:
    @staticmethod
    def _fake_git(diff_lines, untracked_lines):
        def fake(args, cwd=None):
            if args[0] == "diff":
                return list(diff_lines)
            return list(untracked_lines)

        return fake

    def test_changed_limits_lint_to_the_diffed_files(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "wall.py").write_text(FLAGGING_SNIPPET)
        (tmp_path / "other.py").write_text(FLAGGING_SNIPPET)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            gitdiff, "_git_lines", self._fake_git(["wall.py"], [])
        )
        code = main(["lint", "--changed", "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "wall.py" in out
        assert "other.py" not in out

    def test_changed_includes_untracked_files(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "fresh.py").write_text(FLAGGING_SNIPPET)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            gitdiff, "_git_lines", self._fake_git([], ["fresh.py"])
        )
        assert main(["lint", "--changed", "--no-baseline"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_no_changes_is_a_clean_exit(self, monkeypatch, capsys):
        monkeypatch.setattr(gitdiff, "_git_lines", self._fake_git([], []))
        assert main(["lint", "--changed", "--no-baseline"]) == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_changed_composes_with_deep(
        self, tmp_path, monkeypatch, capsys
    ):
        source = (FIXTURES / "deep/flagging/rep012_flag.py").read_text()
        (tmp_path / "leak.py").write_text(source)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            gitdiff, "_git_lines", self._fake_git(["leak.py"], [])
        )
        code = main([
            "lint", "--changed", "--deep", "--no-cache", "--no-baseline",
            "--select", "REP012",
        ])
        assert code == 1
        assert "REP012" in capsys.readouterr().out


class TestChangedFileSelection:
    def test_filters_to_existing_python_files(self, tmp_path, monkeypatch):
        (tmp_path / "kept.py").write_text("x = 1\n")
        monkeypatch.setattr(
            gitdiff,
            "_git_lines",
            lambda args, cwd=None: (
                ["kept.py", "kept.py", "notes.md", "deleted.py"]
                if args[0] == "diff"
                else []
            ),
        )
        files = changed_python_files(root=tmp_path)
        assert [f.name for f in files] == ["kept.py"]

    def test_git_failure_surfaces_as_validation_error(self, monkeypatch):
        def boom(args, cwd=None):
            raise ValidationError("git diff: exit 128")

        monkeypatch.setattr(gitdiff, "_git_lines", boom)
        with pytest.raises(ValidationError):
            changed_python_files()
