"""JSON persistence of the metadata database."""

import json

import pytest

from repro.documents.builder import make_news_article
from repro.metadata.database import MetadataDatabase
from repro.metadata.persistence import (
    SCHEMA_VERSION,
    dumps,
    load_database,
    loads,
    save_database,
)
from repro.util.errors import PersistenceError


@pytest.fixture
def db():
    database = MetadataDatabase()
    database.insert_document(make_news_article("doc.p1"))
    database.insert_document(make_news_article("doc.p2"))
    return database


class TestDumpsLoads:
    def test_roundtrip_preserves_documents(self, db):
        restored = loads(dumps(db))
        for document_id in db.iter_document_ids():
            assert restored.get_document(document_id) == db.get_document(
                document_id
            )

    def test_envelope_versioned(self, db):
        envelope = json.loads(dumps(db))
        assert envelope["schema_version"] == SCHEMA_VERSION

    def test_wrong_version_rejected(self, db):
        envelope = json.loads(dumps(db))
        envelope["schema_version"] = 999
        with pytest.raises(PersistenceError, match="version"):
            loads(json.dumps(envelope))

    def test_invalid_json_rejected(self):
        with pytest.raises(PersistenceError):
            loads("{not json")

    def test_non_object_root_rejected(self):
        with pytest.raises(PersistenceError):
            loads("[1, 2]")

    def test_missing_relations_rejected(self, db):
        with pytest.raises(PersistenceError):
            loads(json.dumps({"schema_version": SCHEMA_VERSION}))


class TestFiles:
    def test_save_and_load(self, db, tmp_path):
        path = save_database(db, tmp_path / "meta.json")
        restored = load_database(path)
        assert restored.variant_count == db.variant_count

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no snapshot"):
            load_database(tmp_path / "absent.json")

    def test_empty_database_roundtrip(self, tmp_path):
        db = MetadataDatabase()
        path = save_database(db, tmp_path / "empty.json")
        assert load_database(path).document_count == 0
