"""Metadata database: ingestion, reassembly, queries."""

import pytest

from repro.documents.builder import make_news_article
from repro.documents.media import Codecs, ColorMode
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import VideoQoS
from repro.metadata.database import MetadataDatabase
from repro.util.errors import DuplicateKeyError, NotFoundError


@pytest.fixture
def document():
    return make_news_article("doc.db")


@pytest.fixture
def db(document):
    database = MetadataDatabase()
    database.insert_document(document)
    return database


class TestIngestion:
    def test_counts(self, db, document):
        assert db.document_count == 1
        assert db.monomedia_count == 4
        assert db.variant_count == 16

    def test_duplicate_document_rejected(self, db, document):
        with pytest.raises(DuplicateKeyError):
            db.insert_document(document)

    def test_insert_catalog(self, document):
        from repro.documents.catalog import DocumentCatalog

        db = MetadataDatabase()
        db.insert_catalog(DocumentCatalog([document]))
        assert db.document_count == 1


class TestReassembly:
    def test_document_roundtrip(self, db, document):
        assert db.get_document(document.document_id) == document

    def test_monomedia_roundtrip(self, db, document):
        component = document.components[0]
        assert db.get_monomedia(component.monomedia_id) == component

    def test_variant_roundtrip(self, db, document):
        variant = document.components[0].variants[0]
        assert db.get_variant(variant.variant_id) == variant

    def test_missing_lookups(self, db):
        with pytest.raises(NotFoundError):
            db.get_document("ghost")
        with pytest.raises(NotFoundError):
            db.get_monomedia("ghost")
        with pytest.raises(NotFoundError):
            db.get_variant("ghost")

    def test_to_catalog(self, db, document):
        catalog = db.to_catalog()
        assert catalog.get(document.document_id) == document


class TestQueries:
    def test_variants_for_monomedia(self, db, document):
        mid = document.components[0].monomedia_id
        variants = db.variants_for_monomedia(mid)
        assert len(variants) == 8
        assert all(v.monomedia_id == mid for v in variants)

    def test_variants_on_server(self, db):
        on_a = db.variants_on_server("server-a")
        assert on_a and all(v.server_id == "server-a" for v in on_a)

    def test_select_variants(self, db):
        videos = db.select_variants(lambda v: v.medium.value == "video")
        assert len(videos) == 8

    def test_server_ids(self, db):
        assert db.server_ids() == {"server-a", "server-b"}


class TestMutation:
    def _extra_variant(self, document):
        component = document.components[0]
        template = component.variants[0]
        return Variant(
            variant_id="extra.v",
            monomedia_id=component.monomedia_id,
            codec=Codecs.MPEG1,
            qos=VideoQoS(color=ColorMode.GREY, frame_rate=5, resolution=180),
            size_bits=1e7,
            block_stats=BlockStats(1e4, 1e4, 5.0),
            server_id="server-c",
            duration_s=template.duration_s,
        )

    def test_add_variant(self, db, document):
        db.add_variant(self._extra_variant(document))
        assert db.variant_count == 17
        assert "server-c" in db.server_ids()

    def test_add_variant_unknown_monomedia(self, db, document):
        variant = self._extra_variant(document)
        bad = Variant(
            variant_id=variant.variant_id,
            monomedia_id="ghost",
            codec=variant.codec,
            qos=variant.qos,
            size_bits=variant.size_bits,
            block_stats=variant.block_stats,
            server_id=variant.server_id,
            duration_s=variant.duration_s,
        )
        with pytest.raises(NotFoundError):
            db.add_variant(bad)

    def test_remove_variant(self, db, document):
        victim = document.components[0].variants[0]
        db.remove_variant(victim.variant_id)
        assert db.variant_count == 15
        with pytest.raises(NotFoundError):
            db.get_variant(victim.variant_id)

    def test_remove_document_cascades(self, db, document):
        db.remove_document(document.document_id)
        assert db.document_count == 0
        assert db.monomedia_count == 0
        assert db.variant_count == 0

    def test_reassembly_after_add(self, db, document):
        db.add_variant(self._extra_variant(document))
        rebuilt = db.get_document(document.document_id)
        assert len(rebuilt.components[0].variants) == 9
