"""Record layer: QoS / sync / variant (de)serialization."""

import pytest

from repro.documents.media import AudioGrade, Codecs, ColorMode, Language
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    TextQoS,
    VideoQoS,
)
from repro.documents.synchronization import (
    ScreenRegion,
    SpatialLayout,
    SyncConstraints,
    TemporalRelation,
    TemporalRelationKind,
)
from repro.metadata.schema import (
    VariantRecord,
    qos_from_record,
    qos_to_record,
    sync_from_record,
    sync_to_record,
)
from repro.util.errors import PersistenceError

ALL_QOS = [
    VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720),
    AudioQoS(grade=AudioGrade.CD, language=Language.FRENCH),
    ImageQoS(color=ColorMode.GREY, resolution=360),
    TextQoS(language=Language.ENGLISH),
    GraphicQoS(color=ColorMode.SUPER_COLOR, resolution=100),
]


class TestQoSRecords:
    @pytest.mark.parametrize("qos", ALL_QOS, ids=lambda q: type(q).__name__)
    def test_roundtrip(self, qos):
        assert qos_from_record(qos_to_record(qos)) == qos

    def test_record_is_json_plain(self):
        import json

        for qos in ALL_QOS:
            json.dumps(qos_to_record(qos))  # must not raise

    def test_missing_medium_rejected(self):
        with pytest.raises(PersistenceError):
            qos_from_record({"color": "grey"})

    def test_malformed_fields_rejected(self):
        with pytest.raises(PersistenceError):
            qos_from_record({"medium": "video", "nonsense": 1})


class TestSyncRecords:
    def test_roundtrip_full(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "a", "b", 1.5),
                TemporalRelation(TemporalRelationKind.PARALLEL, "a", "c"),
            ),
            spatial=SpatialLayout({"a": ScreenRegion(0, 0, 10, 10)}),
        )
        assert sync_from_record(sync_to_record(sync)) == sync

    def test_roundtrip_empty(self):
        sync = SyncConstraints()
        assert sync_from_record(sync_to_record(sync)) == sync


class TestVariantRecord:
    def test_roundtrip(self):
        variant = Variant(
            variant_id="v1",
            monomedia_id="m1",
            codec=Codecs.MPEG1,
            qos=ALL_QOS[0],
            size_bits=1e8,
            block_stats=BlockStats(3e5, 1e5, 25.0),
            server_id="server-a",
            duration_s=120.0,
        )
        assert VariantRecord.from_variant(variant).to_variant() == variant

    def test_as_dict_json_plain(self):
        import json

        variant = Variant(
            variant_id="v1",
            monomedia_id="m1",
            codec=Codecs.MPEG1,
            qos=ALL_QOS[0],
            size_bits=1e8,
            block_stats=BlockStats(3e5, 1e5, 25.0),
            server_id="server-a",
            duration_s=120.0,
        )
        json.dumps(VariantRecord.from_variant(variant).as_dict())
