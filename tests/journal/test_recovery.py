"""Journal replay: every holder classification, idempotence, reaping."""

import pytest

from repro.core.classification import classify_space
from repro.core.commitment import Commitment, ResourceCommitter
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.journal import (
    HolderOutcome,
    JournalRecordType,
    RecoveryManager,
    ReservationJournal,
)
from repro.network.qosparams import FlowSpec
from repro.session import EventLoop, SessionSupervisor
from repro.util.errors import RecoveryError

FLOW = FlowSpec(
    max_bit_rate=2e6,
    avg_bit_rate=1e6,
    max_delay_s=0.5,
    max_jitter_s=0.1,
    max_loss_rate=0.01,
)


def take_resources(servers, transport, holder, rate_bps=2e6):
    """Manually reserve one stream and one flow under ``holder``."""
    stream = servers["server-a"].admit("m.v.v1", rate_bps, holder=holder)
    flow = transport.reserve(
        "server-a-net", "client-net", FLOW, holder=holder
    )
    return stream, flow


def reserved_payload(stream, flow, *, reserved_at, choice_period_s=60.0):
    return {
        "offer_id": "offer-1",
        "reserved_at": reserved_at,
        "choice_period_s": choice_period_s,
        "streams": [
            {
                "server_id": stream.server_id,
                "stream_id": stream.stream_id,
                "rate_bps": stream.rate_bps,
            }
        ],
        "flows": [{"flow_id": flow.flow_id, "reserved_bps": flow.reserved_bps}],
    }


def total_reserved(servers, transport):
    return (
        sum(s.stream_count for s in servers.values()),
        transport.flow_count,
    )


@pytest.fixture
def recovery(servers, transport, clock):
    journal = ReservationJournal()
    manager = RecoveryManager(journal, servers, transport, clock=clock)
    return journal, manager


class TestOrphans:
    def test_intent_only_holder_is_swept_by_ledger_scan(
        self, recovery, servers, transport
    ):
        journal, manager = recovery
        take_resources(servers, transport, "s1")
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)

        report = manager.replay()

        assert report.outcomes == {"s1": HolderOutcome.ORPHAN_RELEASED}
        assert total_reserved(servers, transport) == (0, 0)
        assert report.leak_free
        last = journal.last_for("s1")
        assert last.record_type is JournalRecordType.RELEASED
        assert last.payload["reason"] == "recovery-orphan"


class TestReservedHolders:
    def test_deadline_passed_during_outage_expires(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(
            JournalRecordType.RESERVED,
            "s1",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        clock.advance(120.0)

        report = manager.replay()

        assert report.outcomes == {"s1": HolderOutcome.EXPIRED_RELEASED}
        assert total_reserved(servers, transport) == (0, 0)
        assert journal.last_for("s1").record_type is JournalRecordType.EXPIRED

    def test_deadline_pending_is_rearmed_and_expires_on_time(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(
            JournalRecordType.RESERVED,
            "s1",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        clock.advance(10.0)
        loop = EventLoop(clock)

        report = manager.replay(loop=loop)

        assert report.outcomes == {"s1": HolderOutcome.REARMED}
        assert report.leak_free  # a re-armed holder is live, not a leak
        commitment = report.pending["s1"]
        assert commitment.remaining(clock.now()) == pytest.approx(50.0)
        assert total_reserved(servers, transport) == (1, 1)

        loop.run()  # the re-armed choicePeriod timer fires at t=60

        assert clock.now() == pytest.approx(60.0)
        assert total_reserved(servers, transport) == (0, 0)
        assert journal.last_for("s1").record_type is JournalRecordType.EXPIRED
        assert journal.last_for("s1").payload["recovered"] is True

    def test_rearmed_commitment_can_still_confirm(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(
            JournalRecordType.RESERVED,
            "s1",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        clock.advance(10.0)
        loop = EventLoop(clock)
        report = manager.replay(loop=loop)
        commitment = report.pending["s1"]

        commitment.confirm(clock.now())
        commitment.confirm(clock.now())  # idempotent
        loop.run()  # the timer still fires, but must be a no-op now

        assert total_reserved(servers, transport) == (1, 1)
        last = journal.last_for("s1")
        assert last.record_type is JournalRecordType.CONFIRMED
        assert last.payload["recovered"] is True

    def test_expired_recovered_commitment_rejects_confirmation(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        journal.append(
            JournalRecordType.RESERVED,
            "s1",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        clock.advance(10.0)
        report = manager.replay(loop=EventLoop(clock))
        commitment = report.pending["s1"]
        clock.advance(100.0)

        assert commitment.expire_check(clock.now()) is True
        with pytest.raises(RecoveryError):
            commitment.confirm(clock.now())
        assert total_reserved(servers, transport) == (0, 0)


class TestConfirmedHolders:
    def journal_confirmed(self, journal, stream, flow, holder="s1"):
        journal.append(JournalRecordType.INTENT, holder, timestamp=0.0)
        journal.append(
            JournalRecordType.RESERVED,
            holder,
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        journal.append(
            JournalRecordType.CONFIRMED,
            holder,
            {"offer_id": "offer-1"},
            timestamp=1.0,
        )

    def test_confirmed_holder_is_preserved_and_adopted(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        self.journal_confirmed(journal, stream, flow)
        supervisor = SessionSupervisor(clock=clock, heartbeat_timeout_s=30.0)

        report = manager.replay(supervisor=supervisor)

        assert report.outcomes == {"s1": HolderOutcome.ACTIVE}
        assert report.leak_free
        assert total_reserved(servers, transport) == (1, 1)
        assert supervisor.watched_holders() == ("s1",)

    def test_silent_adopted_holder_is_released_on_timeout(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        self.journal_confirmed(journal, stream, flow)
        supervisor = SessionSupervisor(clock=clock, heartbeat_timeout_s=30.0)
        manager.replay(supervisor=supervisor)

        clock.advance(31.0)
        acted = supervisor.check()

        assert acted == ["s1"]
        assert total_reserved(servers, transport) == (0, 0)
        last = journal.last_for("s1")
        assert last.record_type is JournalRecordType.RELEASED
        assert last.payload["reason"] == "supervisor-timeout"

    def test_heartbeats_keep_the_adopted_holder_alive(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        self.journal_confirmed(journal, stream, flow)
        supervisor = SessionSupervisor(clock=clock, heartbeat_timeout_s=30.0)
        manager.replay(supervisor=supervisor)

        for _ in range(4):
            clock.advance(20.0)
            assert supervisor.heartbeat("s1")
            assert supervisor.check() == []
        assert total_reserved(servers, transport) == (1, 1)

    def test_adapt_switch_is_an_active_timeline(
        self, recovery, servers, transport, clock
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s2")
        journal.append(
            JournalRecordType.RESERVED,
            "s2",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        journal.append(
            JournalRecordType.ADAPT_SWITCH,
            "s2",
            {"from_holder": "s1", "position_s": 12.0},
            timestamp=5.0,
        )
        report = manager.replay()
        assert report.outcomes == {"s2": HolderOutcome.ACTIVE}
        assert total_reserved(servers, transport) == (1, 1)


class TestTerminalHolders:
    def test_terminal_with_leftovers_is_redone(
        self, recovery, servers, transport
    ):
        journal, manager = recovery
        stream, flow = take_resources(servers, transport, "s1")
        journal.append(
            JournalRecordType.RESERVED,
            "s1",
            reserved_payload(stream, flow, reserved_at=0.0),
            timestamp=0.0,
        )
        # RELEASED was journaled but the crash struck before the ledgers
        # were touched (append-before-apply): redo it now.
        journal.append(
            JournalRecordType.RELEASED,
            "s1",
            {"reason": "teardown"},
            timestamp=1.0,
        )
        report = manager.replay()
        assert report.outcomes == {"s1": HolderOutcome.REDO_RELEASED}
        assert total_reserved(servers, transport) == (0, 0)

    def test_terminal_without_leftovers_is_clean(self, recovery):
        journal, manager = recovery
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(
            JournalRecordType.RELEASED,
            "s1",
            {"reason": "commit-failed"},
            timestamp=0.0,
        )
        report = manager.replay()
        assert report.outcomes == {"s1": HolderOutcome.CLEAN}
        assert report.streams_released == 0
        assert report.flows_released == 0

    def test_replay_is_idempotent(self, recovery, servers, transport, clock):
        journal, manager = recovery
        take_resources(servers, transport, "s1")
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)

        first = manager.replay()
        second = manager.replay()

        assert first.outcomes["s1"] == HolderOutcome.ORPHAN_RELEASED
        # The orphan release was journaled, so the second replay sees a
        # terminal timeline with nothing left to free.
        assert second.outcomes["s1"] == HolderOutcome.CLEAN
        assert second.streams_released == 0
        assert second.flows_released == 0
        assert second.leak_free


class TestReaperInterplay:
    """A reaped lease is terminal in the journal: recovery must never
    release it a second time (satellite: reap + replay interplay)."""

    @pytest.fixture
    def space(self, document, client):
        return build_offer_space(document, client, default_cost_model())

    def test_reaped_lease_is_not_double_released(
        self, space, servers, transport, clock, client, balanced_profile
    ):
        journal = ReservationJournal()
        committer = ResourceCommitter(
            transport, servers, clock=clock, lease_ttl_s=30.0, journal=journal
        )
        ranked = classify_space(
            space, balanced_profile, default_importance()
        )
        bundle = committer.try_commit(
            ranked[0].offer, space, client.access_point, holder="s1"
        )
        commitment = Commitment(
            bundle, committer, reserved_at=clock.now(), choice_period_s=60.0
        )
        commitment.confirm(clock.now())

        clock.advance(31.0)  # the lease lapsed (no renewal arrived)
        assert committer.reap_expired() == 1
        assert total_reserved(servers, transport) == (0, 0)
        reap = journal.last_for("s1")
        assert reap.record_type is JournalRecordType.RELEASED
        assert reap.payload["reason"] == "lease-reaped"

        manager = RecoveryManager(journal, servers, transport, clock=clock)
        report = manager.replay()

        assert report.outcomes == {"s1": HolderOutcome.CLEAN}
        assert report.streams_released == 0
        assert report.flows_released == 0
        assert report.leak_free
        # The commitment object itself still tears down idempotently.
        commitment.release()
        assert total_reserved(servers, transport) == (0, 0)
