"""Journal record serialization: round-trip, checksums, malformations."""

import json

import pytest

from repro.journal import (
    ACTIVE_TYPES,
    JournalRecord,
    JournalRecordType,
    TERMINAL_TYPES,
)
from repro.util.errors import JournalError


def make_record(**overrides):
    defaults = dict(
        sequence=1,
        record_type=JournalRecordType.RESERVED,
        holder="session-1",
        timestamp=12.5,
        payload={"offer_id": "offer-1", "choice_period_s": 60.0},
    )
    defaults.update(overrides)
    return JournalRecord(**defaults)


class TestRoundTrip:
    @pytest.mark.parametrize("record_type", list(JournalRecordType))
    def test_every_type_round_trips(self, record_type):
        record = make_record(record_type=record_type)
        assert JournalRecord.from_line(record.to_line()) == record

    def test_payload_survives_nesting(self):
        record = make_record(
            payload={
                "streams": [{"server_id": "server-a", "stream_id": "s/1"}],
                "flows": [],
                "reason": "teardown",
            }
        )
        parsed = JournalRecord.from_line(record.to_line())
        assert parsed.payload == record.payload

    def test_line_is_one_json_object_with_crc(self):
        blob = json.loads(make_record().to_line())
        assert blob["crc"] == make_record().checksum()
        assert "\n" not in make_record().to_line()


class TestValidation:
    def test_sequence_must_be_positive(self):
        with pytest.raises(JournalError):
            make_record(sequence=0)

    def test_holder_must_be_non_empty(self):
        with pytest.raises(JournalError):
            make_record(holder="")

    def test_unknown_type_rejected(self):
        line = make_record().to_line().replace('"reserved"', '"exploded"')
        with pytest.raises(JournalError):
            JournalRecord.from_line(line)

    def test_corrupted_payload_fails_checksum(self):
        line = make_record().to_line().replace("offer-1", "offer-2")
        with pytest.raises(JournalError, match="checksum"):
            JournalRecord.from_line(line)

    def test_truncated_line_rejected(self):
        line = make_record().to_line()
        with pytest.raises(JournalError):
            JournalRecord.from_line(line[: len(line) // 2])

    def test_non_object_line_rejected(self):
        with pytest.raises(JournalError):
            JournalRecord.from_line("[1, 2, 3]")

    def test_missing_crc_rejected(self):
        blob = json.loads(make_record().to_line())
        del blob["crc"]
        with pytest.raises(JournalError):
            JournalRecord.from_line(json.dumps(blob))


class TestTaxonomy:
    def test_terminal_types_end_ownership(self):
        assert TERMINAL_TYPES == {
            JournalRecordType.RELEASED,
            JournalRecordType.EXPIRED,
        }
        for record_type in JournalRecordType:
            assert make_record(record_type=record_type).is_terminal == (
                record_type in TERMINAL_TYPES
            )

    def test_active_types_mean_playing(self):
        assert ACTIVE_TYPES == {
            JournalRecordType.CONFIRMED,
            JournalRecordType.ADAPT_SWITCH,
        }

    def test_describe_names_the_reason(self):
        record = make_record(
            record_type=JournalRecordType.RELEASED,
            payload={"reason": "lease-reaped"},
        )
        assert "lease-reaped" in record.describe()
        assert "session-1" in record.describe()
