"""The write-ahead store: append discipline, file backend, torn tails."""

import pytest

from repro.journal import (
    JournalRecordType,
    ReservationJournal,
    read_journal_bytes,
)
from repro.util.errors import JournalError, ManagerCrashError


def fill(journal, holders=("s1", "s2")):
    t = 0.0
    for holder in holders:
        journal.append(JournalRecordType.INTENT, holder, timestamp=t)
        journal.append(
            JournalRecordType.RESERVED,
            holder,
            {"choice_period_s": 60.0},
            timestamp=t,
        )
        t += 5.0
    return journal


class TestInMemory:
    def test_sequences_strictly_increase(self):
        journal = fill(ReservationJournal())
        assert [r.sequence for r in journal] == [1, 2, 3, 4]

    def test_records_for_and_last_for(self):
        journal = fill(ReservationJournal())
        assert [r.holder for r in journal.records_for("s2")] == ["s2", "s2"]
        last = journal.last_for("s1")
        assert last is not None
        assert last.record_type is JournalRecordType.RESERVED
        assert journal.last_for("nobody") is None

    def test_by_holder_preserves_first_seen_order(self):
        journal = fill(ReservationJournal(), holders=("b", "a"))
        assert list(journal.by_holder()) == ["b", "a"]

    def test_closed_journal_rejects_appends(self):
        journal = ReservationJournal()
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)

    def test_crash_hook_fires_after_the_record_is_durable(self):
        journal = ReservationJournal()

        def hook(record):
            raise ManagerCrashError(f"boom at {record.sequence}")

        journal.crash_hook = hook
        with pytest.raises(ManagerCrashError):
            journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        # Append-before-apply: the record survived its own crash.
        assert len(journal) == 1
        assert journal.records()[0].record_type is JournalRecordType.INTENT


class TestFileBacked:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ReservationJournal.open(path) as journal:
            fill(journal)
            written = journal.records()
        with ReservationJournal.open(path) as reopened:
            assert reopened.records() == written

    def test_reopened_journal_continues_the_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ReservationJournal.open(path) as journal:
            fill(journal)
        with ReservationJournal.open(path) as reopened:
            record = reopened.append(
                JournalRecordType.RELEASED,
                "s1",
                {"reason": "teardown"},
                timestamp=9.0,
            )
            assert record.sequence == 5

    def test_fsync_mode_writes_identically(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with ReservationJournal.open(path, fsync=True) as journal:
            fill(journal)
        with ReservationJournal.open(path) as reopened:
            assert len(reopened) == 4


class TestTornTail:
    def write_clean(self, path):
        with ReservationJournal.open(path) as journal:
            fill(journal)
            return journal.records()

    def test_torn_final_line_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        written = self.write_clean(path)
        clean = path.read_bytes()
        path.write_bytes(clean + b'{"seq":5,"type":"rele')  # crash mid-write
        with ReservationJournal.open(path) as journal:
            assert journal.records() == written
            assert journal.torn_records_dropped == 1
            assert "torn record" in journal.describe()
        assert path.read_bytes() == clean  # truncated back to the prefix

    def test_torn_tail_with_newline_is_still_the_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        written = self.write_clean(path)
        path.write_bytes(path.read_bytes() + b'{"half":tru\n')
        with ReservationJournal.open(path) as journal:
            assert journal.records() == written

    def test_append_after_torn_recovery_is_clean(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_clean(path)
        path.write_bytes(path.read_bytes() + b'{"torn')
        with ReservationJournal.open(path) as journal:
            journal.append(
                JournalRecordType.RELEASED,
                "s2",
                {"reason": "teardown"},
                timestamp=11.0,
            )
        with ReservationJournal.open(path) as reopened:
            assert reopened.torn_records_dropped == 0
            assert [r.sequence for r in reopened] == [1, 2, 3, 4, 5]

    def test_mid_file_corruption_is_not_a_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_clean(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"garbage": true}\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError):
            ReservationJournal.open(path)

    def test_sequence_regression_is_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_clean(path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines + [lines[0]]))  # seq jumps back to 1
        with pytest.raises(JournalError, match="sequence"):
            ReservationJournal.open(path)


class TestReadJournalBytes:
    def test_empty_input(self):
        records, clean, torn = read_journal_bytes(b"")
        assert (records, clean, torn) == ([], 0, 0)

    def test_blank_lines_are_skipped(self):
        journal = fill(ReservationJournal())
        data = b"\n".join(
            record.to_line().encode() for record in journal
        ) + b"\n\n"
        records, clean, torn = read_journal_bytes(data)
        assert len(records) == 4
        assert clean == len(data)
        assert torn == 0


class TestSingleWriterDiscipline:
    """An INTENT opens a step-5 window for its holder; a second INTENT
    for the same holder before RESERVED/RELEASED is an interleaving bug
    (two walks sharing one holder id), and the append refuses it."""

    def test_interleaved_intent_for_same_holder_is_rejected(self):
        journal = ReservationJournal()
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        with pytest.raises(JournalError, match="interleaved INTENT"):
            journal.append(JournalRecordType.INTENT, "s1", timestamp=0.1)

    def test_resolved_window_allows_the_next_attempt(self):
        journal = ReservationJournal()
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(
            JournalRecordType.RELEASED, "s1",
            {"reason": "commit-failed"}, timestamp=0.1,
        )
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.2)
        journal.append(
            JournalRecordType.RESERVED, "s1",
            {"choice_period_s": 60.0}, timestamp=0.3,
        )
        journal.append(JournalRecordType.INTENT, "s2", timestamp=0.4)
        assert len(journal) == 5

    def test_concurrent_holders_may_interleave_freely(self):
        journal = ReservationJournal()
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.append(JournalRecordType.INTENT, "s2", timestamp=0.0)
        journal.append(
            JournalRecordType.RESERVED, "s2",
            {"choice_period_s": 60.0}, timestamp=0.1,
        )
        journal.append(
            JournalRecordType.RESERVED, "s1",
            {"choice_period_s": 60.0}, timestamp=0.2,
        )
        assert len(journal) == 4

    def test_reopened_journal_with_open_intent_tail_still_loads(
        self, tmp_path
    ):
        """A crash can legitimately leave an INTENT open at the tail;
        replay must tolerate it (recovery compensates), and the rebuilt
        set still enforces the discipline going forward."""
        path = tmp_path / "wal.jsonl"
        journal = ReservationJournal(path)
        journal.append(JournalRecordType.INTENT, "s1", timestamp=0.0)
        journal.close()
        reopened = ReservationJournal.open(path)
        with pytest.raises(JournalError, match="interleaved INTENT"):
            reopened.append(JournalRecordType.INTENT, "s1", timestamp=1.0)
        reopened.append(
            JournalRecordType.RELEASED, "s1",
            {"reason": "orphan"}, timestamp=1.0,
        )
        reopened.append(JournalRecordType.INTENT, "s1", timestamp=2.0)
