"""Mapper fingerprints: the subclass-collision regression.

``mapper_fingerprint`` used to key on the declared state alone, so a
``QoSMapper`` subclass adding mapping state without overriding
``fingerprint_state()`` collided with its parent (and with differently
configured instances of itself) — two mappers that compute different
flow specs shared cache entries.  The fix keys on the full class
identity plus ``fingerprint_state()``, with a repr fallback for
subclasses that forgot the override.
"""

from dataclasses import dataclass

from repro.core.mapping import QoSMapper
from repro.perf.fingerprint import mapper_fingerprint


@dataclass(frozen=True, slots=True)
class ForgetfulMapper(QoSMapper):
    """Adds mapping state but does NOT override fingerprint_state —
    the shape of the original collision."""

    headroom: float = 1.0


@dataclass(frozen=True, slots=True)
class DiligentMapper(QoSMapper):
    """Adds mapping state and extends the parent's fingerprint."""

    headroom: float = 1.0

    def fingerprint_state(self) -> object:
        # slots=True recreates the class, so zero-arg super() is out.
        return (QoSMapper.fingerprint_state(self), self.headroom)


class TestMapperCollisions:
    def test_subclass_never_collides_with_parent(self):
        base = QoSMapper()
        assert mapper_fingerprint(ForgetfulMapper()) != mapper_fingerprint(base)
        assert mapper_fingerprint(DiligentMapper()) != mapper_fingerprint(base)

    def test_forgotten_override_still_splits_on_state(self):
        """The regression proper: two ForgetfulMapper instances whose
        declared state is identical but whose added state differs must
        not share a fingerprint — the repr fallback folds the extra
        field in."""
        assert mapper_fingerprint(
            ForgetfulMapper(headroom=1.0)
        ) != mapper_fingerprint(ForgetfulMapper(headroom=2.0))

    def test_overriding_subclass_splits_on_state(self):
        assert mapper_fingerprint(
            DiligentMapper(headroom=1.0)
        ) != mapper_fingerprint(DiligentMapper(headroom=2.0))

    def test_structural_equality_shares_entries(self):
        assert mapper_fingerprint(
            DiligentMapper(rate_scale=1.5, headroom=2.0)
        ) == mapper_fingerprint(DiligentMapper(rate_scale=1.5, headroom=2.0))
        assert mapper_fingerprint(QoSMapper()) == mapper_fingerprint(
            QoSMapper()
        )

    def test_same_name_different_module_splits(self):
        """Class identity is module-qualified: a same-named mapper from
        another module never shares entries."""
        namespace = {"__name__": "tests.perf.fake_mapper_module"}
        exec(  # a second, distinct ForgetfulMapper "module"
            "from dataclasses import dataclass\n"
            "from repro.core.mapping import QoSMapper\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class ForgetfulMapper(QoSMapper):\n"
            "    headroom: float = 1.0\n",
            namespace,
        )
        impostor = namespace["ForgetfulMapper"]()
        assert mapper_fingerprint(impostor) != mapper_fingerprint(
            ForgetfulMapper()
        )

    def test_base_mapper_state_splits(self):
        assert mapper_fingerprint(QoSMapper()) != mapper_fingerprint(
            QoSMapper(rate_scale=1.1)
        )
