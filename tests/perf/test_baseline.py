"""The bench-regression gate: keyed, one-sided, tolerance-floored."""

import json

import pytest

from repro.perf import (
    bench_throughputs,
    compare_throughputs,
    load_baseline,
    load_throughputs,
)
from repro.util.errors import ValidationError

BENCH_REPORT = {
    "schema": "bench-negotiation/v1",
    "cells": [
        {
            "variants": 2, "axes": 2,
            "configs": {
                "full": {"negotiations_per_s": 100.0},
                "stream": {"negotiations_per_s": 400.0},
            },
        },
        {
            "variants": 4, "axes": 6,
            "configs": {"full": {"negotiations_per_s": 8.0}},
        },
    ],
}

LOAD_REPORT = {
    "cells": [
        {"multiplier": 0.5, "served_rate_per_s": 0.52},
        {"multiplier": 2.0, "served_rate_per_s": 1.94},
    ],
}


class TestExtractors:
    def test_bench_keys_by_shape_and_config(self):
        assert bench_throughputs(BENCH_REPORT) == {
            "2^2/full": 100.0,
            "2^2/stream": 400.0,
            "4^6/full": 8.0,
        }

    def test_load_keys_by_multiplier(self):
        assert load_throughputs(LOAD_REPORT) == {
            "x0.5": 0.52, "x2": 1.94,
        }


class TestCompare:
    BASELINE = {"a": 100.0, "b": 10.0}

    def test_within_tolerance_passes(self):
        fresh = {"a": 81.0, "b": 10.0}
        assert compare_throughputs(fresh, self.BASELINE) == ()

    def test_past_tolerance_fails_with_the_drop_named(self):
        fresh = {"a": 79.0, "b": 10.0}
        (regression,) = compare_throughputs(fresh, self.BASELINE)
        assert regression.key == "a"
        assert regression.drop == pytest.approx(0.21)
        assert "21% below" in regression.render()

    def test_faster_is_always_fine(self):
        assert compare_throughputs({"a": 500.0}, self.BASELINE) == ()

    def test_comparison_is_keyed_not_positional(self):
        # A quick run vs the full-matrix baseline: cells on one side
        # only are skipped, never treated as regressions.
        assert compare_throughputs({"c": 0.001}, self.BASELINE) == ()

    def test_zero_baseline_never_regresses(self):
        assert compare_throughputs({"a": 0.0}, {"a": 0.0}) == ()

    def test_bad_tolerance_is_rejected(self):
        with pytest.raises(ValidationError, match="tolerance"):
            compare_throughputs({}, {}, tolerance=1.5)


class TestLoadBaseline:
    def test_round_trips_a_committed_report(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(BENCH_REPORT), encoding="utf-8")
        assert load_baseline(str(path)) == BENCH_REPORT

    def test_missing_file_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="unreadable"):
            load_baseline(str(tmp_path / "nope.json"))

    def test_non_object_payload_is_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValidationError, match="not a report"):
            load_baseline(str(path))

    def test_the_committed_baselines_parse(self):
        # The repo's own trajectory points stay loadable.
        bench = bench_throughputs(load_baseline("BENCH_negotiation.json"))
        load = load_throughputs(load_baseline("BENCH_load.json"))
        assert bench and load
