"""Single-flight misses: N concurrent tasks at one cold key, one miss.

The protocol under test (:meth:`_LRUStore.begin` / ``complete`` /
``abandon``): the first task to miss a key becomes the owner and
computes; cooperative tasks arriving while the owner is suspended see
``WAIT``, yield, and re-poll; the owner's ``complete`` publishes for
everyone.  The regression this file pins down: concurrent misses used
to each count a miss and each compute.
"""

import pytest

from repro.perf.cache import (
    HIT,
    OWNER,
    SPACES,
    WAIT,
    NegotiationCache,
    reset_shared_cache,
    shared_cache,
)
from repro.util.errors import ValidationError


@pytest.fixture
def store():
    return NegotiationCache().spaces


class TestProtocol:
    def test_cold_key_makes_an_owner(self, store):
        state, value = store.begin("k")
        assert (state, value) == (OWNER, None)
        assert store._stats.misses[SPACES] == 1

    def test_second_task_waits_without_counting(self, store):
        store.begin("k")
        state, value = store.begin("k")
        assert (state, value) == (WAIT, None)
        assert store._stats.misses[SPACES] == 1
        assert store._stats.hits[SPACES] == 0

    def test_complete_publishes_to_waiters(self, store):
        store.begin("k")
        store.complete("k", "built")
        state, value = store.begin("k")
        assert (state, value) == (HIT, "built")

    def test_abandon_promotes_the_next_beginner(self, store):
        store.begin("k")
        store.abandon("k")
        state, _ = store.begin("k")
        assert state == OWNER
        # The failed flight and the retry are two honest misses.
        assert store._stats.misses[SPACES] == 2

    def test_lookup_abandons_on_compute_failure(self, store):
        def explode():
            raise ValidationError("compute failed")

        with pytest.raises(ValidationError):
            store.lookup("k", explode)
        # The flight is closed: a retry owns the key instead of waiting
        # on a corpse forever.
        state, _ = store.begin("k")
        assert state == OWNER

    def test_synchronous_waiter_computes_privately(self, store):
        """A synchronous caller that finds the key in flight cannot
        yield; it computes for itself without touching counters or
        store — the owner still publishes."""
        store.begin("k")
        value = store.lookup("k", lambda: "private")
        assert value == "private"
        assert store._stats.misses[SPACES] == 1
        assert len(store) == 0


class TestConcurrentColdKey:
    def test_n_tasks_one_cold_key_one_miss(self, store):
        """The headline regression: N cooperative tasks racing one cold
        key cost exactly one miss and one build."""
        builds = []

        def task(name):
            while True:
                state, value = store.begin("hot-key")
                if state == HIT:
                    return value
                if state == OWNER:
                    # Simulate the owner being suspended mid-compute:
                    # yield once before publishing, so every other task
                    # polls at least once while the flight is open.
                    yield
                    builds.append(name)
                    return store.complete("hot-key", f"built-by-{name}")
                yield  # WAIT: yield and re-poll.

        tasks = [task(f"t{i}") for i in range(8)]
        finished = {}
        while len(finished) < len(tasks):
            for index, runner in enumerate(tasks):
                if index in finished:
                    continue
                try:
                    next(runner)
                except StopIteration as stop:
                    finished[index] = stop.value
        assert builds == ["t0"]
        assert set(finished.values()) == {"built-by-t0"}
        assert store._stats.misses[SPACES] == 1
        assert store._stats.hits[SPACES] == len(tasks) - 1


class TestSharedAccessor:
    def test_shared_cache_is_a_singleton(self):
        reset_shared_cache()
        try:
            first = shared_cache()
            assert shared_cache() is first
        finally:
            reset_shared_cache()

    def test_reset_returns_the_old_instance(self):
        reset_shared_cache()
        try:
            cache = shared_cache()
            cache.spaces.begin("warm")
            cache.spaces.complete("warm", object())
            old = reset_shared_cache()
            assert old is cache
            assert old.stats.misses[SPACES] == 1
            assert shared_cache() is not cache
        finally:
            reset_shared_cache()


class TestServiceBurst:
    def test_burst_of_equivalent_requests_costs_one_miss(self):
        """End to end through the concurrent service: a same-tick burst
        of capability-equivalent requests against a cold shared cache
        misses each store exactly once."""
        from repro.core import ProfileManager
        from repro.service import NegotiationService, ServicePolicy
        from repro.sim import ScenarioSpec, build_scenario

        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=3, document_count=1),
            telemetry_seed=0,
            use_cache=True,
        )
        service = NegotiationService(
            scenario.manager,
            scenario.loop,
            policy=ServicePolicy(hold_s=1.0),
        )
        profile = ProfileManager().get("balanced")
        clients = list(scenario.clients.values())
        document_id = scenario.document_ids()[0]
        for index in range(6):
            service.submit(
                document_id,
                profile,
                clients[index % len(clients)],
                label=f"n-{index}",
            )
        scenario.loop.run()
        assert service.unfinished() == []
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("cache.misses", store="spaces") == 1
        assert (
            metrics.counter_value("cache.misses", store="classifications")
            == 1
        )
