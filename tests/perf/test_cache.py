"""Negotiation cache: hits/misses/evictions, invalidation, telemetry."""

import pytest

from repro.client.machine import ClientMachine
from repro.core import make_profile
from repro.core.status import NegotiationStatus
from repro.documents.builder import make_news_article
from repro.documents.media import ColorMode
from repro.documents.quality import VideoQoS
from repro.perf import NegotiationCache, client_fingerprint
from repro.perf.cache import CLASSIFICATIONS, SPACES
from repro.sim import ScenarioSpec, build_scenario


@pytest.fixture
def scenario():
    return build_scenario(
        ScenarioSpec(document_count=2),
        telemetry_seed=0,
        use_cache=True,
    )


def _negotiate(scenario, document_id=None, profile_name="balanced"):
    from repro.core import ProfileManager

    result = scenario.manager.negotiate(
        document_id or scenario.document_ids()[0],
        ProfileManager().get(profile_name),
        scenario.any_client(),
    )
    if result.commitment is not None:
        result.commitment.release()
    return result


class TestCacheCounting:
    def test_first_request_misses_then_hits(self, scenario):
        cache = scenario.manager.cache
        _negotiate(scenario)
        assert cache.stats.misses == {SPACES: 1, CLASSIFICATIONS: 1}
        _negotiate(scenario)
        _negotiate(scenario)
        assert cache.stats.hits == {SPACES: 2, CLASSIFICATIONS: 2}
        assert cache.stats.misses == {SPACES: 1, CLASSIFICATIONS: 1}

    def test_profile_change_misses_classification_only(self, scenario):
        _negotiate(scenario, profile_name="balanced")
        _negotiate(scenario, profile_name="premium")
        cache = scenario.manager.cache
        assert cache.stats.hits[SPACES] == 1
        assert cache.stats.misses[CLASSIFICATIONS] == 2

    def test_telemetry_counters_emitted(self, scenario):
        _negotiate(scenario)
        _negotiate(scenario)
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("cache.misses", store=SPACES) == 1
        assert metrics.counter_value("cache.hits", store=SPACES) == 1
        assert (
            metrics.counter_value("cache.hits", store=CLASSIFICATIONS) == 1
        )

    def test_outcome_identical_to_uncached(self, scenario):
        cold = build_scenario(ScenarioSpec(document_count=2))
        cached = _negotiate(scenario)
        plain = _negotiate(cold)
        assert cached.status is plain.status is NegotiationStatus.SUCCEEDED
        assert (
            cached.chosen.offer.offer_id == plain.chosen.offer.offer_id
        )


class TestInvalidation:
    def test_catalog_change_bumps_version_and_misses(self, scenario):
        document_id = scenario.document_ids()[0]
        _negotiate(scenario, document_id)
        _negotiate(scenario, document_id)
        database = scenario.database
        before = database.version_of(document_id)
        victim = database.variants_for_monomedia(f"{document_id}.video")[0]
        database.remove_variant(victim.variant_id)
        assert database.version_of(document_id) == before + 1
        _negotiate(scenario, document_id)
        cache = scenario.manager.cache
        # The stale entry is unreachable: the new version is a fresh key.
        assert cache.stats.misses[SPACES] == 2
        assert cache.stats.hits[SPACES] == 1

    def test_invalidate_document_drops_both_stores(self, scenario):
        document_id = scenario.document_ids()[0]
        _negotiate(scenario, document_id)
        cache = scenario.manager.cache
        assert cache.entry_counts == {SPACES: 1, CLASSIFICATIONS: 1}
        cache.invalidate_document(document_id)
        assert cache.entry_counts == {SPACES: 0, CLASSIFICATIONS: 0}
        _negotiate(scenario, document_id)
        assert cache.stats.misses[SPACES] == 2

    def test_other_documents_survive_invalidation(self, scenario):
        first, second = scenario.document_ids()[:2]
        _negotiate(scenario, first)
        _negotiate(scenario, second)
        scenario.manager.cache.invalidate_document(first)
        _negotiate(scenario, second)
        assert scenario.manager.cache.stats.hits[SPACES] == 1


class TestEviction:
    @pytest.fixture
    def space(self):
        from repro.core.cost import default_cost_model
        from repro.core.enumeration import build_offer_space

        return build_offer_space(
            make_news_article("doc.evict"),
            ClientMachine("c1"),
            default_cost_model(),
        )

    def test_lru_eviction_counts(self, space):
        cache = NegotiationCache(max_spaces=2)
        for key in ("a", "b", "c"):
            cache.offer_space((key,), lambda: space)
        assert cache.entry_counts[SPACES] == 2
        assert cache.stats.evictions[SPACES] == 1
        # "a" was evicted; "c" is still resident.
        cache.offer_space(("c",), lambda: space)
        assert cache.stats.hits[SPACES] == 1
        cache.offer_space(("a",), lambda: space)
        assert cache.stats.misses[SPACES] == 4

    def test_clear_resets_entries(self, space):
        cache = NegotiationCache()
        cache.offer_space(("k",), lambda: space)
        cache.clear()
        assert cache.entry_counts == {SPACES: 0, CLASSIFICATIONS: 0}


class TestFlushAccounting:
    """Explicit flushes are not capacity pressure: ``clear()`` counts
    under ``cache.flushes``, never ``cache.evictions`` — the SLO layer
    reads the eviction-rate series as a pressure signal and a shutdown
    or test flush must not pollute it."""

    @pytest.fixture
    def warm_cache(self, scenario):
        _negotiate(scenario)
        return scenario.manager.cache

    def test_clear_counts_flushes_not_evictions(self, warm_cache):
        warm_cache.clear()
        assert warm_cache.stats.flushes == {SPACES: 1, CLASSIFICATIONS: 1}
        assert warm_cache.stats.evictions == {SPACES: 0, CLASSIFICATIONS: 0}

    def test_flush_telemetry_series_are_separate(self, scenario, warm_cache):
        warm_cache.clear()
        metrics = scenario.telemetry.metrics
        assert metrics.counter_value("cache.flushes", store=SPACES) == 1
        assert metrics.counter_value("cache.evictions", store=SPACES) == 0

    def test_empty_clear_counts_nothing(self, warm_cache):
        warm_cache.clear()
        warm_cache.clear()
        assert warm_cache.stats.flushes == {SPACES: 1, CLASSIFICATIONS: 1}


class TestFingerprints:
    def test_client_identity_excluded(self):
        first = ClientMachine("alice", access_point="net-1")
        second = ClientMachine("bob", access_point="net-2")
        assert client_fingerprint(first) == client_fingerprint(second)

    def test_capability_changes_key(self):
        base = ClientMachine("alice")
        grey = ClientMachine(
            "alice", screen_color=ColorMode.BLACK_AND_WHITE
        )
        assert client_fingerprint(base) != client_fingerprint(grey)

    def test_variant_filter_bypasses_cache(self):
        # Preferences that filter variants change the offer space in
        # ways the key does not capture; the manager must not cache.
        from dataclasses import replace

        from repro.core import ProfileManager
        from repro.core.preferences import (
            SecurityLevel,
            ServerAttributes,
            ServerDirectory,
            UserPreferences,
        )

        scenario = build_scenario(
            ScenarioSpec(document_count=1), use_cache=True
        )
        scenario.manager.directory = ServerDirectory(
            {
                server_id: ServerAttributes(
                    security=SecurityLevel.CONFIDENTIAL
                )
                for server_id in scenario.servers
            }
        )
        profile = replace(
            ProfileManager().get("balanced"),
            preferences=UserPreferences(
                min_security=SecurityLevel.CONFIDENTIAL
            ),
        )
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], profile, scenario.any_client()
        )
        if result.commitment is not None:
            result.commitment.release()
        cache = scenario.manager.cache
        assert cache.entry_counts == {SPACES: 0, CLASSIFICATIONS: 0}


def test_bench_quick_smoke(tmp_path):
    """`repro bench --quick --rounds 1` runs end to end, writes a valid
    report, and finds every configuration outcome-equivalent."""
    import json

    from repro.cli import main

    output = tmp_path / "BENCH_negotiation.json"
    code = main(
        ["bench", "--quick", "--rounds", "1", "--output", str(output)]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["summary"]["all_outcomes_equivalent"]
    # Three standard quick cells plus one catalogue-scale cell.
    assert len(report["cells"]) == 4
    for cell in report["cells"]:
        assert cell["equivalent"]
        assert cell["status"] == "SUCCEEDED"
