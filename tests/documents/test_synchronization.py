"""Spatial/temporal synchronization constraints (paper §2)."""

import pytest

from repro.documents.synchronization import (
    ScreenRegion,
    SpatialLayout,
    SyncConstraints,
    TemporalRelation,
    TemporalRelationKind,
)
from repro.util.errors import SynchronizationError


class TestTemporalRelation:
    def test_self_relation_rejected(self):
        with pytest.raises(SynchronizationError):
            TemporalRelation(TemporalRelationKind.PARALLEL, "a", "a")

    def test_parallel_offset_rejected(self):
        with pytest.raises(SynchronizationError):
            TemporalRelation(TemporalRelationKind.PARALLEL, "a", "b", 5.0)

    def test_sequential_offset_ok(self):
        rel = TemporalRelation(TemporalRelationKind.SEQUENTIAL, "a", "b", 2.0)
        assert rel.offset_s == 2.0


class TestScreenRegion:
    def test_overlap_detection(self):
        a = ScreenRegion(0, 0, 100, 100)
        b = ScreenRegion(50, 50, 100, 100)
        c = ScreenRegion(100, 0, 50, 50)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # edge-adjacent is not overlap

    def test_fits_on(self):
        assert ScreenRegion(0, 0, 640, 480).fits_on(640, 480)
        assert not ScreenRegion(1, 0, 640, 480).fits_on(640, 480)


class TestSpatialLayout:
    def test_overlapping_regions_rejected(self):
        with pytest.raises(SynchronizationError):
            SpatialLayout({
                "a": ScreenRegion(0, 0, 100, 100),
                "b": ScreenRegion(10, 10, 100, 100),
            })

    def test_bounding_box(self):
        layout = SpatialLayout({
            "a": ScreenRegion(0, 0, 100, 100),
            "b": ScreenRegion(100, 0, 200, 50),
        })
        assert layout.bounding_box() == (300, 100)

    def test_empty_bounding_box(self):
        assert SpatialLayout({}).bounding_box() == (0, 0)


class TestSyncConstraints:
    def test_validates_known_ids(self):
        sync = SyncConstraints(
            temporal=(TemporalRelation(TemporalRelationKind.PARALLEL, "a", "b"),)
        )
        sync.validate_against(["a", "b"])
        with pytest.raises(SynchronizationError):
            sync.validate_against(["a"])

    def test_cycle_rejected(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "a", "b"),
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "b", "a"),
            )
        )
        with pytest.raises(SynchronizationError, match="cycle"):
            sync.validate_against(["a", "b"])

    def test_spatial_unknown_id_rejected(self):
        sync = SyncConstraints(
            spatial=SpatialLayout({"ghost": ScreenRegion(0, 0, 10, 10)})
        )
        with pytest.raises(SynchronizationError):
            sync.validate_against(["a"])

    def test_start_times_parallel(self):
        sync = SyncConstraints(
            temporal=(TemporalRelation(TemporalRelationKind.PARALLEL, "a", "b"),)
        )
        starts = sync.start_times({"a": 10.0, "b": 5.0})
        assert starts == {"a": 0.0, "b": 0.0}

    def test_start_times_sequential_with_offset(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "a", "b", 2.0),
            )
        )
        starts = sync.start_times({"a": 10.0, "b": 5.0})
        assert starts["b"] == pytest.approx(12.0)

    def test_start_times_overlap(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.OVERLAPS, "a", "b", 3.0),
            )
        )
        starts = sync.start_times({"a": 10.0, "b": 5.0})
        assert starts["b"] == pytest.approx(3.0)

    def test_start_times_chain(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "a", "b"),
                TemporalRelation(TemporalRelationKind.SEQUENTIAL, "b", "c"),
            )
        )
        starts = sync.start_times({"a": 10.0, "b": 5.0, "c": 1.0})
        assert starts == {"a": 0.0, "b": 10.0, "c": 15.0}
