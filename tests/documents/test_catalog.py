"""Document catalog."""

import pytest

from repro.documents.builder import make_news_article
from repro.documents.catalog import DocumentCatalog
from repro.util.errors import DuplicateKeyError, NotFoundError


@pytest.fixture
def catalog():
    return DocumentCatalog(
        make_news_article(f"doc.{i}", still_server="server-a")
        for i in range(3)
    )


class TestCatalog:
    def test_len_and_contains(self, catalog):
        assert len(catalog) == 3
        assert "doc.1" in catalog
        assert "doc.x" not in catalog

    def test_get(self, catalog):
        assert catalog.get("doc.0").document_id == "doc.0"
        with pytest.raises(NotFoundError):
            catalog.get("doc.x")

    def test_duplicate_add_rejected(self, catalog):
        with pytest.raises(DuplicateKeyError):
            catalog.add(make_news_article("doc.0"))

    def test_replace_overwrites(self, catalog):
        replacement = make_news_article("doc.0", title="rewritten")
        catalog.replace(replacement)
        assert catalog.get("doc.0").title == "rewritten"
        assert len(catalog) == 3

    def test_remove(self, catalog):
        catalog.remove("doc.1")
        assert "doc.1" not in catalog
        with pytest.raises(NotFoundError):
            catalog.remove("doc.1")

    def test_ordered_iteration(self, catalog):
        assert [d.document_id for d in catalog] == ["doc.0", "doc.1", "doc.2"]

    def test_select(self, catalog):
        picked = catalog.select(lambda d: d.document_id.endswith("2"))
        assert [d.document_id for d in picked] == ["doc.2"]

    def test_with_medium(self, catalog):
        assert len(catalog.with_medium("video")) == 3

    def test_total_variants(self, catalog):
        assert catalog.total_variants() == 3 * 16

    def test_servers_referenced(self, catalog):
        assert "server-a" in catalog.servers_referenced()
