"""Media taxonomy and quality scales (paper §2/§3)."""

import pytest

from repro.documents.media import (
    CONTINUOUS_MEDIA,
    FROZEN_FRAME_RATE,
    HDTV_FRAME_RATE,
    HDTV_RESOLUTION,
    MIN_RESOLUTION,
    TV_FRAME_RATE,
    AudioGrade,
    Codecs,
    ColorMode,
    FrameRate,
    Language,
    Medium,
    Resolution,
)
from repro.util.errors import UnknownMediumError, ValidationError


class TestMedium:
    def test_five_media(self):
        assert {m.value for m in Medium} == {
            "video", "audio", "image", "text", "graphic",
        }

    def test_parse_string(self):
        assert Medium.parse("Video ") is Medium.VIDEO

    def test_parse_identity(self):
        assert Medium.parse(Medium.AUDIO) is Medium.AUDIO

    def test_parse_unknown(self):
        with pytest.raises(UnknownMediumError):
            Medium.parse("hologram")

    def test_continuous_vs_discrete(self):
        assert Medium.VIDEO.is_continuous
        assert Medium.AUDIO.is_continuous
        assert not Medium.TEXT.is_continuous
        assert CONTINUOUS_MEDIA == {Medium.VIDEO, Medium.AUDIO}

    def test_visual(self):
        assert Medium.VIDEO.is_visual
        assert not Medium.AUDIO.is_visual


class TestColorMode:
    def test_ordering_worst_to_best(self):
        assert (
            ColorMode.BLACK_AND_WHITE
            < ColorMode.GREY
            < ColorMode.COLOR
            < ColorMode.SUPER_COLOR
        )

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("black&white", ColorMode.BLACK_AND_WHITE),
            ("bw", ColorMode.BLACK_AND_WHITE),
            ("gray", ColorMode.GREY),
            ("grey", ColorMode.GREY),
            ("colour", ColorMode.COLOR),
            ("super color", ColorMode.SUPER_COLOR),
            (2, ColorMode.COLOR),
        ],
    )
    def test_parse_aliases(self, alias, expected):
        assert ColorMode.parse(alias) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValidationError):
            ColorMode.parse("sepia")

    def test_str_matches_paper_vocabulary(self):
        assert str(ColorMode.BLACK_AND_WHITE) == "black&white"
        assert str(ColorMode.SUPER_COLOR) == "super-color"


class TestAudioGrade:
    def test_ordering(self):
        assert AudioGrade.TELEPHONE < AudioGrade.RADIO < AudioGrade.CD

    def test_cd_parameters(self):
        assert AudioGrade.CD.sample_rate_hz == 44_100
        assert AudioGrade.CD.bits_per_sample == 16
        assert AudioGrade.CD.channels == 2

    def test_telephone_parameters(self):
        assert AudioGrade.TELEPHONE.sample_rate_hz == 8_000

    def test_parse(self):
        assert AudioGrade.parse("cd") is AudioGrade.CD
        assert AudioGrade.parse(0) is AudioGrade.TELEPHONE
        with pytest.raises(ValidationError):
            AudioGrade.parse("8-track")


class TestLanguage:
    def test_parse_code_and_name(self):
        assert Language.parse("fr") is Language.FRENCH
        assert Language.parse("French") is Language.FRENCH

    def test_parse_unknown(self):
        with pytest.raises(ValidationError):
            Language.parse("klingon")


class TestAnchors:
    def test_figure2_values(self):
        # Figure 2 / §3: HDTV rate 60, frozen rate 1, HDTV resolution
        # 1920, minimal resolution 10.
        assert HDTV_FRAME_RATE == 60
        assert FROZEN_FRAME_RATE == 1
        assert TV_FRAME_RATE == 25
        assert HDTV_RESOLUTION == 1920
        assert MIN_RESOLUTION == 10

    def test_frame_rate_bounds(self):
        assert FrameRate.check(1) == 1
        assert FrameRate.check(60) == 60
        with pytest.raises(ValidationError):
            FrameRate.check(0)
        with pytest.raises(ValidationError):
            FrameRate.check(61)
        with pytest.raises(ValidationError):
            FrameRate.check(12.5)

    def test_resolution_bounds(self):
        assert Resolution.check(10) == 10
        assert Resolution.check(1920) == 1920
        with pytest.raises(ValidationError):
            Resolution.check(9)
        with pytest.raises(ValidationError):
            Resolution.check(2000)


class TestCodecs:
    def test_registry_media(self):
        assert Codecs.MPEG1.medium is Medium.VIDEO
        assert Codecs.PCM.medium is Medium.AUDIO
        assert Codecs.JPEG.medium is Medium.IMAGE

    def test_by_name_case_insensitive(self):
        assert Codecs.by_name("mpeg-1") is Codecs.MPEG1

    def test_by_name_unknown(self):
        with pytest.raises(ValidationError):
            Codecs.by_name("theora")

    def test_for_medium(self):
        video = Codecs.for_medium("video")
        assert Codecs.MPEG1 in video
        assert all(c.medium is Medium.VIDEO for c in video)

    def test_scalable_flag(self):
        assert Codecs.MPEG2.scalable
        assert not Codecs.MPEG1.scalable
