"""Document composition (paper §2, Figure 1)."""

import pytest

from repro.documents.builder import MonomediaBuilder
from repro.documents.document import Document
from repro.documents.media import Codecs, ColorMode, Medium
from repro.documents.monomedia import Monomedia
from repro.documents.quality import VideoQoS
from repro.documents.synchronization import (
    SyncConstraints,
    TemporalRelation,
    TemporalRelationKind,
)
from repro.util.errors import DocumentError
from repro.util.units import dollars

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


def video_monomedia(mid="m.video", n_variants=2, duration=60.0):
    builder = MonomediaBuilder(mid, "video", "clip", duration)
    for i in range(n_variants):
        builder.add_variant(Codecs.MPEG1, TV, f"server-{i}")
    return builder.build()


def audio_monomedia(mid="m.audio", duration=60.0):
    from repro.documents.media import AudioGrade
    from repro.documents.quality import AudioQoS

    builder = MonomediaBuilder(mid, "audio", "track", duration)
    builder.add_variant(
        Codecs.MPEG_AUDIO, AudioQoS(grade=AudioGrade.CD), "server-0"
    )
    return builder.build()


class TestDocumentShape:
    def test_monomedia_document(self):
        doc = Document("d1", "solo", (video_monomedia(),))
        assert doc.is_monomedia
        assert not doc.is_multimedia

    def test_multimedia_document(self):
        doc = Document("d1", "duo", (video_monomedia(), audio_monomedia()))
        assert doc.is_multimedia
        assert doc.media == (Medium.VIDEO, Medium.AUDIO)

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            Document("d1", "none", ())

    def test_duplicate_monomedia_rejected(self):
        with pytest.raises(DocumentError):
            Document("d1", "dup", (video_monomedia(), video_monomedia()))

    def test_component_lookup(self):
        doc = Document("d1", "duo", (video_monomedia(), audio_monomedia()))
        assert doc.component("m.video").medium is Medium.VIDEO
        with pytest.raises(DocumentError):
            doc.component("m.ghost")

    def test_components_of(self):
        doc = Document("d1", "duo", (video_monomedia(), audio_monomedia()))
        assert len(doc.components_of("audio")) == 1

    def test_non_monomedia_component_rejected(self):
        with pytest.raises(DocumentError):
            Document("d1", "bad", ("not a monomedia",))


class TestVariantViews:
    def test_variant_counts_and_space(self):
        doc = Document(
            "d1", "duo", (video_monomedia(n_variants=3), audio_monomedia())
        )
        assert doc.variant_counts() == {"m.video": 3, "m.audio": 1}
        assert doc.offer_space_size() == 3

    def test_iter_variants(self):
        doc = Document(
            "d1", "duo", (video_monomedia(n_variants=2), audio_monomedia())
        )
        assert len(list(doc.iter_variants())) == 3


class TestTimingAndCost:
    def test_duration_parallel(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.PARALLEL,
                                 "m.video", "m.audio"),
            )
        )
        doc = Document(
            "d1", "duo",
            (video_monomedia(duration=100.0), audio_monomedia(duration=60.0)),
            sync=sync,
        )
        assert doc.duration_s == pytest.approx(100.0)

    def test_duration_sequential(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.SEQUENTIAL,
                                 "m.video", "m.audio"),
            )
        )
        doc = Document(
            "d1", "duo",
            (video_monomedia(duration=100.0), audio_monomedia(duration=60.0)),
            sync=sync,
        )
        assert doc.duration_s == pytest.approx(160.0)

    def test_copyright_normalised_to_money(self):
        doc = Document(
            "d1", "solo", (video_monomedia(),), copyright_cost=dollars(0.5)
        )
        assert doc.copyright_cost.cents == 50

    def test_sync_referencing_unknown_monomedia_rejected(self):
        sync = SyncConstraints(
            temporal=(
                TemporalRelation(TemporalRelationKind.PARALLEL,
                                 "m.video", "m.ghost"),
            )
        )
        with pytest.raises(Exception):
            Document("d1", "bad", (video_monomedia(),), sync=sync)
