"""Monomedia, variants, block statistics (paper §2/§6)."""

import pytest

from repro.documents.media import Codecs, ColorMode, Medium
from repro.documents.monomedia import BlockStats, Monomedia, Variant
from repro.documents.quality import TextQoS, VideoQoS
from repro.util.errors import ValidationError, VariantError

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
STATS = BlockStats(max_block_bits=300_000, avg_block_bits=100_000,
                   blocks_per_second=25.0)


def make_variant(variant_id="v1", monomedia_id="m1", server="server-a",
                 codec=Codecs.MPEG1, qos=TV):
    return Variant(
        variant_id=variant_id,
        monomedia_id=monomedia_id,
        codec=codec,
        qos=qos,
        size_bits=1e9,
        block_stats=STATS,
        server_id=server,
        duration_s=120.0,
    )


class TestBlockStats:
    def test_burstiness(self):
        assert STATS.burstiness == pytest.approx(3.0)

    def test_avg_above_max_rejected(self):
        with pytest.raises(ValidationError):
            BlockStats(max_block_bits=10, avg_block_bits=20)

    def test_scaled(self):
        half = STATS.scaled(0.5)
        assert half.avg_block_bits == 50_000
        assert half.blocks_per_second == 25.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            STATS.scaled(0)

    def test_zero_block_rate_for_discrete(self):
        stats = BlockStats(max_block_bits=100, avg_block_bits=100)
        assert stats.blocks_per_second == 0.0


class TestVariant:
    def test_medium_from_codec(self):
        assert make_variant().medium is Medium.VIDEO

    def test_qos_medium_mismatch_rejected(self):
        with pytest.raises(VariantError):
            make_variant(qos=TextQoS(language="en"))

    def test_codec_must_be_codec(self):
        with pytest.raises(VariantError):
            make_variant(codec="MPEG-1")

    def test_positive_size_required(self):
        with pytest.raises(ValidationError):
            Variant(
                variant_id="v", monomedia_id="m", codec=Codecs.MPEG1,
                qos=TV, size_bits=0, block_stats=STATS,
                server_id="s", duration_s=1.0,
            )


class TestMonomedia:
    def test_holds_variants(self):
        mono = Monomedia("m1", Medium.VIDEO, "clip", 120.0,
                         variants=(make_variant(),))
        assert len(mono.variants) == 1
        assert mono.variant("v1").variant_id == "v1"

    def test_unknown_variant_lookup(self):
        mono = Monomedia("m1", Medium.VIDEO, "clip", 120.0)
        with pytest.raises(VariantError):
            mono.variant("nope")

    def test_foreign_variant_rejected(self):
        with pytest.raises(VariantError):
            Monomedia("m1", Medium.VIDEO, "clip", 120.0,
                      variants=(make_variant(monomedia_id="other"),))

    def test_wrong_medium_variant_rejected(self):
        with pytest.raises(VariantError):
            Monomedia("m1", Medium.AUDIO, "clip", 120.0,
                      variants=(make_variant(),))

    def test_duplicate_variant_ids_rejected(self):
        with pytest.raises(VariantError):
            Monomedia(
                "m1", Medium.VIDEO, "clip", 120.0,
                variants=(make_variant(), make_variant()),
            )

    def test_with_variants_copy(self):
        mono = Monomedia("m1", Medium.VIDEO, "clip", 120.0)
        grown = mono.with_variants([make_variant()])
        assert len(mono.variants) == 0
        assert len(grown.variants) == 1

    def test_medium_parsed_from_string(self):
        mono = Monomedia("m1", "video", "clip", 120.0)
        assert mono.medium is Medium.VIDEO
