"""Document/monomedia builders and the media-rate model."""

import pytest

from repro.documents.builder import (
    DEFAULT_RATE_MODEL,
    DocumentBuilder,
    MonomediaBuilder,
    make_news_article,
)
from repro.documents.media import AudioGrade, Codecs, ColorMode, Medium
from repro.documents.quality import AudioQoS, VideoQoS
from repro.documents.synchronization import ScreenRegion
from repro.util.errors import DocumentError

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


class TestMediaRateModel:
    def test_video_rates_scale_with_frame_rate(self):
        fast = DEFAULT_RATE_MODEL.video_block_stats(Codecs.MPEG1, TV)
        slow = DEFAULT_RATE_MODEL.video_block_stats(
            Codecs.MPEG1,
            VideoQoS(color=ColorMode.COLOR, frame_rate=5, resolution=720),
        )
        # Per-block size identical; block rate differs.
        assert fast.avg_block_bits == slow.avg_block_bits
        assert fast.blocks_per_second == 25 and slow.blocks_per_second == 5

    def test_color_cheaper_than_supercolor(self):
        color = DEFAULT_RATE_MODEL.video_block_stats(Codecs.MPEG1, TV)
        grey = DEFAULT_RATE_MODEL.video_block_stats(
            Codecs.MPEG1,
            VideoQoS(color=ColorMode.GREY, frame_rate=25, resolution=720),
        )
        assert grey.avg_block_bits < color.avg_block_bits

    def test_mjpeg_less_compressed_than_mpeg(self):
        mpeg = DEFAULT_RATE_MODEL.video_block_stats(Codecs.MPEG1, TV)
        mjpeg = DEFAULT_RATE_MODEL.video_block_stats(Codecs.MJPEG, TV)
        assert mjpeg.avg_block_bits > mpeg.avg_block_bits
        assert mjpeg.burstiness < mpeg.burstiness

    def test_audio_rates(self):
        cd = DEFAULT_RATE_MODEL.audio_block_stats(
            Codecs.MPEG_AUDIO, AudioQoS(grade=AudioGrade.CD)
        )
        phone = DEFAULT_RATE_MODEL.audio_block_stats(
            Codecs.MPEG_AUDIO, AudioQoS(grade=AudioGrade.TELEPHONE)
        )
        assert cd.avg_block_bits > phone.avg_block_bits

    def test_unknown_codec_rejected(self):
        with pytest.raises(DocumentError):
            DEFAULT_RATE_MODEL.video_block_stats(Codecs.JPEG, TV)


class TestMonomediaBuilder:
    def test_derives_sizes(self):
        mono = (
            MonomediaBuilder("m", "video", "clip", 60.0)
            .add_variant(Codecs.MPEG1, TV, "server-a")
            .build()
        )
        variant = mono.variants[0]
        stats = variant.block_stats
        expected = stats.avg_block_bits * stats.blocks_per_second * 60.0
        assert variant.size_bits == pytest.approx(expected)

    def test_sequential_ids(self):
        mono = (
            MonomediaBuilder("m", "video", "clip", 60.0)
            .add_variant(Codecs.MPEG1, TV, "s1")
            .add_variant(Codecs.MJPEG, TV, "s2")
            .build()
        )
        assert [v.variant_id for v in mono.variants] == ["m.v1", "m.v2"]

    def test_explicit_variant_id(self):
        mono = (
            MonomediaBuilder("m", "video", "clip", 60.0)
            .add_variant(Codecs.MPEG1, TV, "s1", variant_id="m.custom")
            .build()
        )
        assert mono.variants[0].variant_id == "m.custom"


class TestDocumentBuilder:
    def test_fluent_assembly(self):
        doc = (
            DocumentBuilder("d", "title")
            .add(
                MonomediaBuilder("d.v", "video", "clip", 60.0)
                .add_variant(Codecs.MPEG1, TV, "s1")
            )
            .copyright(1.25)
            .place("d.v", ScreenRegion(0, 0, 720, 540))
            .build()
        )
        assert doc.copyright_cost.cents == 125
        assert doc.sync.spatial is not None

    def test_temporal_relations(self):
        doc = (
            DocumentBuilder("d", "title")
            .add(
                MonomediaBuilder("d.a", "video", "a", 60.0)
                .add_variant(Codecs.MPEG1, TV, "s1")
            )
            .add(
                MonomediaBuilder("d.b", "video", "b", 30.0)
                .add_variant(Codecs.MPEG1, TV, "s1")
            )
            .sequential("d.a", "d.b")
            .build()
        )
        assert doc.duration_s == pytest.approx(90.0)


class TestMakeNewsArticle:
    def test_default_structure(self):
        doc = make_news_article()
        media = {m.value for m in doc.media}
        assert media == {"video", "audio", "image", "text"}

    def test_variant_grid_size(self):
        doc = make_news_article()
        counts = doc.variant_counts()
        assert counts[f"{doc.document_id}.video"] == 8  # 2 codecs x 2 colors x 2 rates
        assert counts[f"{doc.document_id}.audio"] == 4  # 2 grades x 2 languages

    def test_servers_round_robin(self):
        doc = make_news_article(video_servers=("s1", "s2"))
        video = doc.components_of(Medium.VIDEO)[0]
        assert {v.server_id for v in video.variants} == {"s1", "s2"}

    def test_optional_media(self):
        doc = make_news_article(include_image=False, include_text=False)
        assert {m.value for m in doc.media} == {"video", "audio"}

    def test_video_audio_parallel(self):
        doc = make_news_article(duration_s=90.0)
        assert doc.duration_s == pytest.approx(90.0)
