"""Per-medium QoS points and the satisfies ordering (paper §5 comparison)."""

import pytest

from repro.documents.media import AudioGrade, ColorMode, Language, Medium
from repro.documents.quality import (
    AudioQoS,
    GraphicQoS,
    ImageQoS,
    TextQoS,
    VideoQoS,
    qos_class_for,
)
from repro.util.errors import ValidationError

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


class TestVideoQoS:
    def test_satisfies_equal(self):
        assert TV.satisfies(TV)

    def test_better_color_satisfies(self):
        better = VideoQoS(color=ColorMode.SUPER_COLOR, frame_rate=25, resolution=720)
        assert better.satisfies(TV)
        assert not TV.satisfies(better)

    def test_lower_frame_rate_fails(self):
        slower = VideoQoS(color=ColorMode.COLOR, frame_rate=15, resolution=720)
        assert not slower.satisfies(TV)

    def test_violated_parameters_named(self):
        offer = VideoQoS(color=ColorMode.GREY, frame_rate=15, resolution=720)
        assert set(offer.violated_parameters(TV)) == {"color", "frame_rate"}

    def test_parses_loose_inputs(self):
        qos = VideoQoS(color="grey", frame_rate=10, resolution=360)
        assert qos.color is ColorMode.GREY

    def test_range_validation(self):
        with pytest.raises(ValidationError):
            VideoQoS(color=ColorMode.COLOR, frame_rate=0, resolution=720)
        with pytest.raises(ValidationError):
            VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=5000)

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(ValidationError):
            TV.satisfies(TextQoS(language=Language.ENGLISH))

    def test_str_matches_paper_style(self):
        assert str(TV) == "(color, 25 frames/s, 720 px)"

    def test_as_dict(self):
        assert TV.as_dict() == {
            "color": "color", "frame_rate": 25, "resolution": 720,
        }


class TestAudioQoS:
    def test_grade_ordering(self):
        cd = AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH)
        phone = AudioQoS(grade=AudioGrade.TELEPHONE, language=Language.ENGLISH)
        assert cd.satisfies(phone)
        assert not phone.satisfies(cd)

    def test_language_is_equality_not_order(self):
        english = AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH)
        french = AudioQoS(grade=AudioGrade.CD, language=Language.FRENCH)
        assert not english.satisfies(french)
        assert not french.satisfies(english)

    def test_language_none_accepts_anything(self):
        anything = AudioQoS(grade=AudioGrade.TELEPHONE, language=Language.NONE)
        english = AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH)
        assert english.satisfies(anything)

    def test_sample_rate_passthrough(self):
        assert AudioQoS(grade=AudioGrade.CD).sample_rate_hz == 44_100


class TestDiscreteQoS:
    def test_image_ordering(self):
        hi = ImageQoS(color=ColorMode.COLOR, resolution=720)
        lo = ImageQoS(color=ColorMode.GREY, resolution=360)
        assert hi.satisfies(lo)
        assert not lo.satisfies(hi)

    def test_text_language(self):
        fr = TextQoS(language=Language.FRENCH)
        assert fr.satisfies(TextQoS(language=Language.FRENCH))
        assert not fr.satisfies(TextQoS(language=Language.ENGLISH))

    def test_graphic(self):
        g = GraphicQoS(color=ColorMode.COLOR, resolution=500)
        assert g.medium is Medium.GRAPHIC


class TestQosClassFor:
    @pytest.mark.parametrize(
        "medium,cls",
        [
            ("video", VideoQoS),
            ("audio", AudioQoS),
            ("image", ImageQoS),
            ("text", TextQoS),
            ("graphic", GraphicQoS),
        ],
    )
    def test_mapping(self, medium, cls):
        assert qos_class_for(medium) is cls


class TestTransitivity:
    def test_satisfies_is_transitive_for_ordered_scales(self):
        a = VideoQoS(color=ColorMode.SUPER_COLOR, frame_rate=30, resolution=1080)
        b = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
        c = VideoQoS(color=ColorMode.GREY, frame_rate=10, resolution=360)
        assert a.satisfies(b) and b.satisfies(c)
        assert a.satisfies(c)
