"""System offers and user-offer derivation (§4 Definitions 1–2)."""

import pytest

from repro.core.offers import SystemOffer, derive_user_offer
from repro.core.profiles import MMProfile
from repro.documents.media import (
    AudioGrade,
    Codecs,
    ColorMode,
    Language,
    Medium,
)
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import AudioQoS, VideoQoS
from repro.util.errors import OfferError
from repro.util.units import dollars

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
LOW = VideoQoS(color=ColorMode.GREY, frame_rate=10, resolution=360)


def video_variant(mid="m.video", name="v1", server="server-a", qos=TV):
    return Variant(
        variant_id=f"{mid}.{name}",
        monomedia_id=mid,
        codec=Codecs.MPEG1,
        qos=qos,
        size_bits=1e8,
        block_stats=BlockStats(3e5, 1e5, 25.0),
        server_id=server,
        duration_s=60.0,
    )


def audio_variant(mid="m.audio", language=Language.ENGLISH):
    return Variant(
        variant_id=f"{mid}.a1",
        monomedia_id=mid,
        codec=Codecs.MPEG_AUDIO,
        qos=AudioQoS(grade=AudioGrade.CD, language=language),
        size_bits=1e7,
        block_stats=BlockStats(4e3, 3e3, 50.0),
        server_id="server-b",
        duration_s=60.0,
    )


def make_offer(cost=3.0, video_qos=TV):
    video = video_variant(qos=video_qos)
    audio = audio_variant()
    return SystemOffer(
        offer_id="o1",
        variants={"m.video": video, "m.audio": audio},
        presented={"m.video": video.qos, "m.audio": audio.qos},
        cost=dollars(cost),
    )


class TestSystemOffer:
    def test_views(self):
        offer = make_offer()
        assert offer.monomedia_ids == ("m.video", "m.audio")
        assert offer.servers_used() == {"server-a", "server-b"}
        assert len(offer.qos_points()) == 2

    def test_variant_for(self):
        offer = make_offer()
        assert offer.variant_for("m.video").medium is Medium.VIDEO
        with pytest.raises(OfferError):
            offer.variant_for("m.ghost")

    def test_empty_rejected(self):
        with pytest.raises(OfferError):
            SystemOffer(offer_id="o", variants={}, presented={}, cost=dollars(1))

    def test_mismatched_presented_rejected(self):
        video = video_variant()
        with pytest.raises(OfferError):
            SystemOffer(
                offer_id="o",
                variants={"m.video": video},
                presented={},
                cost=dollars(1),
            )

    def test_wrong_key_rejected(self):
        video = video_variant()
        with pytest.raises(OfferError):
            SystemOffer(
                offer_id="o",
                variants={"m.other": video},
                presented={"m.other": video.qos},
                cost=dollars(1),
            )

    def test_qos_satisfies_partial_bound(self):
        offer = make_offer()
        assert offer.qos_satisfies(MMProfile(video=LOW))  # audio unconstrained
        assert not offer.qos_satisfies(
            MMProfile(video=VideoQoS(color=ColorMode.SUPER_COLOR,
                                     frame_rate=25, resolution=720))
        )

    def test_qos_violations_keyed_by_monomedia(self):
        offer = make_offer(video_qos=LOW)
        violations = offer.qos_violations(MMProfile(video=TV))
        assert set(violations) == {"m.video"}
        assert "color" in violations["m.video"]

    def test_cost_within(self):
        offer = make_offer(cost=4.0)
        assert offer.cost_within(dollars(4))
        assert not offer.cost_within(dollars(3.99))


class TestDeriveUserOffer:
    def test_single_per_medium(self):
        user_offer = derive_user_offer(make_offer(cost=2.5))
        assert user_offer.video == TV
        assert user_offer.cost == dollars(2.5)
        assert user_offer.audio is not None

    def test_multiple_same_medium_takes_worst(self):
        main = video_variant(mid="m.main", qos=TV)
        inset = video_variant(mid="m.inset", name="v9", qos=LOW)
        offer = SystemOffer(
            offer_id="o",
            variants={"m.main": main, "m.inset": inset},
            presented={"m.main": main.qos, "m.inset": inset.qos},
            cost=dollars(1),
        )
        user_offer = derive_user_offer(offer)
        assert user_offer.video == LOW

    def test_language_conflict_merges_to_none(self):
        english = audio_variant(mid="m.a1")
        french = audio_variant(mid="m.a2", language=Language.FRENCH)
        offer = SystemOffer(
            offer_id="o",
            variants={"m.a1": english, "m.a2": french},
            presented={"m.a1": english.qos, "m.a2": french.qos},
            cost=dollars(1),
        )
        assert derive_user_offer(offer).audio.language is Language.NONE
