"""Profile manager: the GUI's Save / Save as / delete / default ops."""

import pytest

from repro.core.profile_manager import (
    ProfileManager,
    make_profile,
    standard_profiles,
)
from repro.documents.media import ColorMode
from repro.documents.quality import VideoQoS
from repro.util.errors import DuplicateKeyError, NotFoundError, ProfileError

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


class TestMakeProfile:
    def test_worst_defaults_to_desired(self):
        profile = make_profile("p", desired_video=TV)
        assert profile.worst.video == TV

    def test_cost_applies_to_both(self):
        profile = make_profile("p", desired_video=TV, max_cost=7.5)
        assert profile.desired.cost.cents == 750
        assert profile.worst.cost.cents == 750

    def test_no_media_rejected(self):
        with pytest.raises(ProfileError):
            make_profile("p")

    def test_extra_media(self):
        from repro.documents.quality import ImageQoS

        image = ImageQoS(color=ColorMode.COLOR, resolution=360)
        profile = make_profile("p", desired_video=TV, desired_image=image)
        assert profile.desired.image == image


class TestStandardProfiles:
    def test_names(self):
        names = {p.name for p in standard_profiles()}
        assert {"premium", "balanced", "economy", "audio-first"} <= names

    def test_premium_ignores_cost(self):
        premium = next(p for p in standard_profiles() if p.name == "premium")
        assert premium.importance.cost_per_dollar == 0.0

    def test_economy_cost_sensitive(self):
        economy = next(p for p in standard_profiles() if p.name == "economy")
        assert economy.importance.cost_per_dollar > 1.0

    def test_audio_first_weighting(self):
        from repro.documents.media import Medium

        audio_first = next(
            p for p in standard_profiles() if p.name == "audio-first"
        )
        assert audio_first.importance.media_weight[Medium.AUDIO] > 1.0


class TestProfileManager:
    def test_populated_by_default(self):
        manager = ProfileManager()
        assert len(manager) == 4
        assert manager.default_name == "premium"

    def test_save_as_new(self):
        manager = ProfileManager()
        manager.save_as(make_profile("custom", desired_video=TV))
        assert "custom" in manager

    def test_save_as_duplicate_rejected(self):
        manager = ProfileManager()
        with pytest.raises(DuplicateKeyError):
            manager.save_as(make_profile("balanced", desired_video=TV))

    def test_save_overwrites(self):
        manager = ProfileManager()
        replacement = make_profile("balanced", desired_video=TV, max_cost=1.0)
        manager.save(replacement)
        assert manager.get("balanced").max_cost.cents == 100

    def test_save_unknown_rejected(self):
        manager = ProfileManager()
        with pytest.raises(NotFoundError):
            manager.save(make_profile("ghost", desired_video=TV))

    def test_delete(self):
        manager = ProfileManager()
        manager.delete("economy")
        assert "economy" not in manager
        with pytest.raises(NotFoundError):
            manager.delete("economy")

    def test_delete_default_moves_default(self):
        manager = ProfileManager()
        manager.delete("premium")
        assert manager.default_name != "premium"
        assert manager.default is not None

    def test_set_default(self):
        manager = ProfileManager()
        manager.set_default("economy")
        assert manager.default.name == "economy"
        with pytest.raises(NotFoundError):
            manager.set_default("ghost")

    def test_empty_manager(self):
        manager = ProfileManager(profiles=[])
        assert len(manager) == 0
        with pytest.raises(NotFoundError):
            _ = manager.default

    def test_iteration(self):
        manager = ProfileManager()
        assert [p.name for p in manager] == list(manager.names())
