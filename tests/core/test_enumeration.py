"""Offer-space enumeration (§4 steps 2–3)."""

import pytest

from repro.client.decoder import Decoder, DecoderBank
from repro.client.machine import ClientMachine
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.documents.builder import (
    DocumentBuilder,
    MonomediaBuilder,
    make_news_article,
)
from repro.documents.media import Codecs, ColorMode, Medium, TV_RESOLUTION
from repro.documents.quality import VideoQoS
from repro.util.errors import OfferError


@pytest.fixture
def document():
    return make_news_article("doc.enum")


@pytest.fixture
def client():
    return ClientMachine("c1")


@pytest.fixture
def space(document, client):
    return build_offer_space(document, client, default_cost_model())


class TestCompatibilityFiltering:
    def test_mjpeg_variants_dropped(self, space, document):
        # The standard decoder bank has no M-JPEG decoder (§4 step 2's
        # own example); half the video variants disappear.
        sizes = space.axis_sizes()
        assert sizes[f"{document.document_id}.video"] == 4
        rejected = space.rejected[f"{document.document_id}.video"]
        assert all(v.codec is Codecs.MJPEG for v in rejected)

    def test_undecodable_everything_empties_axis(self, document):
        client = ClientMachine(
            "bare", decoders=DecoderBank((Decoder(Codecs.JPEG),))
        )
        space = build_offer_space(document, client, default_cost_model())
        assert space.is_empty
        assert f"{document.document_id}.video" in space.empty_axes

    def test_offer_count_is_axis_product(self, space):
        sizes = space.axis_sizes()
        expected = 1
        for size in sizes.values():
            expected *= size
        assert space.offer_count == expected == 4 * 4 * 2 * 2


class TestMaterialisation:
    def test_iter_matches_count(self, space):
        offers = list(space.iter_offers())
        assert len(offers) == space.offer_count

    def test_ids_are_enumeration_indices(self, space):
        offers = space.materialize(max_offers=3)
        assert [o.offer_id for o in offers] == ["offer-1", "offer-2", "offer-3"]

    def test_offer_at_matches_iteration(self, space):
        offers = list(space.iter_offers())
        for index in (0, 1, 7, space.offer_count - 1):
            direct = space.offer_at(index)
            assert direct.variant_ids == offers[index].variant_ids
            assert direct.cost == offers[index].cost

    def test_offer_at_out_of_range(self, space):
        with pytest.raises(OfferError):
            space.offer_at(space.offer_count)
        with pytest.raises(OfferError):
            space.offer_at(-1)

    def test_costs_include_copyright(self, space, document):
        offer = space.offer_at(0)
        per_variant = sum(
            space.axis(mid)[0].cost_cents for mid in space.monomedia_ids
        )
        assert offer.cost.cents == per_variant + document.copyright_cost.cents


class TestPrecomputation:
    def test_spec_for_known_variant(self, space, document):
        variant = space.axis(f"{document.document_id}.video")[0].variant
        spec = space.spec_for(variant)
        assert spec.max_bit_rate > spec.avg_bit_rate > 0

    def test_spec_for_unknown_variant(self, space, document):
        foreign = space.rejected[f"{document.document_id}.video"][0]
        with pytest.raises(OfferError):
            space.spec_for(foreign)

    def test_presented_qos_recorded(self, space, document):
        choice = space.axis(f"{document.document_id}.video")[0]
        assert choice.presented == choice.variant.qos  # full-capability client

    def test_cost_axes_arrays(self, space):
        axes = space.cost_cents_axes()
        assert len(axes) == 4
        assert all(len(a) > 0 for a in axes)

    def test_spec_for_colliding_variant_ids(self, client):
        # Regression: two monomedia may reuse the same variant_id.  The
        # spec index must key on (monomedia_id, variant_id) — a lookup
        # indexed on variant_id alone returned the *other* monomedia's
        # spec for one of these.
        builder = DocumentBuilder("doc.dup", "colliding variant ids")
        for mono_index, frame_rate in ((1, 25), (2, 10)):
            mono = MonomediaBuilder(
                f"doc.dup.m{mono_index}", Medium.VIDEO,
                f"segment {mono_index}", 30.0,
            )
            mono.add_variant(
                Codecs.MPEG1,
                VideoQoS(color=ColorMode.COLOR, frame_rate=frame_rate,
                         resolution=TV_RESOLUTION),
                "server-a",
                variant_id="shared",
            )
            builder.add(mono)
        space = build_offer_space(
            builder.build(), client, default_cost_model()
        )
        for monomedia_id in space.monomedia_ids:
            choice = space.axis(monomedia_id)[0]
            assert choice.variant.variant_id == "shared"
            assert space.spec_for(choice.variant) == choice.spec
        fast, slow = (
            space.spec_for(space.axis(mid)[0].variant)
            for mid in space.monomedia_ids
        )
        assert fast != slow  # 25 f/s vs 10 f/s flows
