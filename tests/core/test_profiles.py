"""MM profiles and user profiles (paper §3)."""

import pytest

from repro.core.profiles import MMProfile, TimeProfile, UserProfile
from repro.documents.media import AudioGrade, ColorMode, Language, Medium
from repro.documents.quality import AudioQoS, TextQoS, VideoQoS
from repro.util.errors import ProfileError
from repro.util.units import dollars

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
LOW = VideoQoS(color=ColorMode.GREY, frame_rate=10, resolution=360)
CD = AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH)
PHONE = AudioQoS(grade=AudioGrade.TELEPHONE, language=Language.ENGLISH)


class TestMMProfile:
    def test_media_present(self):
        profile = MMProfile(video=TV, audio=CD, cost=dollars(5))
        assert set(profile.media_present()) == {Medium.VIDEO, Medium.AUDIO}

    def test_qos_for(self):
        profile = MMProfile(video=TV)
        assert profile.qos_for("video") == TV
        assert profile.qos_for("audio") is None

    def test_wrong_type_rejected(self):
        with pytest.raises(ProfileError):
            MMProfile(video=CD)

    def test_with_qos_replaces_one_medium(self):
        profile = MMProfile(video=TV, audio=CD)
        updated = profile.with_qos(LOW)
        assert updated.video == LOW
        assert updated.audio == CD
        assert profile.video == TV  # original untouched

    def test_with_cost(self):
        assert MMProfile(video=TV).with_cost(3.5).cost == dollars(3.5)

    def test_qos_satisfied_by(self):
        bound = MMProfile(video=LOW, audio=PHONE)
        rich = MMProfile(video=TV, audio=CD)
        assert bound.qos_satisfied_by(rich)
        assert not rich.qos_satisfied_by(bound)

    def test_missing_medium_fails_satisfaction(self):
        bound = MMProfile(video=LOW, audio=PHONE)
        video_only = MMProfile(video=TV)
        assert not bound.qos_satisfied_by(video_only)

    def test_qos_violations_named(self):
        bound = MMProfile(video=TV, audio=CD)
        poor = MMProfile(video=LOW, audio=PHONE)
        violations = bound.qos_violations(poor)
        assert set(violations[Medium.VIDEO]) == {
            "color", "frame_rate", "resolution",
        }
        assert "grade" in violations[Medium.AUDIO]

    def test_cost_satisfied_by(self):
        bound = MMProfile(video=TV, cost=dollars(4))
        assert bound.cost_satisfied_by(MMProfile(video=TV, cost=dollars(4)))
        assert not bound.cost_satisfied_by(MMProfile(video=TV, cost=dollars(4.01)))

    def test_describe_mentions_cost(self):
        assert "$4.00" in MMProfile(video=TV, cost=dollars(4)).describe()


class TestTimeProfile:
    def test_defaults(self):
        time = TimeProfile()
        assert time.choice_period_s > 0
        assert time.delivery_deadline_s > 0

    def test_validation(self):
        with pytest.raises(Exception):
            TimeProfile(choice_period_s=0)


class TestUserProfile:
    def test_valid_construction(self):
        profile = UserProfile(
            name="u",
            desired=MMProfile(video=TV, cost=dollars(6)),
            worst=MMProfile(video=LOW, cost=dollars(6)),
        )
        assert profile.max_cost == dollars(6)
        assert profile.media() == (Medium.VIDEO,)

    def test_desired_must_dominate_worst(self):
        with pytest.raises(ProfileError):
            UserProfile(
                name="u",
                desired=MMProfile(video=LOW),
                worst=MMProfile(video=TV),
            )

    def test_media_must_match(self):
        with pytest.raises(ProfileError):
            UserProfile(
                name="u",
                desired=MMProfile(video=TV, audio=CD),
                worst=MMProfile(video=LOW),
            )

    def test_max_cost_is_larger_bound(self):
        profile = UserProfile(
            name="u",
            desired=MMProfile(video=TV, cost=dollars(8)),
            worst=MMProfile(video=LOW, cost=dollars(5)),
        )
        assert profile.max_cost == dollars(8)

    def test_equal_desired_and_worst_allowed(self):
        # §5.2.1: "the desired and the worst acceptable values are the
        # same".
        UserProfile(
            name="u", desired=MMProfile(video=TV), worst=MMProfile(video=TV)
        )

    def test_choice_period_passthrough(self):
        profile = UserProfile(
            name="u",
            desired=MMProfile(video=TV, time=TimeProfile(choice_period_s=30)),
            worst=MMProfile(video=TV),
        )
        assert profile.choice_period_s == 30

    def test_language_bound_respected(self):
        # A French-desiring profile cannot accept an English-only worst.
        with pytest.raises(ProfileError):
            UserProfile(
                name="u",
                desired=MMProfile(text=TextQoS(language=Language.FRENCH)),
                worst=MMProfile(text=TextQoS(language=Language.ENGLISH)),
            )
