"""Profile persistence: the GUI's Save across sessions."""

from dataclasses import replace

import pytest

from repro.core.importance import paper_example_importance
from repro.core.preferences import SecurityLevel, UserPreferences
from repro.core.profile_io import (
    dump_profiles,
    load_profiles,
    profile_from_record,
    profile_to_record,
    read_profiles,
    save_profiles,
)
from repro.core.profile_manager import ProfileManager, standard_profiles
from repro.util.errors import PersistenceError


class TestProfileRecord:
    @pytest.mark.parametrize("profile", standard_profiles(),
                             ids=lambda p: p.name)
    def test_roundtrip_stock_profiles(self, profile):
        restored = profile_from_record(profile_to_record(profile))
        assert restored.name == profile.name
        assert restored.desired == profile.desired
        assert restored.worst == profile.worst
        assert restored.max_cost == profile.max_cost

    def test_importance_roundtrip_exact(self):
        base = standard_profiles()[0]
        profile = replace(base, importance=paper_example_importance())
        restored = profile_from_record(profile_to_record(profile))
        importance = restored.importance
        # The settings that make the paper examples work must survive.
        assert importance.frame_rate.value(25) == 9.0
        assert importance.frame_rate.value(15) == 5.0  # exact override
        assert importance.cost_per_dollar == 4.0

    def test_preferences_roundtrip(self):
        base = standard_profiles()[0]
        prefs = UserPreferences(
            server_preference={"mirror": 2.5, "cdn": -1.0},
            min_security=SecurityLevel.PROTECTED,
        )
        profile = replace(base, preferences=prefs)
        restored = profile_from_record(profile_to_record(profile))
        assert restored.preferences.server_preference == {
            "mirror": 2.5, "cdn": -1.0,
        }
        assert restored.preferences.min_security is SecurityLevel.PROTECTED

    def test_media_weights_roundtrip(self):
        audio_first = next(
            p for p in standard_profiles() if p.name == "audio-first"
        )
        restored = profile_from_record(profile_to_record(audio_first))
        from repro.documents.media import Medium

        assert restored.importance.media_weight[Medium.AUDIO] == 3.0

    def test_missing_field_rejected(self):
        with pytest.raises(PersistenceError):
            profile_from_record({"name": "x"})

    def test_record_is_json_plain(self):
        import json

        for profile in standard_profiles():
            json.dumps(profile_to_record(profile))


class TestManagerStore:
    def test_dump_load_roundtrip(self):
        manager = ProfileManager()
        manager.set_default("economy")
        restored = load_profiles(dump_profiles(manager))
        assert restored.names() == manager.names()
        assert restored.default_name == "economy"

    def test_file_roundtrip(self, tmp_path):
        manager = ProfileManager()
        path = save_profiles(manager, tmp_path / "profiles.json")
        restored = read_profiles(path)
        assert len(restored) == len(manager)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            read_profiles(tmp_path / "absent.json")

    def test_bad_version(self):
        with pytest.raises(PersistenceError):
            load_profiles('{"schema_version": 99, "profiles": []}')

    def test_invalid_json(self):
        with pytest.raises(PersistenceError):
            load_profiles("{nope")

    def test_restored_profiles_negotiate(
        self, manager, document, client, tmp_path
    ):
        """The persisted profile drives a real negotiation identically."""
        store = ProfileManager()
        path = save_profiles(store, tmp_path / "p.json")
        restored = read_profiles(path).get("balanced")
        result = manager.negotiate(document.document_id, restored, client)
        assert result.succeeded
        result.commitment.release()
