"""``choicePeriod`` validation (§8): zero, negative and non-finite
periods are rejected everywhere one can enter the system — profile
construction, profile load, and commitment creation."""

import json
import math

import pytest

from repro.core.classification import classify_space
from repro.core.commitment import Commitment, ResourceCommitter
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.profile_io import dump_profiles, load_profiles
from repro.core.profile_manager import ProfileManager
from repro.core.profiles import TimeProfile
from repro.util.errors import ValidationError

BAD_PERIODS = [0.0, -1.0, -60.0, math.nan, math.inf, -math.inf]


class TestTimeProfile:
    @pytest.mark.parametrize("period", BAD_PERIODS)
    def test_bad_choice_period_rejected_at_construction(self, period):
        with pytest.raises(ValidationError, match="choice_period_s"):
            TimeProfile(choice_period_s=period)

    def test_positive_period_accepted(self):
        assert TimeProfile(choice_period_s=0.5).choice_period_s == 0.5


class TestProfileLoad:
    @pytest.mark.parametrize("period", [0.0, -5.0])
    def test_bad_choice_period_rejected_at_load(self, period):
        envelope = json.loads(dump_profiles(ProfileManager()))
        envelope["profiles"][0]["desired"]["time"]["choice_period_s"] = period
        with pytest.raises(ValidationError, match="choice_period_s"):
            load_profiles(json.dumps(envelope))

    def test_standard_profiles_round_trip(self):
        manager = load_profiles(dump_profiles(ProfileManager()))
        for profile in manager:
            assert profile.choice_period_s > 0


class TestCommitment:
    @pytest.fixture
    def committed(self, document, client, transport, servers, clock,
                  balanced_profile):
        space = build_offer_space(document, client, default_cost_model())
        committer = ResourceCommitter(transport, servers, clock=clock)
        ranked = classify_space(space, balanced_profile, default_importance())
        bundle = committer.try_commit(
            ranked[0].offer, space, client.access_point, holder="s1"
        )
        return bundle, committer

    @pytest.mark.parametrize("period", BAD_PERIODS)
    def test_bad_choice_period_rejected(self, committed, period):
        bundle, committer = committed
        with pytest.raises(ValidationError, match="choice_period_s"):
            Commitment(
                bundle, committer, reserved_at=0.0, choice_period_s=period
            )

    def test_negative_reserved_at_rejected(self, committed):
        bundle, committer = committed
        with pytest.raises(ValidationError, match="reserved_at"):
            Commitment(
                bundle, committer, reserved_at=-1.0, choice_period_s=60.0
            )
