"""Server preference and security extensions (paper §8 conclusion)."""

from dataclasses import replace

import pytest

from repro.core.classification import apply_offer_bonus, classify_offers
from repro.core.importance import default_importance
from repro.core.negotiation import QoSManager
from repro.core.preferences import (
    SecurityLevel,
    ServerAttributes,
    ServerDirectory,
    UserPreferences,
)
from repro.core.status import NegotiationStatus
from repro.paperdata import section_5_offers, section_521_profile
from repro.util.errors import NegotiationError, ProfileError


class TestSecurityLevel:
    def test_ordering(self):
        assert SecurityLevel.PUBLIC < SecurityLevel.PROTECTED < SecurityLevel.CONFIDENTIAL

    def test_parse(self):
        assert SecurityLevel.parse("protected") is SecurityLevel.PROTECTED
        assert SecurityLevel.parse(2) is SecurityLevel.CONFIDENTIAL
        with pytest.raises(ProfileError):
            SecurityLevel.parse("ultra")


class TestServerDirectory:
    def test_unknown_servers_default_public(self):
        directory = ServerDirectory()
        assert directory.security_of("anything") is SecurityLevel.PUBLIC

    def test_register_and_lookup(self):
        directory = ServerDirectory()
        directory.register(
            "server-a", ServerAttributes(security=SecurityLevel.CONFIDENTIAL)
        )
        assert directory.security_of("server-a") is SecurityLevel.CONFIDENTIAL
        assert "server-a" in directory


class TestUserPreferences:
    def test_trivial(self):
        assert UserPreferences().is_trivial
        assert not UserPreferences(server_preference={"s": 1.0}).is_trivial
        assert not UserPreferences(min_security="protected").is_trivial

    def test_variant_filter(self):
        directory = ServerDirectory(
            {"server-a": ServerAttributes(security=SecurityLevel.PROTECTED)}
        )
        prefs = UserPreferences(min_security=SecurityLevel.PROTECTED)
        admissible = prefs.variant_filter(directory)
        offers = section_5_offers()  # all variants on server-a
        variant = next(iter(offers[0].variants.values()))
        assert admissible(variant)
        directory.register(
            "server-a", ServerAttributes(security=SecurityLevel.PUBLIC)
        )
        assert not admissible(variant)

    def test_offer_bonus_sums_variants(self):
        prefs = UserPreferences(server_preference={"server-a": 2.5})
        offer = section_5_offers()[0]
        assert prefs.offer_bonus(offer) == 2.5


class TestApplyOfferBonus:
    def test_zero_bonus_is_identity(self):
        profile = section_521_profile()
        ranked = classify_offers(
            section_5_offers(), profile, default_importance()
        )
        again = apply_offer_bonus(ranked, lambda offer: 0.0)
        assert [c.offer.offer_id for c in again] == [
            c.offer.offer_id for c in ranked
        ]

    def test_bonus_reorders_within_sns_class(self):
        profile = section_521_profile()
        importance = default_importance()
        ranked = classify_offers(section_5_offers(), profile, importance)
        constraints = [c for c in ranked if int(c.sns) == 2]
        worst = constraints[-1].offer.offer_id
        boosted = apply_offer_bonus(
            ranked,
            lambda offer: 1000.0 if offer.offer_id == worst else 0.0,
        )
        boosted_constraints = [c for c in boosted if int(c.sns) == 2]
        assert boosted_constraints[0].offer.offer_id == worst

    def test_bonus_does_not_cross_sns_boundary(self):
        profile = section_521_profile()
        ranked = classify_offers(
            section_5_offers(), profile, default_importance()
        )
        # offer4 is the only ACCEPTABLE; a huge bonus on a CONSTRAINT
        # offer must not put it above offer4 under SNS_PRIMARY.
        boosted = apply_offer_bonus(
            ranked,
            lambda offer: 10_000.0 if offer.offer_id == "offer1" else 0.0,
        )
        assert boosted[0].offer.offer_id == "offer4"


class TestNegotiationIntegration:
    def test_preferred_server_wins_ties(
        self, database, transport, servers, clock, document, balanced_profile, client
    ):
        from repro.core.profile_manager import make_profile
        from repro.documents.media import ColorMode
        from repro.documents.quality import VideoQoS

        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock, directory=ServerDirectory(),
        )
        # A profile whose desired level both servers can meet (15 f/s is
        # enough), so DESIRABLE offers exist on server-a and server-b and
        # the preference bonus decides between them.
        base = make_profile(
            "pref",
            desired_video=VideoQoS(color=ColorMode.COLOR, frame_rate=15,
                                   resolution=720),
            worst_video=VideoQoS(color=ColorMode.GREY, frame_rate=10,
                                 resolution=360),
            max_cost=10.0,
        )
        prefs = UserPreferences(
            server_preference={"server-b": 50.0, "server-a": -50.0}
        )
        profile = replace(base, preferences=prefs)
        result = manager.negotiate(document.document_id, profile, client)
        assert result.succeeded
        video_variant = result.chosen.offer.variant_for(
            f"{document.document_id}.video"
        )
        assert video_variant.server_id == "server-b"
        # Without the preference the higher-quality server-a variant wins.
        result.commitment.release()
        plain = manager.negotiate(document.document_id, base, client)
        assert plain.chosen.offer.variant_for(
            f"{document.document_id}.video"
        ).server_id == "server-a"
        plain.commitment.release()

    def test_security_floor_filters_servers(
        self, database, transport, servers, clock, document, balanced_profile, client
    ):
        directory = ServerDirectory(
            {
                "server-a": ServerAttributes(security=SecurityLevel.CONFIDENTIAL),
                "server-b": ServerAttributes(security=SecurityLevel.PUBLIC),
            }
        )
        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock, directory=directory,
        )
        prefs = UserPreferences(min_security=SecurityLevel.CONFIDENTIAL)
        profile = replace(balanced_profile, preferences=prefs)
        result = manager.negotiate(document.document_id, profile, client)
        assert result.status in (
            NegotiationStatus.SUCCEEDED, NegotiationStatus.FAILED_WITH_OFFER
        )
        assert result.chosen.offer.servers_used() == {"server-a"}
        result.commitment.release()

    def test_security_floor_can_empty_the_space(
        self, database, transport, servers, clock, document, balanced_profile, client
    ):
        directory = ServerDirectory()  # everything PUBLIC
        manager = QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock, directory=directory,
        )
        prefs = UserPreferences(min_security=SecurityLevel.CONFIDENTIAL)
        profile = replace(balanced_profile, preferences=prefs)
        result = manager.negotiate(document.document_id, profile, client)
        assert result.status is NegotiationStatus.FAILED_WITHOUT_OFFER

    def test_invalid_preferences_rejected(
        self, manager, document, balanced_profile, client
    ):
        profile = replace(balanced_profile, preferences="nonsense")
        with pytest.raises(NegotiationError):
            manager.negotiate(document.document_id, profile, client)

    def test_no_directory_ignores_security(
        self, manager, document, balanced_profile, client
    ):
        prefs = UserPreferences(min_security=SecurityLevel.CONFIDENTIAL)
        profile = replace(balanced_profile, preferences=prefs)
        # Without a directory the manager cannot evaluate security; the
        # preference bonus still applies but no variant is filtered.
        result = manager.negotiate(document.document_id, profile, client)
        assert result.succeeded
        result.commitment.release()
