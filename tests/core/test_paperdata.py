"""Sanity of the encoded §5 worked-example data itself."""

import pytest

from repro.documents.media import ColorMode, TV_RESOLUTION
from repro.paperdata import (
    EXPECTED_OIF_SETTING_1,
    EXPECTED_ORDER_SETTING_1,
    EXPECTED_SNS,
    MONOMEDIA_ID,
    importance_setting_1,
    importance_setting_2,
    importance_setting_3,
    section_5_offers,
    section_521_profile,
)
from repro.util.units import dollars


class TestOffersData:
    def test_four_offers_with_paper_costs(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        assert set(offers) == {"offer1", "offer2", "offer3", "offer4"}
        assert offers["offer1"].cost == dollars(2.5)
        assert offers["offer2"].cost == dollars(4)
        assert offers["offer3"].cost == dollars(3)
        assert offers["offer4"].cost == dollars(5)

    def test_qualities_match_paper(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        q1 = offers["offer1"].presented[MONOMEDIA_ID]
        assert q1.color is ColorMode.BLACK_AND_WHITE and q1.frame_rate == 25
        q2 = offers["offer2"].presented[MONOMEDIA_ID]
        assert q2.color is ColorMode.COLOR and q2.frame_rate == 15
        assert all(
            o.presented[MONOMEDIA_ID].resolution == TV_RESOLUTION
            for o in offers.values()
        )

    def test_offers_fresh_each_call(self):
        a = section_5_offers()
        b = section_5_offers()
        assert a is not b and a[0] is not b[0]


class TestProfileData:
    def test_max_cost_is_four_dollars(self):
        assert section_521_profile().max_cost == dollars(4)

    def test_desired_equals_worst(self):
        profile = section_521_profile()
        assert profile.desired.video == profile.worst.video


class TestImportanceSettings:
    def test_setting1_paper_values(self):
        importance = importance_setting_1()
        assert importance.color[ColorMode.COLOR] == 9.0
        assert importance.color[ColorMode.GREY] == 6.0
        assert importance.color[ColorMode.BLACK_AND_WHITE] == 2.0
        assert importance.frame_rate.value(25) == 9.0
        assert importance.frame_rate.value(15) == 5.0
        assert importance.resolution.value(TV_RESOLUTION) == 9.0
        assert importance.cost_per_dollar == 4.0

    def test_setting2_zero_cost_weight(self):
        assert importance_setting_2().cost_per_dollar == 0.0

    def test_setting3_zero_qos_importance(self):
        importance = importance_setting_3()
        offers = section_5_offers()
        for offer in offers:
            qos = offer.presented[MONOMEDIA_ID]
            assert importance.qos_importance(qos) == 0.0

    def test_expected_tables_consistent(self):
        # The encoded expectations must be mutually consistent with the
        # encoded inputs (guards against typos when editing paperdata).
        importance = importance_setting_1()
        for offer in section_5_offers():
            oif = importance.overall_importance(
                list(offer.qos_points()), offer.cost
            )
            assert oif == pytest.approx(EXPECTED_OIF_SETTING_1[offer.offer_id])
        assert set(EXPECTED_SNS) == {o.offer_id for o in section_5_offers()}
        assert set(EXPECTED_ORDER_SETTING_1) == set(EXPECTED_SNS)
