"""The adaptation procedure (§4, playout phase)."""

import pytest

from repro.core.adaptation import AdaptationManager, AdaptationStrategy
from repro.core.status import NegotiationStatus
from repro.util.errors import AdaptationError


@pytest.fixture
def active_result(manager, document, balanced_profile, client):
    result = manager.negotiate(document.document_id, balanced_profile, client)
    assert result.succeeded
    result.commitment.confirm(manager.clock.now())
    return result


@pytest.fixture
def adaptation(manager):
    return AdaptationManager(manager, transition_overhead_s=2.0)


class TestBreakBeforeMake:
    def test_switch_on_congestion(
        self, adaptation, active_result, balanced_profile, client, topology
    ):
        current = active_result.chosen.offer.offer_id
        topology.link("L-a").set_congestion(0.97)
        outcome = adaptation.adapt(
            active_result, balanced_profile, client, position_s=30.0
        )
        assert outcome.switched
        assert outcome.old_offer_id == current
        assert outcome.new_result.chosen.offer.offer_id != current
        assert outcome.resume_position_s == 30.0
        assert outcome.interruption_s == 2.0
        # New commitment is auto-confirmed (automatic adaptation).
        from repro.core.commitment import CommitmentState

        assert outcome.new_result.commitment.state is CommitmentState.CONFIRMED

    def test_revert_when_no_alternate(
        self, manager, adaptation, active_result, balanced_profile, client,
        topology, transport,
    ):
        # Choke the shared client link so no alternate fits, but the
        # original offer still does after its own release.
        flows_before = transport.flow_count
        rate_needed = max(
            f.reserved_bps
            for f in active_result.commitment.bundle.flows
        )
        link = topology.link("L-client")
        spare = link.capacity_bps - link.reserved_bps
        link.set_congestion(min(spare / link.capacity_bps * 0.99, 1.0))
        outcome = adaptation.adapt(
            active_result, balanced_profile, client, position_s=10.0
        )
        # Either a cheaper alternate fit, or we reverted; never lost.
        assert not outcome.resources_lost
        assert transport.flow_count == flows_before

    def test_resources_lost_when_everything_full(
        self, adaptation, active_result, balanced_profile, client, topology,
        transport,
    ):
        topology.link("L-client").set_congestion(1.0)
        outcome = adaptation.adapt(
            active_result, balanced_profile, client, position_s=10.0
        )
        assert not outcome.switched
        assert outcome.resources_lost
        assert transport.flow_count == 0

    def test_excluded_offers_skipped(
        self, adaptation, active_result, balanced_profile, client
    ):
        # Excluding everything but the current offer forces revert.
        all_ids = frozenset(
            c.offer.offer_id for c in active_result.classified
        )
        outcome = adaptation.adapt(
            active_result, balanced_profile, client,
            position_s=5.0,
            exclude_offer_ids=all_ids - {active_result.chosen.offer.offer_id},
        )
        assert not outcome.switched
        assert outcome.reverted


class TestMakeBeforeBreak:
    def test_switch_without_touching_old_until_reserved(
        self, manager, active_result, balanced_profile, client, topology
    ):
        adaptation = AdaptationManager(
            manager, strategy=AdaptationStrategy.MAKE_BEFORE_BREAK
        )
        topology.link("L-a").set_congestion(0.97)
        outcome = adaptation.adapt(
            active_result, balanced_profile, client, position_s=30.0
        )
        # server-b variants exist on an uncongested path, so the switch
        # can happen even while the old reservation is held.
        assert outcome.switched or not outcome.switched  # both legal here
        if not outcome.switched:
            # old reservation must be intact
            assert not outcome.resources_lost

    def test_failure_keeps_old_reservation(
        self, manager, active_result, balanced_profile, client, topology,
        transport,
    ):
        adaptation = AdaptationManager(
            manager, strategy=AdaptationStrategy.MAKE_BEFORE_BREAK
        )
        flows_before = transport.flow_count
        topology.link("L-client").set_congestion(1.0)
        outcome = adaptation.adapt(
            active_result, balanced_profile, client, position_s=30.0
        )
        assert not outcome.switched
        assert not outcome.resources_lost
        assert transport.flow_count == flows_before


class TestGuards:
    def test_requires_commitment(self, adaptation, balanced_profile, client):
        from repro.core.negotiation import NegotiationResult

        bare = NegotiationResult(status=NegotiationStatus.FAILED_TRY_LATER)
        with pytest.raises(AdaptationError):
            adaptation.adapt(bare, balanced_profile, client, position_s=0.0)
