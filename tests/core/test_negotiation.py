"""The six-step negotiation procedure (paper §4)."""

import pytest

from repro.client.decoder import Decoder, DecoderBank
from repro.client.machine import ClientMachine
from repro.core import make_profile
from repro.core.negotiation import QoSManager
from repro.core.status import NegotiationStatus, StaticNegotiationStatus
from repro.documents.media import Codecs, ColorMode, Medium
from repro.documents.quality import VideoQoS
from repro.util.errors import NegotiationError


class TestStep1LocalNegotiation:
    def test_bw_screen_fails_with_local_offer(self, manager, document, balanced_profile):
        bw_client = ClientMachine(
            "bw", screen_color=ColorMode.BLACK_AND_WHITE,
            access_point="client-net",
        )
        result = manager.negotiate(document.document_id, balanced_profile, bw_client)
        assert result.status is NegotiationStatus.FAILED_WITH_LOCAL_OFFER
        assert Medium.VIDEO in result.local_violations
        assert result.user_offer is not None
        assert result.user_offer.video.color is ColorMode.BLACK_AND_WHITE
        assert result.commitment is None

    def test_local_offer_clamps_all_parameters(self, manager, document, balanced_profile):
        small_client = ClientMachine(
            "small", screen_width=360, max_frame_rate=10,
            access_point="client-net",
        )
        result = manager.negotiate(
            document.document_id, balanced_profile, small_client
        )
        assert result.status is NegotiationStatus.FAILED_WITH_LOCAL_OFFER
        assert result.user_offer.video.resolution == 360
        assert result.user_offer.video.frame_rate == 10


class TestStep2Compatibility:
    def test_no_decoder_fails_without_offer(self, manager, document, balanced_profile):
        bare = ClientMachine(
            "bare", decoders=DecoderBank((Decoder(Codecs.JPEG),)),
            access_point="client-net",
        )
        result = manager.negotiate(document.document_id, balanced_profile, bare)
        assert result.status is NegotiationStatus.FAILED_WITHOUT_OFFER
        assert result.user_offer is None


class TestStep5Commitment:
    def test_success_with_resources(self, manager, document, balanced_profile, client):
        result = manager.negotiate(document.document_id, balanced_profile, client)
        assert result.status is NegotiationStatus.SUCCEEDED
        assert result.chosen is not None and result.chosen.satisfies_user
        assert result.commitment is not None
        assert result.attempts == 1
        result.commitment.release()

    def test_best_offer_chosen_first(self, manager, document, balanced_profile, client):
        result = manager.negotiate(document.document_id, balanced_profile, client)
        satisfying = [c for c in result.classified if c.satisfies_user]
        assert result.chosen.offer.offer_id == satisfying[0].offer.offer_id
        result.commitment.release()

    def test_acceptable_fallback_still_succeeds(
        self, manager, document, balanced_profile, client, topology
    ):
        # Starve the network below the desired offer's peak rate: the
        # manager walks down the classified list and still SUCCEEDS with
        # a lesser offer inside the worst-acceptable bounds.
        topology.link("L-client").set_congestion(0.97)  # 3 Mbps left
        result = manager.negotiate(document.document_id, balanced_profile, client)
        assert result.status is NegotiationStatus.SUCCEEDED
        assert result.attempts > 1
        assert result.chosen.sns is StaticNegotiationStatus.ACCEPTABLE
        result.commitment.release()

    def test_degraded_offer_when_profile_strict(
        self, manager, document, premium_profile, client, topology
    ):
        # The premium profile's worst bound is colour/15 f/s: with only
        # ~3 Mbps left no colour variant fits, so the manager reserves a
        # CONSTRAINT offer and reports FAILEDWITHOFFER (§4 step 5).
        topology.link("L-client").set_congestion(0.97)
        result = manager.negotiate(document.document_id, premium_profile, client)
        assert result.status is NegotiationStatus.FAILED_WITH_OFFER
        assert not result.chosen.satisfies_user
        result.commitment.release()

    def test_try_later_when_nothing_fits(
        self, manager, document, balanced_profile, client, topology
    ):
        topology.link("L-client").set_congestion(1.0)
        result = manager.negotiate(document.document_id, balanced_profile, client)
        assert result.status is NegotiationStatus.FAILED_TRY_LATER
        assert result.commitment is None
        assert result.attempts == len(result.classified)

    def test_resources_clean_after_try_later(
        self, manager, document, balanced_profile, client, topology, transport, servers
    ):
        topology.link("L-client").set_congestion(1.0)
        manager.negotiate(document.document_id, balanced_profile, client)
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0


class TestDocumentLookup:
    def test_by_id(self, manager, document, balanced_profile, client):
        result = manager.negotiate(document.document_id, balanced_profile, client)
        assert result.succeeded
        result.commitment.release()

    def test_by_object(self, manager, document, balanced_profile, client):
        result = manager.negotiate(document, balanced_profile, client)
        assert result.succeeded
        result.commitment.release()

    def test_unknown_document(self, manager, balanced_profile, client):
        from repro.util.errors import NotFoundError

        with pytest.raises(NotFoundError):
            manager.negotiate("doc.ghost", balanced_profile, client)


class TestProfileInteraction:
    def test_strict_profile_yields_failed_with_offer(
        self, manager, document, client
    ):
        # Demands M-JPEG-grade super quality that no decodable variant
        # provides: the negotiation still returns the best system offer.
        greedy = make_profile(
            "greedy",
            desired_video=VideoQoS(color=ColorMode.SUPER_COLOR,
                                   frame_rate=60, resolution=1920),
            worst_video=VideoQoS(color=ColorMode.SUPER_COLOR,
                                 frame_rate=50, resolution=1920),
            max_cost=100.0,
        )
        # A client good enough to display the request, so step 1 passes
        # and the shortfall is the system's, not the terminal's.
        client = ClientMachine(
            "workstation", screen_width=1920, screen_height=1200,
            screen_color=ColorMode.SUPER_COLOR, max_frame_rate=60,
            access_point="client-net",
        )
        result = manager.negotiate(document.document_id, greedy, client)
        assert result.status is NegotiationStatus.FAILED_WITH_OFFER
        assert result.chosen.sns is StaticNegotiationStatus.CONSTRAINT
        assert result.user_offer is not None
        result.commitment.release()

    def test_invalid_importance_rejected(self, manager, document, client, balanced_profile):
        from dataclasses import replace

        broken = replace(balanced_profile, importance="not an importance")
        with pytest.raises(NegotiationError):
            manager.negotiate(document.document_id, broken, client)

    def test_default_importance_when_none(self, manager, document, client, balanced_profile):
        from dataclasses import replace

        bare = replace(balanced_profile, importance=None)
        result = manager.negotiate(document.document_id, bare, client)
        assert result.succeeded
        result.commitment.release()


class TestResultSummary:
    def test_summary_mentions_status(self, manager, document, balanced_profile, client):
        result = manager.negotiate(document.document_id, balanced_profile, client)
        text = result.summary()
        assert "SUCCEEDED" in text
        assert "offers classified" in text
        result.commitment.release()


class TestMaxOffers:
    def test_max_offers_truncates_classified(self, manager, document,
                                             balanced_profile, client):
        result = manager.negotiate(
            document.document_id, balanced_profile, client, max_offers=3
        )
        assert len(result.classified) == 3
        assert result.succeeded  # the best offers still lead the list
        result.commitment.release()

    def test_renegotiate_releases_previous(self, manager, document,
                                           balanced_profile, premium_profile,
                                           client, transport):
        first = manager.negotiate(document.document_id, premium_profile, client)
        held = transport.flow_count
        assert held > 0
        second = manager.renegotiate(
            first, document.document_id, balanced_profile, client
        )
        assert second.succeeded
        # Only the new commitment's flows remain.
        assert transport.flow_count == len(second.commitment.bundle.flows)
        second.commitment.release()

    def test_renegotiate_after_expiry(self, manager, clock, document,
                                      balanced_profile, client):
        first = manager.negotiate(document.document_id, balanced_profile, client)
        clock.advance(first.commitment.choice_period_s + 1)
        assert first.commitment.expire_check(clock.now())
        second = manager.renegotiate(
            first, document.document_id, balanced_profile, client
        )
        assert second.succeeded
        second.commitment.release()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_max_offers_non_positive_rejected(self, manager, document,
                                              balanced_profile, client, bad):
        # Regression: max_offers=0 used to fall through to classify's
        # top_k clamp and return the full ranking instead of failing.
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="max_offers"):
            manager.negotiate(
                document.document_id, balanced_profile, client,
                max_offers=bad,
            )


class _FailingJournal:
    """Journal stub whose append always dies mid-write."""

    def append(self, *args, **kwargs):
        from repro.util.errors import JournalError

        raise JournalError("disk full")


class TestRenegotiateErrorPropagation:
    """Regression: renegotiate used to swallow *every* NegotiationError
    from the previous commitment's reject(), hiding journal faults and
    state violations behind a silent pass."""

    def test_journal_failure_propagates(self, manager, document,
                                        balanced_profile, client):
        from repro.util.errors import JournalError

        first = manager.negotiate(document.document_id, balanced_profile, client)
        assert first.succeeded
        manager.committer.journal = _FailingJournal()
        with pytest.raises(JournalError):
            manager.renegotiate(
                first, document.document_id, balanced_profile, client
            )

    def test_confirmed_commitment_rejected_loudly(self, manager, clock,
                                                  document, balanced_profile,
                                                  client):
        from repro.util.errors import ReservationError

        first = manager.negotiate(document.document_id, balanced_profile, client)
        first.commitment.confirm(clock.now())
        with pytest.raises(ReservationError):
            manager.renegotiate(
                first, document.document_id, balanced_profile, client
            )
        first.commitment.release()

    def test_already_rejected_is_harmless(self, manager, clock, document,
                                          balanced_profile, client):
        first = manager.negotiate(document.document_id, balanced_profile, client)
        first.commitment.reject(clock.now())
        second = manager.renegotiate(
            first, document.document_id, balanced_profile, client
        )
        assert second.succeeded
        second.commitment.release()
