"""Importance factors: interpolation, overrides, OIF composition (§5.2.2)."""

import numpy as np
import pytest

from repro.core.importance import (
    ImportanceProfile,
    ScaleImportance,
    default_importance,
    paper_example_importance,
)
from repro.documents.media import (
    AudioGrade,
    ColorMode,
    Language,
    Medium,
)
from repro.documents.quality import AudioQoS, ImageQoS, TextQoS, VideoQoS
from repro.util.errors import ProfileError
from repro.util.units import dollars

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)


class TestScaleImportance:
    def test_anchor_values_exact(self):
        scale = ScaleImportance(anchors={1.0: 1.0, 25.0: 9.0, 60.0: 10.0})
        assert scale.value(1) == 1.0
        assert scale.value(25) == 9.0
        assert scale.value(60) == 10.0

    def test_linear_interpolation(self):
        # §5.2.2(a): "the importance increases (or decreases) linearly
        # from frozen rate to TV rate, and from TV rate to HDTV rate".
        scale = ScaleImportance(anchors={1.0: 1.0, 25.0: 9.0, 60.0: 10.0})
        assert scale.value(13) == pytest.approx(1 + (12 / 24) * 8)
        assert scale.value(42.5) == pytest.approx(9 + (17.5 / 35) * 1)

    def test_clamped_outside_anchors(self):
        scale = ScaleImportance(anchors={10.0: 2.0, 20.0: 4.0})
        assert scale.value(5) == 2.0
        assert scale.value(100) == 4.0

    def test_override_beats_interpolation(self):
        scale = ScaleImportance(
            anchors={1.0: 1.0, 25.0: 9.0}, overrides={15.0: 5.0}
        )
        assert scale.value(15) == 5.0
        assert scale.value(14) != 5.0

    def test_with_override(self):
        scale = ScaleImportance(anchors={0.0: 0.0, 10.0: 10.0})
        assert scale.with_override(5, 42).value(5) == 42.0
        assert scale.value(5) == 5.0  # original untouched

    def test_vectorized_matches_scalar(self):
        scale = ScaleImportance(
            anchors={1.0: 1.0, 25.0: 9.0, 60.0: 10.0}, overrides={15.0: 5.0}
        )
        xs = np.array([1, 5, 15, 25, 30, 60], dtype=float)
        vectorized = scale.values(xs)
        scalar = [scale.value(x) for x in xs]
        assert np.allclose(vectorized, scalar)

    def test_empty_anchors_rejected(self):
        with pytest.raises(ProfileError):
            ScaleImportance(anchors={})


class TestQoSImportance:
    def test_video_sums_parameters(self):
        importance = paper_example_importance()
        # color 9 + 25 f/s 9 + TV resolution 9 = 27 (the offer4 value).
        assert importance.qos_importance(TV) == pytest.approx(27.0)

    def test_audio_grade_plus_language(self):
        importance = default_importance().with_language(Language.FRENCH, 3.0)
        qos = AudioQoS(grade=AudioGrade.CD, language=Language.FRENCH)
        expected = importance.audio_grade[AudioGrade.CD] + 3.0
        assert importance.qos_importance(qos) == pytest.approx(expected)

    def test_image_uses_color_and_resolution(self):
        importance = default_importance()
        qos = ImageQoS(color=ColorMode.GREY, resolution=720)
        expected = importance.color[ColorMode.GREY] + importance.resolution.value(720)
        assert importance.qos_importance(qos) == pytest.approx(expected)

    def test_text_language_only(self):
        importance = default_importance().with_language(Language.ENGLISH, 2.0)
        assert importance.qos_importance(
            TextQoS(language=Language.ENGLISH)
        ) == pytest.approx(2.0)

    def test_media_weight_scales(self):
        # §3 example (2): "the audio is more important than the video".
        importance = default_importance().with_media_weight("audio", 3.0)
        qos = AudioQoS(grade=AudioGrade.CD, language=Language.NONE)
        base = default_importance().qos_importance(qos)
        assert importance.qos_importance(qos) == pytest.approx(3.0 * base)


class TestCostImportance:
    def test_product_rule(self):
        # §5.2.2(b): cost importance = (importance of 1 $) x cost.
        importance = paper_example_importance(cost_per_dollar=4.0)
        assert importance.cost_importance(dollars(2.5)) == pytest.approx(10.0)

    def test_zero_weight(self):
        importance = default_importance().with_cost_per_dollar(0.0)
        assert importance.cost_importance(dollars(100)) == 0.0


class TestOverallImportance:
    def test_subtraction(self):
        importance = paper_example_importance()
        oif = importance.overall_importance([TV], dollars(5))
        assert oif == pytest.approx(27.0 - 20.0)

    def test_sums_over_monomedia(self):
        importance = paper_example_importance()
        oif = importance.overall_importance([TV, TV], dollars(0))
        assert oif == pytest.approx(54.0)


class TestEditing:
    def test_with_color(self):
        importance = default_importance().with_color(ColorMode.GREY, 7.0)
        assert importance.color[ColorMode.GREY] == 7.0

    def test_with_frame_rate_override(self):
        importance = default_importance().with_frame_rate_override(17, 4.2)
        assert importance.frame_rate.value(17) == 4.2

    def test_with_resolution_override(self):
        importance = default_importance().with_resolution_override(512, 3.0)
        assert importance.resolution.value(512) == 3.0

    def test_missing_color_levels_rejected(self):
        with pytest.raises(ProfileError):
            ImportanceProfile(
                color={ColorMode.COLOR: 1.0},  # missing other levels
                frame_rate=ScaleImportance(anchors={1.0: 1.0}),
                resolution=ScaleImportance(anchors={10.0: 1.0}),
                audio_grade={AudioGrade.CD: 1.0},
                language={Language.NONE: 0.0},
                media_weight={},
            )

    def test_default_media_weights_filled(self):
        importance = default_importance()
        for medium in Medium:
            assert importance.media_weight[medium] == 1.0
