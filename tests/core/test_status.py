"""Negotiation status enums (paper §4/§5.2.1)."""

from repro.core.status import NegotiationStatus, StaticNegotiationStatus


class TestNegotiationStatus:
    def test_paper_values(self):
        # §4 lists exactly five status values with these spellings.
        assert {s.value for s in NegotiationStatus} == {
            "SUCCEEDED",
            "FAILEDWITHOFFER",
            "FAILEDTRYLATER",
            "FAILEDWITHOUTOFFER",
            "FAILEDWITHLOCALOFFER",
        }

    def test_success_flag(self):
        assert NegotiationStatus.SUCCEEDED.is_success
        assert not NegotiationStatus.FAILED_WITH_OFFER.is_success

    def test_offer_bearing_statuses(self):
        assert NegotiationStatus.SUCCEEDED.has_offer
        assert NegotiationStatus.FAILED_WITH_OFFER.has_offer
        assert NegotiationStatus.FAILED_WITH_LOCAL_OFFER.has_offer
        assert not NegotiationStatus.FAILED_TRY_LATER.has_offer
        assert not NegotiationStatus.FAILED_WITHOUT_OFFER.has_offer

    def test_reserving_statuses(self):
        # Only step-5 successes hold resources pending confirmation.
        assert NegotiationStatus.SUCCEEDED.reserves_resources
        assert NegotiationStatus.FAILED_WITH_OFFER.reserves_resources
        assert not NegotiationStatus.FAILED_WITH_LOCAL_OFFER.reserves_resources

    def test_str_is_paper_spelling(self):
        assert str(NegotiationStatus.FAILED_TRY_LATER) == "FAILEDTRYLATER"


class TestStaticNegotiationStatus:
    def test_sort_order_best_first(self):
        ranked = sorted(StaticNegotiationStatus)
        assert ranked == [
            StaticNegotiationStatus.DESIRABLE,
            StaticNegotiationStatus.ACCEPTABLE,
            StaticNegotiationStatus.CONSTRAINT,
        ]

    def test_satisfies_user(self):
        assert StaticNegotiationStatus.DESIRABLE.satisfies_user
        assert StaticNegotiationStatus.ACCEPTABLE.satisfies_user
        assert not StaticNegotiationStatus.CONSTRAINT.satisfies_user

    def test_str(self):
        assert str(StaticNegotiationStatus.DESIRABLE) == "DESIRABLE"
