"""Cost model: throughput classes, tables, Eq. 1 (§7)."""

import pytest

from repro.core.cost import (
    CostModel,
    CostTable,
    ThroughputClass,
    default_cost_model,
    default_network_table,
    default_server_table,
)
from repro.documents.media import Codecs, ColorMode
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import VideoQoS
from repro.network.qosparams import FlowSpec
from repro.network.transport import GuaranteeType
from repro.util.errors import ValidationError
from repro.util.units import dollars


def video_variant(duration_s=120.0, mid="m1", name="v1"):
    return Variant(
        variant_id=f"{mid}.{name}",
        monomedia_id=mid,
        codec=Codecs.MPEG1,
        qos=VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720),
        size_bits=3e8,
        block_stats=BlockStats(3e5, 1e5, 25.0),
        server_id="s",
        duration_s=duration_s,
    )


SPEC = FlowSpec(
    max_bit_rate=7.5e6, avg_bit_rate=2.5e6,
    max_delay_s=0.25, max_jitter_s=0.01, max_loss_rate=0.003,
)


class TestCostTable:
    def test_classify_picks_smallest_covering(self):
        table = CostTable([
            ThroughputClass(1e6, 0.001),
            ThroughputClass(8e6, 0.01),
        ])
        assert table.classify(0.5e6).ceiling_bps == 1e6
        assert table.classify(1e6).ceiling_bps == 1e6  # inclusive boundary
        assert table.classify(1.01e6).ceiling_bps == 8e6

    def test_rate_above_top_class_rejected(self):
        table = CostTable([ThroughputClass(1e6, 0.001)])
        with pytest.raises(ValidationError):
            table.classify(2e6)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CostTable([])

    def test_duplicate_ceilings_rejected(self):
        with pytest.raises(ValidationError):
            CostTable([ThroughputClass(1e6, 0.1), ThroughputClass(1e6, 0.2)])

    def test_decreasing_cost_rejected(self):
        with pytest.raises(ValidationError):
            CostTable([
                ThroughputClass(1e6, 0.2),
                ThroughputClass(8e6, 0.1),
            ])

    def test_default_tables_monotone(self):
        for table in (default_network_table(), default_server_table()):
            rates = [c.rate_per_second for c in table.classes]
            assert rates == sorted(rates)


class TestMonomediaCost:
    def test_guaranteed_bills_peak_times_duration(self):
        model = default_cost_model()
        item = model.monomedia_cost(video_variant(), SPEC)
        per_second = model.network.cost_per_second(SPEC.max_bit_rate)
        assert item.network_cost == dollars(per_second * 120.0)
        assert item.billed_rate_bps == SPEC.max_bit_rate

    def test_best_effort_bills_avg_with_discount(self):
        model = default_cost_model()
        item = model.monomedia_cost(
            video_variant(), SPEC, GuaranteeType.BEST_EFFORT
        )
        per_second = model.network.cost_per_second(SPEC.avg_bit_rate)
        expected = per_second * 120.0 * (1 - model.best_effort_discount)
        assert item.network_cost == dollars(expected)

    def test_cost_proportional_to_duration(self):
        # CostNet_i = CostNet_class x D_i (Eq. 1's per-term form).
        model = default_cost_model()
        short = model.monomedia_cost(video_variant(duration_s=60.0), SPEC)
        long = model.monomedia_cost(video_variant(duration_s=120.0), SPEC)
        assert long.network_cost.cents == pytest.approx(
            2 * short.network_cost.cents, abs=1
        )

    def test_best_effort_cheaper(self):
        model = default_cost_model()
        guaranteed = model.monomedia_cost(video_variant(), SPEC)
        best_effort = model.monomedia_cost(
            video_variant(), SPEC, GuaranteeType.BEST_EFFORT
        )
        assert best_effort.total < guaranteed.total


class TestDocumentCost:
    def test_equation_1(self):
        # CostDoc = CostCop + sum(CostNet_i + CostSer_i)
        model = default_cost_model()
        items = [
            (video_variant(mid="m1"), SPEC),
            (video_variant(mid="m2"), SPEC),
        ]
        breakdown = model.document_cost(items, copyright_cost=dollars(0.5))
        manual = dollars(0.5)
        for variant, spec in items:
            item = model.monomedia_cost(variant, spec)
            manual = manual + item.network_cost + item.server_cost
        assert breakdown.total == manual

    def test_totals_decompose(self):
        model = default_cost_model()
        breakdown = model.document_cost(
            [(video_variant(), SPEC)], copyright_cost=dollars(1)
        )
        assert (
            breakdown.total
            == breakdown.copyright_cost
            + breakdown.network_total
            + breakdown.server_total
        )

    def test_rows_renderable(self):
        model = default_cost_model()
        breakdown = model.document_cost(
            [(video_variant(), SPEC)], copyright_cost=dollars(1)
        )
        rows = breakdown.rows()
        assert len(rows) == 1 and "m1.v1" in rows[0]


class TestCostMonotonicity:
    def test_higher_rate_never_cheaper(self):
        model = default_cost_model()
        rates = [64e3, 500e3, 2e6, 10e6, 100e6]
        costs = [model.network.cost_per_second(r) for r in rates]
        assert costs == sorted(costs)
