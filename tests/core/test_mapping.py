"""QoS mapping: the §6 bitrate formulas and presets."""

import pytest

from repro.core.mapping import QoSMapper, flow_spec_for_variant
from repro.documents.media import AudioGrade, Codecs, ColorMode, Language
from repro.documents.monomedia import BlockStats, Variant
from repro.documents.quality import AudioQoS, ImageQoS, VideoQoS
from repro.util.errors import ValidationError

VIDEO_STATS = BlockStats(
    max_block_bits=300_000, avg_block_bits=100_000, blocks_per_second=25.0
)


def video_variant(stats=VIDEO_STATS):
    return Variant(
        variant_id="v1",
        monomedia_id="m1",
        codec=Codecs.MPEG1,
        qos=VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720),
        size_bits=3e8,
        block_stats=stats,
        server_id="s",
        duration_s=120.0,
    )


def image_variant(size_bits=4_000_000.0):
    return Variant(
        variant_id="i1",
        monomedia_id="m2",
        codec=Codecs.JPEG,
        qos=ImageQoS(color=ColorMode.COLOR, resolution=720),
        size_bits=size_bits,
        block_stats=BlockStats(size_bits, size_bits, 0.0),
        server_id="s",
        duration_s=120.0,
    )


class TestSection6Formulas:
    def test_video_max_bitrate(self):
        # maxBitRate = (maximum frame length) x (frame rate)
        spec = QoSMapper().flow_spec(video_variant())
        assert spec.max_bit_rate == pytest.approx(300_000 * 25)

    def test_video_avg_bitrate(self):
        # avgBitRate = (average frame length) x (frame rate)
        spec = QoSMapper().flow_spec(video_variant())
        assert spec.avg_bit_rate == pytest.approx(100_000 * 25)

    def test_audio_formula(self):
        stats = BlockStats(max_block_bits=4_000, avg_block_bits=3_000,
                           blocks_per_second=50.0)
        variant = Variant(
            variant_id="a1",
            monomedia_id="m3",
            codec=Codecs.MPEG_AUDIO,
            qos=AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH),
            size_bits=1e7,
            block_stats=stats,
            server_id="s",
            duration_s=120.0,
        )
        spec = QoSMapper().flow_spec(variant)
        assert spec.max_bit_rate == pytest.approx(4_000 * 50)
        assert spec.avg_bit_rate == pytest.approx(3_000 * 50)

    def test_video_presets(self):
        # §6: video jitter 10 ms, loss rate 0.003.
        spec = QoSMapper().flow_spec(video_variant())
        assert spec.max_jitter_s == pytest.approx(0.010)
        assert spec.max_loss_rate == pytest.approx(0.003)

    def test_monotone_in_frame_rate(self):
        slow = BlockStats(300_000, 100_000, 10.0)
        fast = BlockStats(300_000, 100_000, 30.0)
        mapper = QoSMapper()
        assert (
            mapper.continuous_rates(fast)[0] > mapper.continuous_rates(slow)[0]
        )


class TestDiscreteMapping:
    def test_rate_from_window(self):
        spec = QoSMapper(discrete_window_s=2.0).flow_spec(image_variant(4e6))
        assert spec.max_bit_rate == pytest.approx(2e6)
        assert spec.avg_bit_rate == pytest.approx(2e6)

    def test_shorter_window_needs_more_rate(self):
        fast = QoSMapper(discrete_window_s=1.0).flow_spec(image_variant())
        slow = QoSMapper(discrete_window_s=4.0).flow_spec(image_variant())
        assert fast.max_bit_rate == pytest.approx(4 * slow.max_bit_rate)


class TestMapperConfig:
    def test_rate_scale(self):
        base = QoSMapper().flow_spec(video_variant())
        scaled = QoSMapper(rate_scale=2.0).flow_spec(video_variant())
        assert scaled.max_bit_rate == pytest.approx(2 * base.max_bit_rate)

    def test_zero_block_rate_rejected_for_continuous(self):
        bad = video_variant(stats=BlockStats(1e5, 1e5, 0.0))
        with pytest.raises(ValidationError):
            QoSMapper().flow_spec(bad)

    def test_module_level_convenience(self):
        assert flow_spec_for_variant(video_variant()).max_bit_rate > 0
