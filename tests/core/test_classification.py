"""Classification beyond the paper examples: policies, vectorized path."""

import pytest

from repro.client.machine import ClientMachine
from repro.core.classification import (
    ClassificationPolicy,
    classify_offer,
    classify_offers,
    classify_space,
    compute_sns,
)
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.profiles import MMProfile, UserProfile
from repro.core.status import StaticNegotiationStatus
from repro.documents.builder import make_news_article
from repro.documents.media import ColorMode
from repro.documents.quality import VideoQoS
from repro.paperdata import section_5_offers, section_521_profile
from repro.util.units import dollars

TV = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
LOW = VideoQoS(color=ColorMode.GREY, frame_rate=10, resolution=360)


def loose_profile(max_cost=100.0):
    return UserProfile(
        name="loose",
        desired=MMProfile(video=TV, cost=dollars(max_cost)),
        worst=MMProfile(video=LOW, cost=dollars(max_cost)),
        importance=default_importance(),
    )


class TestComputeSns:
    def test_desirable_needs_qos_and_cost(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        profile = loose_profile(max_cost=10.0)
        # offer4 = exactly TV quality, 5 $ <= 10 $ -> DESIRABLE now.
        assert (
            compute_sns(offers["offer4"], profile)
            is StaticNegotiationStatus.DESIRABLE
        )

    def test_acceptable_between_bounds(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        # offer3 (grey, 25 f/s) beats the LOW worst bound but not TV.
        assert (
            compute_sns(offers["offer3"], loose_profile())
            is StaticNegotiationStatus.ACCEPTABLE
        )

    def test_constraint_below_worst(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        strict = section_521_profile()
        assert (
            compute_sns(offers["offer1"], strict)
            is StaticNegotiationStatus.CONSTRAINT
        )


class TestClassifiedOffer:
    def test_satisfies_user_combines_sns_and_cost(self):
        offers = {o.offer_id: o for o in section_5_offers()}
        profile = section_521_profile()
        classified = classify_offer(
            offers["offer4"], profile, default_importance()
        )
        # ACCEPTABLE QoS but 5 $ > 4 $: does not satisfy the user.
        assert classified.sns.satisfies_user
        assert not classified.affordable
        assert not classified.satisfies_user


class TestPolicies:
    def test_sns_primary_groups_by_status(self):
        profile = loose_profile(max_cost=4.0)
        ranked = classify_offers(
            section_5_offers(), profile, default_importance()
        )
        statuses = [int(c.sns) for c in ranked]
        assert statuses == sorted(statuses)

    def test_pure_oif_sorts_by_oif_only(self):
        profile = loose_profile()
        ranked = classify_offers(
            section_5_offers(), profile, default_importance(),
            policy=ClassificationPolicy.PURE_OIF,
        )
        oifs = [c.oif for c in ranked]
        assert oifs == sorted(oifs, reverse=True)

    def test_cost_gated_demotes_unaffordable(self):
        profile = loose_profile(max_cost=2.99)  # nothing but offer1 affordable
        ranked = classify_offers(
            section_5_offers(), profile, default_importance(),
            policy=ClassificationPolicy.COST_GATED,
        )
        for classified in ranked:
            if not classified.affordable:
                assert classified.sns is StaticNegotiationStatus.CONSTRAINT

    def test_stable_tie_break_by_enumeration(self):
        offers = section_5_offers()
        profile = loose_profile()
        zero = default_importance().with_cost_per_dollar(0.0)
        # Force total ties by zeroing all importance sources.
        from repro.core.importance import ImportanceProfile, ScaleImportance
        from repro.documents.media import AudioGrade, Language

        flat = ImportanceProfile(
            color={mode: 0.0 for mode in ColorMode},
            frame_rate=ScaleImportance(anchors={1.0: 0.0, 60.0: 0.0}),
            resolution=ScaleImportance(anchors={10.0: 0.0, 1920.0: 0.0}),
            audio_grade={g: 0.0 for g in AudioGrade},
            language={Language.NONE: 0.0},
            media_weight={},
            cost_per_dollar=0.0,
        )
        ranked = classify_offers(
            offers, profile, flat, policy=ClassificationPolicy.PURE_OIF
        )
        assert [c.offer.offer_id for c in ranked] == [
            "offer1", "offer2", "offer3", "offer4",
        ]


class TestVectorizedAgreement:
    @pytest.mark.parametrize("policy", list(ClassificationPolicy))
    def test_matches_scalar_on_real_space(self, policy, balanced_profile):
        document = make_news_article("doc.vec")
        client = ClientMachine("c1")
        space = build_offer_space(document, client, default_cost_model())
        importance = default_importance()

        vectorized = classify_space(
            space, balanced_profile, importance, policy=policy
        )
        scalar = classify_offers(
            space.materialize(), balanced_profile, importance, policy=policy
        )
        assert len(vectorized) == len(scalar) == space.offer_count
        for v, s in zip(vectorized, scalar):
            assert v.offer.variant_ids == s.offer.variant_ids
            assert v.sns == s.sns
            assert v.oif == pytest.approx(s.oif)
            assert v.affordable == s.affordable

    def test_top_k_prefix(self, balanced_profile):
        document = make_news_article("doc.topk")
        client = ClientMachine("c1")
        space = build_offer_space(document, client, default_cost_model())
        importance = default_importance()
        full = classify_space(space, balanced_profile, importance)
        top = classify_space(space, balanced_profile, importance, top_k=5)
        assert [c.offer.variant_ids for c in top] == [
            c.offer.variant_ids for c in full[:5]
        ]

    def test_empty_space(self, balanced_profile):
        from repro.client.decoder import DecoderBank

        document = make_news_article("doc.empty")
        client = ClientMachine("bare", decoders=DecoderBank(()))
        space = build_offer_space(document, client, default_cost_model())
        assert classify_space(space, balanced_profile, default_importance()) == []


class TestTopKValidation:
    """Regression: ``top_k=0`` used to clamp to "no truncation" and
    silently return the full ranking instead of rejecting the value."""

    @pytest.fixture
    def space(self):
        document = make_news_article("doc.topk0")
        return build_offer_space(
            document, ClientMachine("c1"), default_cost_model()
        )

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_classify_space_rejects_non_positive(
        self, space, balanced_profile, bad
    ):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="top_k"):
            classify_space(
                space, balanced_profile, default_importance(), top_k=bad
            )

    def test_none_still_means_unbounded(self, space, balanced_profile):
        full = classify_space(
            space, balanced_profile, default_importance(), top_k=None
        )
        assert len(full) == space.offer_count

    def test_one_is_the_smallest_valid_bound(self, space, balanced_profile):
        top = classify_space(
            space, balanced_profile, default_importance(), top_k=1
        )
        assert len(top) == 1


class TestVectorCeiling:
    def test_oversized_space_rejected(self, balanced_profile, monkeypatch):
        import repro.core.classification as mod

        document = make_news_article("doc.huge")
        client = ClientMachine("c1")
        space = build_offer_space(document, client, default_cost_model())
        monkeypatch.setattr(mod, "MAX_VECTOR_OFFERS", 10)
        from repro.util.errors import OfferError

        with pytest.raises(OfferError, match="ceiling"):
            mod.classify_space(space, balanced_profile, default_importance())
