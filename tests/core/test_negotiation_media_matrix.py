"""Negotiation across the full media taxonomy (video/audio/image/text/
graphic), including documents the standard fixtures don't cover."""

import pytest

from repro.client.machine import ClientMachine
from repro.core import QoSManager, make_profile
from repro.core.profiles import MMProfile, UserProfile
from repro.core.status import NegotiationStatus
from repro.documents import (
    AudioGrade,
    AudioQoS,
    Codecs,
    ColorMode,
    DocumentBuilder,
    GraphicQoS,
    ImageQoS,
    Language,
    MonomediaBuilder,
    TextQoS,
    VideoQoS,
)
from repro.metadata import MetadataDatabase
from repro.util.units import dollars


def single_medium_document(medium: str):
    builder = MonomediaBuilder(f"solo.{medium}", medium, f"{medium} item", 60.0)
    if medium == "video":
        builder.add_variant(
            Codecs.MPEG1,
            VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720),
            "server-a",
        )
    elif medium == "audio":
        builder.add_variant(
            Codecs.MPEG_AUDIO,
            AudioQoS(grade=AudioGrade.CD, language=Language.FRENCH),
            "server-a",
        )
    elif medium == "image":
        builder.add_variant(
            Codecs.JPEG, ImageQoS(color=ColorMode.COLOR, resolution=720),
            "server-a",
        )
    elif medium == "text":
        builder.add_variant(
            Codecs.HTML, TextQoS(language=Language.FRENCH), "server-a"
        )
    elif medium == "graphic":
        builder.add_variant(
            Codecs.CGM, GraphicQoS(color=ColorMode.COLOR, resolution=500),
            "server-a",
        )
    return DocumentBuilder(f"doc.solo-{medium}", f"solo {medium}").add(
        builder
    ).build()


def profile_for(medium: str) -> UserProfile:
    qos = {
        "video": VideoQoS(color=ColorMode.GREY, frame_rate=10, resolution=360),
        "audio": AudioQoS(grade=AudioGrade.TELEPHONE, language=Language.FRENCH),
        "image": ImageQoS(color=ColorMode.GREY, resolution=360),
        "text": TextQoS(language=Language.FRENCH),
        "graphic": GraphicQoS(color=ColorMode.GREY, resolution=100),
    }[medium]
    return UserProfile(
        name=f"{medium}-profile",
        desired=MMProfile(cost=dollars(10), **{medium: qos}),
        worst=MMProfile(cost=dollars(10), **{medium: qos}),
    )


@pytest.fixture
def manager_for(transport, servers, clock):
    def build(document):
        database = MetadataDatabase()
        database.insert_document(document)
        return QoSManager(
            database=database, transport=transport, servers=servers,
            clock=clock,
        )

    return build


@pytest.mark.parametrize("medium", ["video", "audio", "image", "text", "graphic"])
def test_single_medium_negotiation_succeeds(manager_for, medium, client):
    document = single_medium_document(medium)
    manager = manager_for(document)
    result = manager.negotiate(
        document.document_id, profile_for(medium), client
    )
    assert result.status is NegotiationStatus.SUCCEEDED, medium
    assert result.user_offer.qos_for(medium) is not None
    result.commitment.release()


def test_audio_only_document_on_mute_client(manager_for):
    document = single_medium_document("audio")
    manager = manager_for(document)
    mute = ClientMachine("mute", audio_output=False, access_point="client-net")
    result = manager.negotiate(document.document_id, profile_for("audio"), mute)
    assert result.status is NegotiationStatus.FAILED_WITH_LOCAL_OFFER
    assert result.local_violations


def test_wrong_language_is_constraint_not_rejection(manager_for, client):
    # The stored text is French; an English-demanding user still gets
    # the best system offer (FAILEDWITHOFFER), not a rejection.
    document = single_medium_document("text")
    manager = manager_for(document)
    english = UserProfile(
        name="anglophone",
        desired=MMProfile(text=TextQoS(language=Language.ENGLISH),
                          cost=dollars(10)),
        worst=MMProfile(text=TextQoS(language=Language.ENGLISH),
                        cost=dollars(10)),
    )
    result = manager.negotiate(document.document_id, english, client)
    assert result.status is NegotiationStatus.FAILED_WITH_OFFER
    assert result.user_offer.text.language is Language.FRENCH
    result.commitment.release()


def test_five_media_document(manager_for, client):
    """One document carrying every medium at once."""
    builder = DocumentBuilder("doc.everything", "the works")
    for medium in ("video", "audio", "image", "text", "graphic"):
        solo = single_medium_document(medium)
        builder.add(solo.components[0])
    document = builder.build()
    manager = manager_for(document)
    profile = make_profile(
        "omnivore",
        desired_video=VideoQoS(color=ColorMode.GREY, frame_rate=10,
                               resolution=360),
        desired_audio=AudioQoS(grade=AudioGrade.TELEPHONE,
                               language=Language.FRENCH),
        desired_image=ImageQoS(color=ColorMode.GREY, resolution=360),
        desired_text=TextQoS(language=Language.FRENCH),
        desired_graphic=GraphicQoS(color=ColorMode.GREY, resolution=100),
        max_cost=20.0,
    )
    result = manager.negotiate(document.document_id, profile, client)
    assert result.status is NegotiationStatus.SUCCEEDED
    assert len(result.chosen.offer.variants) == 5
    result.commitment.release()
