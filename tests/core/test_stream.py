"""Best-first offer streaming ≡ full classification (exact order)."""

import itertools

import pytest

from repro.client.decoder import DecoderBank
from repro.client.machine import ClientMachine
from repro.core.classification import ClassificationPolicy, classify_space
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.core.preferences import UserPreferences
from repro.core.status import NegotiationStatus
from repro.core.stream import stream_classified
from repro.documents.builder import make_news_article


@pytest.fixture
def space():
    document = make_news_article("doc.stream")
    return build_offer_space(
        document, ClientMachine("c1"), default_cost_model()
    )


class TestStreamOrder:
    @pytest.mark.parametrize("policy", list(ClassificationPolicy))
    def test_exact_classified_order(self, space, balanced_profile, policy):
        importance = default_importance()
        streamed = list(
            stream_classified(
                space, balanced_profile, importance, policy=policy
            )
        )
        full = classify_space(
            space, balanced_profile, importance, policy=policy
        )
        assert len(streamed) == len(full) == space.offer_count
        for s, f in zip(streamed, full):
            assert s.offer.offer_id == f.offer.offer_id
            assert s.sns is f.sns
            assert s.affordable == f.affordable
            # Bit-identical, not approximately equal: the stream replays
            # the vectorized path's float operation order.
            assert s.oif == f.oif

    def test_lazy_prefix_no_full_drain(self, space, balanced_profile):
        # The whole point: taking the head must not enumerate the tail.
        head = list(
            itertools.islice(
                stream_classified(
                    space, balanced_profile, default_importance()
                ),
                3,
            )
        )
        full = classify_space(space, balanced_profile, default_importance())
        assert [c.offer.offer_id for c in head] == [
            c.offer.offer_id for c in full[:3]
        ]

    def test_empty_space_yields_nothing(self, balanced_profile):
        # Same contract as classify_space: an empty space classifies
        # to an empty ranking.
        document = make_news_article("doc.stream-empty")
        client = ClientMachine("bare", decoders=DecoderBank(()))
        space = build_offer_space(document, client, default_cost_model())
        assert list(
            stream_classified(space, balanced_profile, default_importance())
        ) == []


class TestNegotiationModes:
    def _signature(self, result):
        return (
            result.status,
            result.chosen.offer.offer_id if result.chosen else None,
            result.attempts,
        )

    @pytest.mark.parametrize("mode", ["stream", "auto"])
    def test_same_outcome_as_full(self, manager, document, balanced_profile,
                                  client, mode):
        full = manager.negotiate(
            document.document_id, balanced_profile, client, offer_mode="full"
        )
        full.commitment.release()
        other = manager.negotiate(
            document.document_id, balanced_profile, client, offer_mode=mode
        )
        assert self._signature(other) == self._signature(full)
        other.commitment.release()

    def test_ensure_classified_completes_ranking(self, manager, document,
                                                 balanced_profile, client):
        full = manager.negotiate(
            document.document_id, balanced_profile, client, offer_mode="full"
        )
        full.commitment.release()
        streamed = manager.negotiate(
            document.document_id, balanced_profile, client,
            offer_mode="stream",
        )
        # The stream result holds only the consumed prefix until drained.
        assert len(streamed.classified) <= len(full.classified)
        drained = streamed.ensure_classified()
        assert [c.offer.offer_id for c in drained] == [
            c.offer.offer_id for c in full.classified
        ]
        streamed.commitment.release()

    def test_nontrivial_preferences_fall_back_to_full(
        self, manager, document, balanced_profile, client
    ):
        # offer_bonus makes scores non-separable per axis; auto/stream
        # must take the full-sort path and still agree with it.
        from dataclasses import replace

        biased = replace(
            balanced_profile,
            preferences=UserPreferences(
                server_preference={"server-a": 0.5}
            ),
        )
        full = manager.negotiate(
            document.document_id, biased, client, offer_mode="full"
        )
        full.commitment.release()
        auto = manager.negotiate(
            document.document_id, biased, client, offer_mode="auto"
        )
        assert self._signature(auto) == self._signature(full)
        # Fallback results are fully materialized, nothing left to drain.
        assert len(auto.classified) == len(full.classified)
        auto.commitment.release()

    def test_try_later_signature_matches(self, manager, document,
                                         balanced_profile, client, topology):
        topology.link("L-client").set_congestion(1.0)
        full = manager.negotiate(
            document.document_id, balanced_profile, client, offer_mode="full"
        )
        streamed = manager.negotiate(
            document.document_id, balanced_profile, client,
            offer_mode="stream",
        )
        assert full.status is NegotiationStatus.FAILED_TRY_LATER
        assert self._signature(streamed) == self._signature(full)

    def test_invalid_mode_rejected(self, manager, document, balanced_profile,
                                   client):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="offer_mode"):
            manager.negotiate(
                document.document_id, balanced_profile, client,
                offer_mode="fastest",
            )
