"""The paper's §5 worked examples, verbatim (reproduction targets E1–E4).

Every expected value here is printed in the paper; a failure means the
reproduction diverged from the publication.
"""

import pytest

from repro.core.classification import (
    ClassificationPolicy,
    classify_offer,
    classify_offers,
    compute_sns,
)
from repro.core.status import StaticNegotiationStatus
from repro.paperdata import (
    EXPECTED_OIF_SETTING_1,
    EXPECTED_OIF_SETTING_2,
    EXPECTED_OIF_SETTING_3,
    EXPECTED_ORDER_SETTING_1,
    EXPECTED_ORDER_SETTING_2,
    EXPECTED_ORDER_SETTING_3,
    EXPECTED_SNS,
    importance_setting_1,
    importance_setting_2,
    importance_setting_3,
    section_5_offers,
    section_521_profile,
)


@pytest.fixture
def offers():
    return section_5_offers()


@pytest.fixture
def profile():
    return section_521_profile()


class TestSection521StaticNegotiationStatus:
    """E1: SNS per offer — CONSTRAINT x3, ACCEPTABLE for offer4."""

    def test_sns_values(self, offers, profile):
        for offer in offers:
            sns = compute_sns(offer, profile)
            assert sns.name == EXPECTED_SNS[offer.offer_id], offer.offer_id

    def test_offer4_acceptable_despite_cost(self, offers, profile):
        # offer4 costs 5 $ > the 4 $ maximum, yet the paper classifies it
        # ACCEPTABLE: SNS is a pure QoS comparison.
        offer4 = next(o for o in offers if o.offer_id == "offer4")
        assert compute_sns(offer4, profile) is StaticNegotiationStatus.ACCEPTABLE
        assert not offer4.cost_within(profile.max_cost)


class TestSection522Setting1:
    """E2: OIF {10, 7, 12, 7}; classification offer4, offer3, offer1, offer2."""

    def test_oif_values(self, offers, profile):
        importance = importance_setting_1()
        for offer in offers:
            oif = importance.overall_importance(
                list(offer.qos_points()), offer.cost
            )
            assert oif == pytest.approx(
                EXPECTED_OIF_SETTING_1[offer.offer_id]
            ), offer.offer_id

    def test_classification_order(self, offers):
        profile = section_521_profile(importance_setting_1())
        ranked = classify_offers(offers, profile, importance_setting_1())
        assert tuple(c.offer.offer_id for c in ranked) == EXPECTED_ORDER_SETTING_1


class TestSection522Setting2:
    """E3: cost importance 0 — OIF {20, 23, 24, 27}; order 4, 3, 2, 1."""

    def test_oif_values(self, offers):
        importance = importance_setting_2()
        for offer in offers:
            oif = importance.overall_importance(
                list(offer.qos_points()), offer.cost
            )
            assert oif == pytest.approx(
                EXPECTED_OIF_SETTING_2[offer.offer_id]
            ), offer.offer_id

    def test_classification_order(self, offers):
        profile = section_521_profile(importance_setting_2())
        ranked = classify_offers(offers, profile, importance_setting_2())
        assert tuple(c.offer.offer_id for c in ranked) == EXPECTED_ORDER_SETTING_2


class TestSection522Setting3:
    """E4: QoS importances 0, cost importance 4 — OIF {−10, −16, −12, −20}.

    The paper prints the order offer1, offer3, offer2, offer4, which is
    the pure-OIF order; with the SNS-primary rule of §5.2.2(c) the only
    ACCEPTABLE offer (offer4) would rank first.  Both behaviours are
    checked (see DESIGN.md).
    """

    def test_oif_values(self, offers):
        importance = importance_setting_3()
        for offer in offers:
            oif = importance.overall_importance(
                list(offer.qos_points()), offer.cost
            )
            assert oif == pytest.approx(
                EXPECTED_OIF_SETTING_3[offer.offer_id]
            ), offer.offer_id

    def test_paper_order_under_pure_oif(self, offers):
        profile = section_521_profile(importance_setting_3())
        ranked = classify_offers(
            offers, profile, importance_setting_3(),
            policy=ClassificationPolicy.PURE_OIF,
        )
        assert tuple(c.offer.offer_id for c in ranked) == EXPECTED_ORDER_SETTING_3

    def test_sns_primary_puts_offer4_first(self, offers):
        profile = section_521_profile(importance_setting_3())
        ranked = classify_offers(offers, profile, importance_setting_3())
        assert ranked[0].offer.offer_id == "offer4"

    def test_cost_gated_demotes_offer4(self, offers):
        # Under the cost-gated policy offer4 (5 $ > 4 $) joins the
        # CONSTRAINT class and the paper's printed order re-emerges.
        profile = section_521_profile(importance_setting_3())
        ranked = classify_offers(
            offers, profile, importance_setting_3(),
            policy=ClassificationPolicy.COST_GATED,
        )
        assert tuple(c.offer.offer_id for c in ranked) == EXPECTED_ORDER_SETTING_3


class TestTieBreaking:
    def test_setting1_tie_between_offer2_and_offer4(self, offers):
        # Both score OIF 7 under setting 1; SNS separates them (offer4
        # ACCEPTABLE, offer2 CONSTRAINT).
        importance = importance_setting_1()
        profile = section_521_profile(importance)
        ranked = {
            c.offer.offer_id: c
            for c in classify_offers(offers, profile, importance)
        }
        assert ranked["offer4"].oif == pytest.approx(ranked["offer2"].oif)
        assert ranked["offer4"].sns is StaticNegotiationStatus.ACCEPTABLE
        assert ranked["offer2"].sns is StaticNegotiationStatus.CONSTRAINT
