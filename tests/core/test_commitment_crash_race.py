"""Regression: choicePeriod expiry racing renegotiation and crashes.

Two interleavings used to double-journal (and could double-release) the
same commitment:

* a manager crash firing *after* the EXPIRED record was appended but
  before the in-memory state flipped — the re-armed timer (or any
  teardown path) would then journal EXPIRED/RELEASED a second time;
* the §8 renegotiation rejecting a pending commitment while its
  choicePeriod timer was still armed — the late expiry must see the
  terminal state and do nothing.

``_journal_and_flip`` makes record + state one unit; these tests pin
that behaviour against a journal-backed manager.
"""

import pytest

from repro.core import QoSManager
from repro.core.commitment import CommitmentState
from repro.journal import (
    JournalRecordType,
    RecoveryManager,
    ReservationJournal,
)
from repro.util.errors import ManagerCrashError


@pytest.fixture
def journal():
    return ReservationJournal()


@pytest.fixture
def journaled_manager(database, transport, servers, clock, journal):
    return QoSManager(
        database=database,
        transport=transport,
        servers=servers,
        clock=clock,
        journal=journal,
    )


def total_reserved(servers, transport):
    return (
        sum(s.stream_count for s in servers.values()),
        transport.flow_count,
    )


def crash_once_on(journal, record_type):
    """Arm a crash hook that kills the manager on the first append of
    ``record_type`` (the record itself is already durable)."""

    def hook(record):
        if record.record_type is record_type:
            journal.crash_hook = None
            raise ManagerCrashError("injected crash")

    journal.crash_hook = hook


class TestCrashDuringExpiry:
    def test_expiry_crash_journals_exactly_once(
        self, journaled_manager, servers, transport, journal,
        balanced_profile, client, clock,
    ):
        result = journaled_manager.negotiate(
            "doc.test", balanced_profile, client
        )
        commitment = result.commitment
        assert commitment is not None
        crash_once_on(journal, JournalRecordType.EXPIRED)
        clock.advance(commitment.choice_period_s + 1.0)
        with pytest.raises(ManagerCrashError):
            commitment.expire_check(clock.now())
        # The record hit the journal before the crash; the in-memory
        # state must agree with it.
        assert commitment.state is CommitmentState.EXPIRED
        expired = [
            r for r in journal.records_for(commitment.bundle.holder)
            if r.record_type is JournalRecordType.EXPIRED
        ]
        assert len(expired) == 1

        # Every later teardown path sees the terminal state: no second
        # terminal record, no double release.
        before = len(journal)
        assert commitment.expire_check(clock.now())
        commitment.release()
        commitment.reject(clock.now())
        assert len(journal) == before

        # The bundle now belongs to recovery (the durable EXPIRED
        # record replays the release against the ledgers) — after the
        # replay nothing may stay reserved.
        RecoveryManager(journal, servers, transport, clock=clock).replay()
        assert total_reserved(servers, transport) == (0, 0)

    def test_expiry_without_crash_still_single_record(
        self, journaled_manager, journal, balanced_profile, client, clock,
        servers, transport,
    ):
        result = journaled_manager.negotiate(
            "doc.test", balanced_profile, client
        )
        commitment = result.commitment
        clock.advance(commitment.choice_period_s + 1.0)
        assert commitment.expire_check(clock.now())
        assert commitment.expire_check(clock.now())
        commitment.release()
        terminal = [
            r for r in journal.records_for(commitment.bundle.holder)
            if r.record_type in (
                JournalRecordType.EXPIRED, JournalRecordType.RELEASED
            )
        ]
        assert len(terminal) == 1
        assert total_reserved(servers, transport) == (0, 0)


class TestRenegotiateExpiryRace:
    def test_late_expiry_after_renegotiation_is_inert(
        self, journaled_manager, servers, transport, journal,
        balanced_profile, client, clock,
    ):
        first = journaled_manager.negotiate(
            "doc.test", balanced_profile, client
        )
        old = first.commitment
        assert old is not None
        deadline = old.deadline

        # Mid-choice-period the user edits the profile and pushes OK:
        # renegotiation rejects the pending commitment and reserves a
        # fresh one while the original expiry timer stays armed.
        second = journaled_manager.renegotiate(
            first, "doc.test", balanced_profile, client
        )
        assert second.commitment is not None
        assert old.state is CommitmentState.REJECTED
        second.commitment.confirm(clock.now())

        held_after_reneg = total_reserved(servers, transport)
        records_after_reneg = len(journal)

        # The timer fires late, against the already-terminal state.
        clock.advance(deadline - clock.now() + 5.0)
        assert not old.expire_check(clock.now())
        old.release()
        assert len(journal) == records_after_reneg
        assert total_reserved(servers, transport) == held_after_reneg

        # Only the renegotiated bundle is still out; releasing it
        # returns the deployment to empty.
        second.commitment.release()
        assert total_reserved(servers, transport) == (0, 0)
        for timeline in journal.by_holder().values():
            assert timeline[-1].is_terminal

    def test_expiry_mid_adaptation_crash_then_recovery_is_leak_free(
        self, journaled_manager, servers, transport, journal,
        balanced_profile, client, clock,
    ):
        # Crash on the RELEASED append of the renegotiation's reject —
        # the worst spot: previous commitment terminal on disk only.
        first = journaled_manager.negotiate(
            "doc.test", balanced_profile, client
        )
        old = first.commitment
        crash_once_on(journal, JournalRecordType.RELEASED)
        with pytest.raises(ManagerCrashError):
            journaled_manager.renegotiate(
                first, "doc.test", balanced_profile, client
            )
        assert old.state is CommitmentState.REJECTED
        clock.advance(old.choice_period_s + 10.0)
        before = len(journal)
        assert not old.expire_check(clock.now())
        assert len(journal) == before
        RecoveryManager(journal, servers, transport, clock=clock).replay()
        assert total_reserved(servers, transport) == (0, 0)


class TestSchedulerInterleavedExpiryRace:
    """The same race under the cooperative scheduler: the user's
    confirm task and the choice-period watchdog wake at the same
    simulated instant, and the scheduler seed decides who runs first.
    Whichever wins, the commitment journals exactly one terminal
    transition and nothing leaks."""

    def run_race(self, scheduler_seed, confirm_offset_s):
        from repro.core import ProfileManager
        from repro.service import (
            EXPIRY_MARGIN_S,
            NegotiationService,
            ServicePolicy,
        )
        from repro.sim import ScenarioSpec, build_scenario

        journal = ReservationJournal()
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=2, document_count=1),
            journal=journal,
        )
        profile = ProfileManager().get("balanced")
        # Land the user's think time exactly on the watchdog's wake
        # tick (deadline + margin) plus the caller's offset.
        policy = ServicePolicy(
            confirm_delay_s=(
                profile.choice_period_s + EXPIRY_MARGIN_S + confirm_offset_s
            ),
            confirm_jitter=0.0,
            slow_user_fraction=0.0,
            reject_fraction=0.0,
            hold_s=5.0,
        )
        service = NegotiationService(
            scenario.manager,
            scenario.loop,
            policy=policy,
            scheduler_seed=scheduler_seed,
        )
        service.submit(
            scenario.document_ids()[0],
            profile,
            scenario.any_client(),
            label="race",
        )
        scenario.loop.run()
        return scenario, service, journal

    @pytest.mark.parametrize("scheduler_seed", range(6))
    def test_tied_wakeup_journals_exactly_one_terminal(
        self, scheduler_seed
    ):
        scenario, service, journal = self.run_race(scheduler_seed, 0.0)
        (request,) = service.requests
        assert request.result is not None
        # Both orders resolve to EXPIRED here: the watchdog fires at
        # deadline+margin, and a confirm() attempted at that same
        # instant is itself past the deadline (ConfirmationTimeout).
        assert request.expired
        assert not request.confirmed
        terminal = [
            r for r in journal.records()
            if r.record_type in (
                JournalRecordType.EXPIRED, JournalRecordType.RELEASED
            )
        ]
        assert len(terminal) == 1
        assert terminal[0].record_type is JournalRecordType.EXPIRED
        assert total_reserved(
            scenario.servers, scenario.transport
        ) == (0, 0)

    @pytest.mark.parametrize("scheduler_seed", range(6))
    def test_confirm_at_the_deadline_beats_the_watchdog(
        self, scheduler_seed
    ):
        from repro.service import EXPIRY_MARGIN_S

        # Think time = the choice period exactly: confirm() runs at the
        # deadline (still valid — expiry is strictly after), a full
        # margin before the watchdog can wake.
        scenario, service, journal = self.run_race(
            scheduler_seed, -EXPIRY_MARGIN_S
        )
        (request,) = service.requests
        assert request.confirmed
        assert not request.expired
        terminal = [
            r for r in journal.records()
            if r.record_type in (
                JournalRecordType.EXPIRED, JournalRecordType.RELEASED
            )
        ]
        # Confirmed, held, released: the one terminal record is the
        # RELEASED from teardown — never a stray EXPIRED.
        assert len(terminal) == 1
        assert terminal[0].record_type is JournalRecordType.RELEASED
        assert total_reserved(
            scenario.servers, scenario.transport
        ) == (0, 0)
