"""Resource commitment and user confirmation (§4 steps 5–6)."""

import pytest

from repro.core.classification import classify_space
from repro.core.commitment import (
    Commitment,
    CommitmentState,
    ResourceCommitter,
)
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.util.errors import ConfirmationTimeout, ReservationError


@pytest.fixture
def space(document, client):
    return build_offer_space(document, client, default_cost_model())


@pytest.fixture
def committer(transport, servers):
    return ResourceCommitter(transport, servers)


@pytest.fixture
def best_offer(space, balanced_profile):
    ranked = classify_space(space, balanced_profile, default_importance())
    return ranked[0].offer


class TestTryCommit:
    def test_success_reserves_everything(
        self, committer, best_offer, space, client, transport, servers
    ):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is not None
        assert len(bundle.streams) == len(best_offer.variants)
        assert len(bundle.flows) == len(best_offer.variants)
        assert transport.flow_count == len(best_offer.variants)
        assert sum(s.stream_count for s in servers.values()) == len(
            best_offer.variants
        )

    def test_release_returns_everything(
        self, committer, best_offer, space, client, transport, servers
    ):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        committer.release(bundle)
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0

    def test_failure_rolls_back(
        self, committer, best_offer, space, client, transport, topology, servers
    ):
        # Choke the client access link so the *last* flow reservation
        # fails after earlier resources were taken.
        topology.link("L-client").set_congestion(0.999)
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is None
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0
        assert topology.total_reserved_bps() == 0.0

    def test_unknown_server(self, committer):
        with pytest.raises(ReservationError):
            committer.server("server-zz")


class TestCommitment:
    def _commitment(self, committer, best_offer, space, client, period=60.0):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        return Commitment(
            bundle, committer, reserved_at=0.0, choice_period_s=period
        )

    def test_confirm_within_period(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=30.0)
        assert commitment.state is CommitmentState.CONFIRMED

    def test_confirm_after_deadline_raises_and_releases(
        self, committer, best_offer, space, client, transport
    ):
        commitment = self._commitment(committer, best_offer, space, client)
        with pytest.raises(ConfirmationTimeout):
            commitment.confirm(now=61.0)
        assert commitment.state is CommitmentState.EXPIRED
        assert transport.flow_count == 0

    def test_reject_releases(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.reject(now=10.0)
        assert commitment.state is CommitmentState.REJECTED
        assert transport.flow_count == 0

    def test_expire_check(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        assert not commitment.expire_check(now=59.9)
        assert commitment.expire_check(now=60.1)
        assert transport.flow_count == 0

    def test_double_confirm_rejected(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        with pytest.raises(ReservationError):
            commitment.confirm(now=2.0)

    def test_release_after_confirm(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        assert commitment.state is CommitmentState.RELEASED
        assert transport.flow_count == 0

    def test_release_idempotent(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        commitment.release()  # no raise

    def test_reject_after_expiry_is_noop(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        assert commitment.expire_check(now=100.0)
        commitment.reject(now=101.0)  # no raise
        assert commitment.state is CommitmentState.EXPIRED

    def test_deadline(self, committer, best_offer, space, client):
        commitment = self._commitment(
            committer, best_offer, space, client, period=42.0
        )
        assert commitment.deadline == 42.0
