"""Resource commitment and user confirmation (§4 steps 5–6)."""

import pytest

from repro.cmfs.server import StreamReservation
from repro.core.classification import classify_space
from repro.core.commitment import (
    Commitment,
    CommitmentState,
    ReservationBundle,
    ResourceCommitter,
)
from repro.core.cost import default_cost_model
from repro.core.enumeration import build_offer_space
from repro.core.importance import default_importance
from repro.util.errors import ConfirmationTimeout, ReservationError


@pytest.fixture
def space(document, client):
    return build_offer_space(document, client, default_cost_model())


@pytest.fixture
def committer(transport, servers):
    return ResourceCommitter(transport, servers)


@pytest.fixture
def best_offer(space, balanced_profile):
    ranked = classify_space(space, balanced_profile, default_importance())
    return ranked[0].offer


class TestTryCommit:
    def test_success_reserves_everything(
        self, committer, best_offer, space, client, transport, servers
    ):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is not None
        assert len(bundle.streams) == len(best_offer.variants)
        assert len(bundle.flows) == len(best_offer.variants)
        assert transport.flow_count == len(best_offer.variants)
        assert sum(s.stream_count for s in servers.values()) == len(
            best_offer.variants
        )

    def test_release_returns_everything(
        self, committer, best_offer, space, client, transport, servers
    ):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        committer.release(bundle)
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0

    def test_failure_rolls_back(
        self, committer, best_offer, space, client, transport, topology, servers
    ):
        # Choke the client access link so the *last* flow reservation
        # fails after earlier resources were taken.
        topology.link("L-client").set_congestion(0.999)
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        assert bundle is None
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0
        assert topology.total_reserved_bps() == 0.0

    def test_unknown_server(self, committer):
        with pytest.raises(ReservationError):
            committer.server("server-zz")

    def test_failure_leaves_prior_reservations_untouched(
        self, committer, best_offer, space, client, transport, topology, servers
    ):
        # An unrelated session already holds resources; a commitment that
        # fails mid-way (flow reservation after stream admission) must
        # restore the fleet and transport to exactly that prior state.
        earlier = committer.try_commit(
            best_offer, space, client.access_point, holder="earlier"
        )
        assert earlier is not None
        before_streams = {
            server_id: server.reservations()
            for server_id, server in servers.items()
        }
        before_flows = transport.flow_count
        before_bps = topology.total_reserved_bps()

        topology.link("L-client").set_congestion(0.999)
        assert committer.try_commit(
            best_offer, space, client.access_point, holder="late"
        ) is None
        assert {
            server_id: server.reservations()
            for server_id, server in servers.items()
        } == before_streams
        assert transport.flow_count == before_flows
        assert topology.total_reserved_bps() == before_bps


class TestRollback:
    def _ghost_stream(self):
        return StreamReservation(
            stream_id="server-ghost/stream-1",
            server_id="server-ghost",
            variant_id="v1",
            rate_bps=1e6,
            holder="s1",
            sequence=1,
        )

    def test_unknown_server_does_not_abort_rollback(
        self, committer, best_offer, space, client, transport, servers
    ):
        # A stream from a server since removed from the fleet must be
        # skipped, not raise — else every reservation after it leaks.
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        haunted = ReservationBundle(
            offer=bundle.offer,
            streams=(self._ghost_stream(), *bundle.streams),
            flows=bundle.flows,
            holder=bundle.holder,
        )
        committer.release(haunted)  # no raise
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0

    def test_double_release_is_tolerated(
        self, committer, best_offer, space, client, transport, servers
    ):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        committer.release(bundle)
        committer.release(bundle)  # everything already gone: no raise
        assert transport.flow_count == 0
        assert sum(s.stream_count for s in servers.values()) == 0


class TestCommitment:
    def _commitment(self, committer, best_offer, space, client, period=60.0):
        bundle = committer.try_commit(
            best_offer, space, client.access_point, holder="s1"
        )
        return Commitment(
            bundle, committer, reserved_at=0.0, choice_period_s=period
        )

    def test_confirm_within_period(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=30.0)
        assert commitment.state is CommitmentState.CONFIRMED

    def test_confirm_after_deadline_raises_and_releases(
        self, committer, best_offer, space, client, transport
    ):
        commitment = self._commitment(committer, best_offer, space, client)
        with pytest.raises(ConfirmationTimeout):
            commitment.confirm(now=61.0)
        assert commitment.state is CommitmentState.EXPIRED
        assert transport.flow_count == 0

    def test_reject_releases(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.reject(now=10.0)
        assert commitment.state is CommitmentState.REJECTED
        assert transport.flow_count == 0

    def test_expire_check(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        assert not commitment.expire_check(now=59.9)
        assert commitment.expire_check(now=60.1)
        assert transport.flow_count == 0

    def test_double_confirm_rejected(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        with pytest.raises(ReservationError):
            commitment.confirm(now=2.0)

    def test_release_after_confirm(self, committer, best_offer, space, client, transport):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        assert commitment.state is CommitmentState.RELEASED
        assert transport.flow_count == 0

    def test_release_idempotent(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        commitment.release()  # no raise

    def test_reject_after_expiry_is_noop(self, committer, best_offer, space, client):
        commitment = self._commitment(committer, best_offer, space, client)
        assert commitment.expire_check(now=100.0)
        commitment.reject(now=101.0)  # no raise
        assert commitment.state is CommitmentState.EXPIRED

    def test_deadline(self, committer, best_offer, space, client):
        commitment = self._commitment(
            committer, best_offer, space, client, period=42.0
        )
        assert commitment.deadline == 42.0

    def test_release_after_expiry_is_safe(
        self, committer, best_offer, space, client, transport
    ):
        # The choicePeriod timer fired first; a late explicit teardown
        # must neither raise nor release the bundle a second time.
        commitment = self._commitment(committer, best_offer, space, client)
        assert commitment.expire_check(now=100.0)
        commitment.release()  # no raise
        assert commitment.state is CommitmentState.EXPIRED
        assert transport.flow_count == 0

    def test_expiry_after_release_does_not_double_release(
        self, committer, best_offer, space, client, transport, servers
    ):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        # Another session now takes the capacity; a stale expiry check on
        # the old commitment must not release anything again.
        other = committer.try_commit(
            best_offer, space, client.access_point, holder="s2"
        )
        assert other is not None
        assert not commitment.expire_check(now=500.0)
        assert transport.flow_count == len(other.flows)
        assert sum(s.stream_count for s in servers.values()) == len(
            other.streams
        )

    def test_reject_after_release_is_noop(
        self, committer, best_offer, space, client
    ):
        commitment = self._commitment(committer, best_offer, space, client)
        commitment.confirm(now=1.0)
        commitment.release()
        commitment.reject(now=2.0)  # no raise
        assert commitment.state is CommitmentState.RELEASED
