"""Workload generation: Poisson arrivals, popularity, profile mix."""

import numpy as np
import pytest

from repro.sim.workload import (
    WorkloadSpec,
    generate_requests,
    zipf_weights,
)
from repro.util.errors import SimulationError

DOCS = [f"doc.{i}" for i in range(10)]
CLIENTS = ["c1", "c2"]


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(10)
        assert weights.sum() == pytest.approx(1.0)

    def test_head_heavy(self):
        weights = zipf_weights(10, skew=1.0)
        assert weights[0] > weights[-1]

    def test_zero_skew_uniform(self):
        weights = zipf_weights(5, skew=0.0)
        assert np.allclose(weights, 0.2)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            zipf_weights(0)


class TestGenerateRequests:
    def test_reproducible(self):
        spec = WorkloadSpec(arrival_rate_per_s=0.1, horizon_s=500)
        a = generate_requests(spec, DOCS, CLIENTS, rng=3)
        b = generate_requests(spec, DOCS, CLIENTS, rng=3)
        assert [(r.arrival_s, r.document_id, r.client_id) for r in a] == [
            (r.arrival_s, r.document_id, r.client_id) for r in b
        ]

    def test_arrivals_sorted_within_horizon(self):
        spec = WorkloadSpec(arrival_rate_per_s=0.1, horizon_s=500)
        requests = generate_requests(spec, DOCS, CLIENTS, rng=3)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0 < t < 500 for t in times)

    def test_rate_roughly_respected(self):
        spec = WorkloadSpec(arrival_rate_per_s=0.2, horizon_s=5_000)
        requests = generate_requests(spec, DOCS, CLIENTS, rng=3)
        assert len(requests) == pytest.approx(1_000, rel=0.15)

    def test_profile_mix_respected(self):
        spec = WorkloadSpec(
            arrival_rate_per_s=0.2, horizon_s=5_000,
            profile_mix=(("premium", 1.0),),
        )
        requests = generate_requests(spec, DOCS, CLIENTS, rng=3)
        assert all(r.profile.name == "premium" for r in requests)

    def test_popularity_skew(self):
        spec = WorkloadSpec(
            arrival_rate_per_s=0.5, horizon_s=10_000, document_skew=1.2
        )
        requests = generate_requests(spec, DOCS, CLIENTS, rng=3)
        counts = {doc: 0 for doc in DOCS}
        for request in requests:
            counts[request.document_id] += 1
        assert counts["doc.0"] > counts["doc.9"]

    def test_unknown_profile_rejected(self):
        spec = WorkloadSpec(profile_mix=(("ghost", 1.0),))
        with pytest.raises(SimulationError):
            generate_requests(spec, DOCS, CLIENTS, rng=3)

    def test_empty_documents_rejected(self):
        with pytest.raises(SimulationError):
            generate_requests(WorkloadSpec(), [], CLIENTS, rng=3)

    def test_custom_profiles(self):
        from repro.core import make_profile
        from repro.documents.media import ColorMode
        from repro.documents.quality import VideoQoS

        custom = make_profile(
            "special",
            desired_video=VideoQoS(color=ColorMode.GREY, frame_rate=10,
                                   resolution=360),
        )
        spec = WorkloadSpec(profile_mix=(("special", 1.0),))
        requests = generate_requests(
            spec, DOCS, CLIENTS, rng=3, profiles=[custom]
        )
        assert requests and all(r.profile is custom for r in requests)
