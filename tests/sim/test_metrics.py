"""Metrics: status tallies, utilization integrals, run stats."""

import pytest

from repro.core.status import NegotiationStatus
from repro.sim.metrics import RunStats, StatusCounts, UtilizationIntegral


class TestStatusCounts:
    def test_tally(self):
        counts = StatusCounts()
        counts.add(NegotiationStatus.SUCCEEDED)
        counts.add(NegotiationStatus.SUCCEEDED)
        counts.add(NegotiationStatus.FAILED_TRY_LATER)
        assert counts.total == 3
        assert counts.succeeded == 2
        assert counts.of(NegotiationStatus.FAILED_TRY_LATER) == 1

    def test_served_includes_degraded_offers(self):
        counts = StatusCounts()
        counts.add(NegotiationStatus.SUCCEEDED)
        counts.add(NegotiationStatus.FAILED_WITH_OFFER)
        counts.add(NegotiationStatus.FAILED_TRY_LATER)
        assert counts.served == 2
        assert counts.blocked == 1
        assert counts.blocking_probability == pytest.approx(1 / 3)

    def test_empty(self):
        counts = StatusCounts()
        assert counts.blocking_probability == 0.0
        assert counts.success_rate == 0.0

    def test_as_dict_uses_paper_spellings(self):
        counts = StatusCounts()
        counts.add(NegotiationStatus.FAILED_WITH_LOCAL_OFFER)
        assert counts.as_dict() == {"FAILEDWITHLOCALOFFER": 1}


class TestUtilizationIntegral:
    def test_mean_of_step_signal(self):
        integral = UtilizationIntegral()
        integral.sample(0.0, 10.0)
        integral.sample(5.0, 20.0)   # 10 for [0,5)
        integral.sample(10.0, 0.0)   # 20 for [5,10)
        assert integral.mean(10.0) == pytest.approx(15.0)

    def test_holds_last_value_to_horizon(self):
        integral = UtilizationIntegral()
        integral.sample(0.0, 10.0)
        assert integral.mean(4.0) == pytest.approx(10.0)

    def test_peak(self):
        integral = UtilizationIntegral()
        integral.sample(0.0, 5.0)
        integral.sample(1.0, 50.0)
        integral.sample(2.0, 1.0)
        assert integral.peak == 50.0

    def test_time_must_not_go_backwards(self):
        integral = UtilizationIntegral()
        integral.sample(5.0, 1.0)
        with pytest.raises(ValueError):
            integral.sample(4.0, 1.0)

    def test_zero_horizon(self):
        assert UtilizationIntegral().mean(0.0) == 0.0


class TestRunStats:
    def test_mean_attempts(self):
        stats = RunStats()
        stats.statuses.add(NegotiationStatus.SUCCEEDED)
        stats.statuses.add(NegotiationStatus.SUCCEEDED)
        stats.attempts_total = 6
        assert stats.mean_attempts == 3.0

    def test_summary_row_shape(self):
        stats = RunStats()
        stats.statuses.add(NegotiationStatus.SUCCEEDED)
        row = stats.summary_row("x")
        assert len(row) == len(RunStats.summary_headers())
        assert row[0] == "x"

    def test_record_session(self, manager, document, balanced_profile, client):
        from repro.session.playout import PlayoutSession

        result = manager.negotiate(
            document.document_id, balanced_profile, client
        )
        result.commitment.confirm(0.0)
        session = PlayoutSession(
            "s", result, balanced_profile, client,
            started_at=0.0, duration_s=10.0,
        )
        session.complete(10.0)
        stats = RunStats()
        stats.record_session(session)
        assert stats.completed_sessions == 1
        assert stats.aborted_sessions == 0
