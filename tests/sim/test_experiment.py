"""Workload execution driver."""

import pytest

from repro.core.status import NegotiationStatus
from repro.sim.baselines import SmartNegotiator, StaticNegotiator
from repro.sim.experiment import RunConfig, run_workload
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import WorkloadSpec, generate_requests


def small_scenario():
    return build_scenario(
        ScenarioSpec(server_count=2, client_count=2, document_count=3)
    )


def requests_for(scenario, rate=0.05, horizon=600.0, seed=11):
    return generate_requests(
        WorkloadSpec(arrival_rate_per_s=rate, horizon_s=horizon),
        scenario.document_ids(),
        list(scenario.clients),
        rng=seed,
    )


class TestRunWorkload:
    def test_counts_every_request(self):
        scenario = small_scenario()
        requests = requests_for(scenario)
        stats = run_workload(scenario, SmartNegotiator(scenario.manager), requests)
        assert stats.offered == len(requests)
        assert stats.statuses.total == len(requests)

    def test_resources_released_at_end(self):
        scenario = small_scenario()
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager), requests_for(scenario)
        )
        assert scenario.transport.flow_count == 0
        assert all(s.stream_count == 0 for s in scenario.servers.values())

    def test_sessions_complete(self):
        scenario = small_scenario()
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager), requests_for(scenario)
        )
        assert stats.completed_sessions == stats.statuses.served

    def test_revenue_positive_under_load(self):
        scenario = small_scenario()
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager), requests_for(scenario)
        )
        assert stats.revenue.cents > 0

    def test_utilization_sampled(self):
        scenario = small_scenario()
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager), requests_for(scenario)
        )
        assert stats.network_utilization.peak > 0

    def test_reproducible(self):
        def run():
            scenario = small_scenario()
            return run_workload(
                scenario, SmartNegotiator(scenario.manager),
                requests_for(scenario),
            )

        a, b = run(), run()
        assert a.statuses.as_dict() == b.statuses.as_dict()
        assert a.revenue == b.revenue

    def test_heavy_load_blocks(self):
        scenario = small_scenario()
        stats = run_workload(
            scenario,
            SmartNegotiator(scenario.manager),
            requests_for(scenario, rate=1.0, horizon=600.0),
        )
        assert stats.blocking_probability > 0.3

    def test_smart_beats_static_under_load(self):
        results = {}
        for cls in (SmartNegotiator, StaticNegotiator):
            scenario = small_scenario()
            stats = run_workload(
                scenario,
                cls(scenario.manager),
                requests_for(scenario, rate=0.3, horizon=900.0),
            )
            results[cls.__name__] = stats
        smart = results["SmartNegotiator"]
        static = results["StaticNegotiator"]
        assert smart.statuses.served >= static.statuses.served

    def test_user_rejection_path(self):
        scenario = small_scenario()
        config = RunConfig(user_accepts=lambda result: False)
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager),
            requests_for(scenario), config=config,
        )
        # Offers were made but every one was declined: no sessions.
        assert stats.completed_sessions == 0
        assert stats.revenue.cents == 0
        assert scenario.transport.flow_count == 0

    def test_confirm_delay_with_timeout(self):
        scenario = small_scenario()
        # choice period (60 s default) shorter than the confirm delay:
        # every reservation expires before confirmation.
        config = RunConfig(confirm_delay_s=120.0)
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager),
            requests_for(scenario), config=config,
        )
        assert stats.completed_sessions == 0
        assert scenario.transport.flow_count == 0


class TestRunConfigOptions:
    def test_session_duration_override(self):
        scenario = small_scenario()
        config = RunConfig(
            adaptation_enabled=False, session_duration_s=10.0
        )
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager),
            requests_for(scenario, rate=0.02, horizon=300.0),
            config=config,
        )
        # Short sessions: far less contention than the 120 s default.
        assert stats.completed_sessions == stats.statuses.served
        assert stats.blocking_probability <= 0.2

    def test_injector_integration(self):
        from repro.session.violations import CongestionEpisode, ScriptedInjector

        scenario = small_scenario()
        injector = ScriptedInjector(
            scenario.topology, scenario.servers,
            [CongestionEpisode("link", "L-server-a", 100.0, 50.0, 1.0)],
        )
        stats = run_workload(
            scenario, SmartNegotiator(scenario.manager),
            requests_for(scenario, rate=0.05, horizon=400.0),
            injector=injector,
        )
        assert injector.applied and injector.cleared
        assert scenario.transport.flow_count == 0
