"""The load generator and the overload-survival sweep."""

import json

import pytest

from repro.sim.load import (
    ArrivalSpec,
    LoadCellReport,
    LoadReport,
    LoadSpec,
    arrival_times,
    jain_index,
    run_load,
    run_load_cell,
)
from repro.util.errors import SimulationError, ValidationError
from repro.util.rng import make_rng

QUICK = LoadSpec(
    arrival=ArrivalSpec(kind="poisson", rate_per_s=1.0, horizon_s=30.0),
    multipliers=(1.0,),
)


class TestArrivalSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError, match="arrival kind"):
            ArrivalSpec(kind="bursty")

    def test_bad_rate_is_rejected(self):
        with pytest.raises(ValidationError):
            ArrivalSpec(rate_per_s=0.0)

    def test_poisson_rate_is_flat(self):
        spec = ArrivalSpec(kind="poisson", rate_per_s=2.0)
        assert spec.rate_at(0.0) == spec.rate_at(50.0) == 2.0
        assert spec.peak_rate() == 2.0

    def test_diurnal_rate_oscillates_about_the_base(self):
        spec = ArrivalSpec(
            kind="diurnal", rate_per_s=2.0, amplitude=0.5, period_s=100.0,
        )
        assert spec.rate_at(25.0) == pytest.approx(3.0)   # sin peak
        assert spec.rate_at(75.0) == pytest.approx(1.0)   # sin trough
        assert spec.peak_rate() == pytest.approx(3.0)

    def test_flash_rate_spikes_only_inside_the_window(self):
        spec = ArrivalSpec(
            kind="flash", rate_per_s=1.0, spike_factor=5.0,
            spike_start_s=40.0, spike_duration_s=20.0,
        )
        assert spec.rate_at(39.9) == 1.0
        assert spec.rate_at(40.0) == 5.0
        assert spec.rate_at(59.9) == 5.0
        assert spec.rate_at(60.0) == 1.0
        assert spec.peak_rate() == 5.0


class TestArrivalTimes:
    def test_times_are_sorted_and_inside_the_horizon(self):
        spec = ArrivalSpec(rate_per_s=2.0, horizon_s=50.0)
        times = arrival_times(spec, make_rng(7))
        assert times == sorted(times)
        assert all(0.0 < t < 50.0 for t in times)
        # ~100 expected; a 5-sigma band keeps this deterministic-safe.
        assert 50 <= len(times) <= 150

    def test_same_seed_same_trace(self):
        spec = ArrivalSpec(rate_per_s=1.0, horizon_s=60.0)
        assert arrival_times(spec, make_rng(3)) == arrival_times(
            spec, make_rng(3)
        )

    def test_rate_scale_scales_the_count(self):
        spec = ArrivalSpec(rate_per_s=1.0, horizon_s=200.0)
        base = len(arrival_times(spec, make_rng(5)))
        scaled = len(arrival_times(spec, make_rng(5), rate_scale=4.0))
        assert scaled > 2.5 * base

    def test_flash_crowd_concentrates_in_the_spike(self):
        spec = ArrivalSpec(
            kind="flash", rate_per_s=1.0, horizon_s=100.0,
            spike_factor=8.0, spike_start_s=40.0, spike_duration_s=20.0,
        )
        times = arrival_times(spec, make_rng(11))
        in_spike = sum(1 for t in times if 40.0 <= t < 60.0)
        # The 20-second spike at 8x dwarfs the 80 plain seconds.
        assert in_spike > len(times) / 2


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        assert jain_index([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_degenerate_cases(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestLoadCell:
    def test_quick_cell_is_clean_and_accounted(self):
        cell = run_load_cell(QUICK, 1.0)
        assert cell.offered > 0
        assert sum(cell.statuses.values()) == cell.offered
        assert cell.unfinished == 0
        assert cell.clean
        assert cell.graceful
        assert cell.dishonest_hints == 0
        assert 0.0 <= cell.jain <= 1.0
        assert cell.journal_records > 0

    def test_cell_dict_round_trips_through_json(self):
        cell = run_load_cell(QUICK, 1.0)
        payload = json.loads(json.dumps(cell.as_dict(), sort_keys=True))
        assert payload["offered"] == cell.offered
        assert payload["graceful"] is True


class TestLoadSweep:
    def test_sweep_is_deterministic(self):
        spec = LoadSpec(
            arrival=ArrivalSpec(rate_per_s=1.0, horizon_s=30.0),
            multipliers=(1.0, 4.0),
        )
        a = json.dumps(run_load(spec).as_dict(), sort_keys=True)
        b = json.dumps(run_load(spec).as_dict(), sort_keys=True)
        assert a == b

    def test_saturation_is_the_best_served_rate(self):
        spec = LoadSpec(
            arrival=ArrivalSpec(rate_per_s=1.0, horizon_s=30.0),
            multipliers=(0.5, 1.0),
        )
        report = run_load(spec)
        assert report.saturation_rate_per_s == max(
            c.served_rate_per_s for c in report.cells
        )
        assert report.all_clean

    def test_scheduler_seed_keeps_cells_clean(self):
        for scheduler_seed in (0, 5):
            spec = LoadSpec(
                arrival=ArrivalSpec(rate_per_s=1.0, horizon_s=30.0),
                multipliers=(2.0,),
                scheduler_seed=scheduler_seed,
            )
            (cell,) = run_load(spec).cells
            assert cell.clean
            assert cell.unfinished == 0


class TestGracefulAt2x:
    def cell(self, offered_rate, served_rate, **kw):
        c = LoadCellReport(
            offered_rate_per_s=offered_rate, served_rate_per_s=served_rate
        )
        for key, value in kw.items():
            setattr(c, key, value)
        return c

    def report(self, cells):
        r = LoadReport(cells=cells)
        best = max(cells, key=lambda c: c.served_rate_per_s)
        r.saturation_rate_per_s = best.served_rate_per_s
        return r

    def test_needs_an_overload_cell(self):
        # Served keeps up with offered: the sweep never reached 2x
        # capacity, so the gate cannot pass vacuously.
        r = self.report([self.cell(1.0, 1.0), self.cell(2.0, 2.0)])
        assert not r.graceful_at_2x

    def test_graceful_overload_cell_passes(self):
        r = self.report([self.cell(1.0, 1.0), self.cell(4.0, 2.0)])
        assert r.graceful_at_2x

    def test_starved_overload_cell_fails(self):
        r = self.report([
            self.cell(1.0, 1.0),
            self.cell(4.0, 2.0, unfinished=3),
        ])
        assert not r.graceful_at_2x

    def test_leaky_overload_cell_fails(self):
        r = self.report([
            self.cell(1.0, 1.0),
            self.cell(4.0, 2.0, leaked_streams=1),
        ])
        assert not r.graceful_at_2x

    def test_dishonest_hints_fail(self):
        r = self.report([
            self.cell(1.0, 1.0),
            self.cell(4.0, 2.0, dishonest_hints=2),
        ])
        assert not r.graceful_at_2x
