"""Baseline negotiators: selection-order semantics."""

import pytest

from repro.core.status import NegotiationStatus
from repro.sim.baselines import (
    ALL_BASELINES,
    CostOnlyNegotiator,
    FirstFitNegotiator,
    QoSOnlyNegotiator,
    SmartNegotiator,
    StaticNegotiator,
)


class TestSmartNegotiator:
    def test_delegates_to_manager(self, manager, document, balanced_profile, client):
        negotiator = SmartNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        assert result.status is NegotiationStatus.SUCCEEDED
        result.commitment.release()


class TestStaticNegotiator:
    def test_single_attempt_only(self, manager, document, balanced_profile, client):
        negotiator = StaticNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        assert result.attempts == 1
        if result.commitment:
            result.commitment.release()

    def test_blocks_when_best_unavailable(
        self, manager, document, balanced_profile, client, topology
    ):
        # The best-quality offer needs the full rate; choke the network
        # so only low offers fit — static has no fallback and blocks.
        topology.link("L-client").set_congestion(0.97)
        negotiator = StaticNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        assert result.status is NegotiationStatus.FAILED_TRY_LATER

    def test_smart_survives_same_squeeze(
        self, manager, document, balanced_profile, client, topology
    ):
        topology.link("L-client").set_congestion(0.97)
        result = SmartNegotiator(manager).negotiate(
            document.document_id, balanced_profile, client
        )
        assert result.status in (
            NegotiationStatus.SUCCEEDED, NegotiationStatus.FAILED_WITH_OFFER
        )
        result.commitment.release()


class TestCostOnlyNegotiator:
    def test_picks_cheapest(self, manager, document, balanced_profile, client):
        negotiator = CostOnlyNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        cheapest = min(c.offer.cost for c in result.classified)
        assert result.chosen.offer.cost == cheapest
        result.commitment.release()


class TestQoSOnlyNegotiator:
    def test_picks_highest_quality(self, manager, document, balanced_profile, client):
        negotiator = QoSOnlyNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        # The chosen offer's cost is among the highest (quality tracks
        # cost in the rate model).
        costs = sorted(c.offer.cost for c in result.classified)
        assert result.chosen.offer.cost >= costs[len(costs) // 2]
        result.commitment.release()


class TestFirstFitNegotiator:
    def test_enumeration_order(self, manager, document, balanced_profile, client):
        negotiator = FirstFitNegotiator(manager)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        assert result.chosen.offer.offer_id == "offer-1"
        result.commitment.release()


class TestCommonBehaviour:
    def test_all_run_step1_and_step2(self, manager, document, balanced_profile):
        from repro.client.decoder import DecoderBank
        from repro.client.machine import ClientMachine
        from repro.documents.media import ColorMode

        bw = ClientMachine("bw", screen_color=ColorMode.BLACK_AND_WHITE,
                           access_point="client-net")
        bare = ClientMachine("bare", decoders=DecoderBank(()),
                             access_point="client-net")
        for negotiator in ALL_BASELINES(manager):
            result = negotiator.negotiate(
                document.document_id, balanced_profile, bw
            )
            assert result.status is NegotiationStatus.FAILED_WITH_LOCAL_OFFER
            result = negotiator.negotiate(
                document.document_id, balanced_profile, bare
            )
            assert result.status is NegotiationStatus.FAILED_WITHOUT_OFFER

    def test_names_unique(self, manager):
        names = [n.name for n in ALL_BASELINES(manager)]
        assert len(names) == len(set(names))


class TestRandomNegotiator:
    def test_reproducible_with_seed(self, manager, document, balanced_profile, client):
        from repro.sim.baselines import RandomNegotiator

        def run(seed):
            negotiator = RandomNegotiator(manager, seed=seed)
            result = negotiator.negotiate(
                document.document_id, balanced_profile, client
            )
            chosen = result.chosen.offer.offer_id
            result.commitment.release()
            return chosen

        assert run(5) == run(5)

    def test_is_permutation(self, manager, document, balanced_profile, client):
        from repro.sim.baselines import RandomNegotiator

        negotiator = RandomNegotiator(manager, seed=3)
        result = negotiator.negotiate(
            document.document_id, balanced_profile, client
        )
        ids = sorted(c.offer.offer_id for c in result.classified)
        assert len(ids) == len(set(ids))
        result.commitment.release()
