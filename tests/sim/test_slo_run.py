"""The SLO gate end to end: nominal passes, brownout breaches, and
every artifact is byte-identical across same-seed invocations."""

import pytest

from repro.cli import main
from repro.sim import SloRunSpec, run_slo
from repro.telemetry import read_timeseries_jsonl, write_flamegraph
from repro.util.errors import SimulationError

NOMINAL = SloRunSpec(horizon_s=60.0)
BROWNOUT = SloRunSpec(
    scenario="brownout", horizon_s=60.0,
    brownout_start_s=15.0, brownout_duration_s=30.0,
)


@pytest.fixture(scope="module")
def nominal():
    return run_slo(NOMINAL)


@pytest.fixture(scope="module")
def brownout():
    return run_slo(BROWNOUT)


class TestScenarios:
    def test_nominal_passes_every_slo(self, nominal):
        assert not nominal.breached
        assert all(not r.breached for r in nominal.slo.results)

    def test_brownout_breaches_with_burn_alerts(self, brownout):
        assert brownout.breached
        breached = [r for r in brownout.slo.results if r.breached]
        assert breached
        assert any(r.alerts for r in brownout.slo.results)

    def test_the_brownout_is_the_only_difference(self, nominal, brownout):
        # Same seeds, same arrivals — the fault plan is the whole delta.
        assert (nominal.run.report.offered_rate_per_s
                == brownout.run.report.offered_rate_per_s)

    def test_profile_covers_the_delivered_negotiations(self, nominal):
        assert nominal.profile.paths == len(nominal.paths)
        assert nominal.profile.paths > 0
        assert nominal.profile.top_bottleneck is not None

    def test_report_dict_carries_cell_slo_and_profile(self, nominal):
        document = nominal.as_dict()
        assert document["schema"] == "repro.slo-run/v1"
        assert document["breached"] is False
        assert document["slo"]["slos"]
        assert document["profile"]["paths"] == nominal.profile.paths

    def test_bad_scenarios_are_rejected(self):
        with pytest.raises(SimulationError, match="scenario"):
            SloRunSpec(scenario="meltdown")


class TestDeterminism:
    def test_artifacts_are_byte_identical_across_runs(
        self, nominal, tmp_path
    ):
        again = run_slo(NOMINAL)
        assert nominal.recorder is not None and again.recorder is not None
        assert (nominal.recorder.to_jsonl_lines()
                == again.recorder.to_jsonl_lines())
        one, two = tmp_path / "a.folded", tmp_path / "b.folded"
        write_flamegraph(one, {"nominal": nominal.paths})
        write_flamegraph(two, {"nominal": again.paths})
        assert one.read_bytes() == two.read_bytes()
        assert nominal.slo.to_json() == again.slo.to_json()


CLI_ARGS = [
    "--horizon", "60", "--brownout-start", "15",
    "--brownout-duration", "30",
]


class TestCli:
    def test_nominal_exits_zero_and_writes_artifacts(
        self, capsys, tmp_path
    ):
        timeseries = tmp_path / "ts.jsonl"
        flamegraph = tmp_path / "fg.folded"
        code = main(["slo", *CLI_ARGS,
                     "--timeseries", str(timeseries),
                     "--flamegraph", str(flamegraph)])
        assert code == 0
        assert "SLO scorecard" in capsys.readouterr().out
        dump = read_timeseries_jsonl(timeseries)
        assert dump.header["samples"] > 0
        assert flamegraph.read_text(encoding="utf-8").startswith("nominal;")

    def test_brownout_exits_nonzero(self, capsys):
        code = main(["slo", "--scenario", "brownout", *CLI_ARGS])
        assert code == 1
        assert "BREACHED" in capsys.readouterr().out

    def test_profile_names_a_bottleneck_per_multiplier(
        self, capsys, tmp_path
    ):
        flamegraph = tmp_path / "profile.folded"
        code = main(["profile", "--horizon", "60", "--multipliers", "1",
                     "--flamegraph", str(flamegraph)])
        assert code == 0
        out = capsys.readouterr().out
        assert "top bottleneck" in out
        assert flamegraph.read_text(encoding="utf-8").startswith("x1;")
