"""Scenario builder."""

import pytest

from repro.sim.scenario import Scenario, ScenarioSpec, build_scenario
from repro.util.errors import SimulationError


class TestScenarioSpec:
    def test_defaults_valid(self):
        spec = ScenarioSpec()
        assert spec.server_count >= 1

    def test_invalid_counts(self):
        with pytest.raises(SimulationError):
            ScenarioSpec(server_count=0)
        with pytest.raises(SimulationError):
            ScenarioSpec(client_count=0)
        with pytest.raises(SimulationError):
            ScenarioSpec(document_count=0)


class TestBuildScenario:
    def test_shapes(self):
        scenario = build_scenario(
            ScenarioSpec(server_count=2, client_count=3, document_count=4)
        )
        assert len(scenario.servers) == 2
        assert len(scenario.clients) == 3
        assert len(scenario.catalog) == 4
        assert scenario.database.document_count == 4

    def test_placement_valid(self):
        scenario = build_scenario(ScenarioSpec(server_count=3))
        referenced = scenario.catalog.servers_referenced()
        assert referenced <= set(scenario.servers)

    def test_clients_connected(self):
        scenario = build_scenario(ScenarioSpec())
        for client in scenario.clients.values():
            assert scenario.topology.has_node(client.access_point)

    def test_manager_shares_clock(self):
        scenario = build_scenario(ScenarioSpec())
        assert scenario.manager.clock is scenario.clock
        assert scenario.loop.clock is scenario.clock

    def test_negotiation_works_out_of_the_box(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec())
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        assert result.succeeded
        result.commitment.release()

    def test_reset_resources(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec())
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        assert scenario.transport.flow_count > 0
        scenario.reset_resources()
        assert scenario.transport.flow_count == 0
        assert scenario.topology.total_reserved_bps() == 0.0

    def test_runtime_factory(self):
        scenario = build_scenario(ScenarioSpec())
        runtime = scenario.runtime()
        assert runtime.manager is scenario.manager


class TestMultiDomainScenario:
    def test_builds_hierarchical_transport(self):
        from repro.network.domains import HierarchicalTransport

        scenario = build_scenario(ScenarioSpec(multi_domain=True))
        assert isinstance(scenario.transport, HierarchicalTransport)
        assert set(scenario.transport.agents) == {
            "provider", "metro", "campus",
        }

    def test_negotiation_over_domains(self, balanced_profile):
        scenario = build_scenario(ScenarioSpec(multi_domain=True))
        result = scenario.manager.negotiate(
            scenario.document_ids()[0], balanced_profile, scenario.any_client()
        )
        assert result.succeeded
        assert scenario.transport.total_messages > 0
        result.commitment.release()

    def test_metro_quota_limits_admission(self, balanced_profile):
        from repro.core.status import NegotiationStatus

        scenario = build_scenario(
            ScenarioSpec(multi_domain=True, metro_transit_quota_bps=15e6)
        )
        held = []
        while True:
            result = scenario.manager.negotiate(
                scenario.document_ids()[0], balanced_profile,
                scenario.any_client(),
            )
            if result.status is NegotiationStatus.FAILED_TRY_LATER:
                break
            held.append(result)
            assert len(held) < 50
        metro = scenario.transport.agents["metro"]
        assert metro.transit_reserved_bps <= 15e6 + 1e-6
        for result in held:
            result.commitment.release()
