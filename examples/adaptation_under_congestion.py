#!/usr/bin/env python3
"""Automatic adaptation: a link degrades mid-playout, the QoS manager
switches the session to an alternate configuration without user
intervention (paper §4, adaptation; §1 characteristic 4).

The scenario: the session's video streams from server-a; 10 seconds into
playout the server-a access link loses 97% of its capacity for 30
seconds.  The monitor detects the violation, the adaptation procedure
re-runs step 5 over the remaining classified offers (stop at current
position → reserve alternate → restart), and playout completes with one
short interruption instead of a long stall.

Run:  python examples/adaptation_under_congestion.py
"""

from repro import QoSManager, standard_profiles
from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.documents import make_news_article
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.session import (
    CongestionEpisode,
    EventLoop,
    ScriptedInjector,
    SessionRuntime,
)
from repro.util.clock import ManualClock


def build(adaptation_enabled: bool):
    document = make_news_article("doc.adapt", duration_s=120.0)
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6, link_id="L-client")
    topology.connect("backbone", "server-a-net", 155e6, link_id="L-a")
    topology.connect("backbone", "server-b-net", 155e6, link_id="L-b")
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    transport = TransportSystem(topology)
    clock = ManualClock()
    manager = QoSManager(
        database=database, transport=transport, servers=servers, clock=clock
    )
    loop = EventLoop(clock)
    runtime = SessionRuntime(
        manager, loop, adaptation_enabled=adaptation_enabled,
        on_violation=lambda v: print(
            f"  t={v.detected_at:6.1f}s  violation: {v.source} {v.component} "
            f"hits {v.session_id}"
        ),
    )
    return document, manager, loop, runtime, topology, servers


def run(adaptation_enabled: bool) -> None:
    label = "WITH adaptation" if adaptation_enabled else "WITHOUT adaptation"
    print(f"--- {label} ---")
    document, manager, loop, runtime, topology, servers = build(
        adaptation_enabled
    )
    profile = standard_profiles()[1]  # balanced
    client = ClientMachine("alice", access_point="client-net")
    result = manager.negotiate(document.document_id, profile, client)
    print(f"  negotiated: {result.status}, offer "
          f"{result.chosen.offer.offer_id} on "
          f"{sorted(result.chosen.offer.servers_used())}")
    session = runtime.start_session(result, profile, client)

    injector = ScriptedInjector(
        topology, servers,
        [CongestionEpisode("link", "L-a", start_s=10.0, duration_s=30.0,
                           severity=0.97)],
    )
    injector.arm(loop)
    loop.run()

    record = session.record
    print(f"  outcome: {session.state.value}")
    print(f"    adaptations         : {record.adaptations}")
    print(f"    failed adaptations  : {record.failed_adaptations}")
    print(f"    interruption time   : {record.total_interruption_s:.1f} s")
    print(f"    degraded time       : {record.degraded_time_s:.1f} s")
    print()


def main() -> None:
    run(adaptation_enabled=True)
    run(adaptation_enabled=False)


if __name__ == "__main__":
    main()
