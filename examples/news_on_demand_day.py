#!/usr/bin/env python3
"""A busy hour of the news-on-demand service, smart vs static negotiation.

Reproduces the paper's availability argument (§1, §8: smart negotiation
"increases the availability of the system and the user satisfaction") at
example scale: one hour of Poisson arrivals against a three-server
deployment, served once by the paper's negotiator and once by each
baseline.  Prints the comparison table of success / blocking / revenue.

Run:  python examples/news_on_demand_day.py
"""

from repro.sim import (
    ALL_BASELINES,
    RunConfig,
    WorkloadSpec,
    build_scenario,
    generate_requests,
    run_workload,
    ScenarioSpec,
)
from repro.sim.metrics import RunStats
from repro.util.tables import render_table

SEED = 2026


def main() -> None:
    spec = ScenarioSpec(server_count=3, client_count=4, document_count=8)
    workload = WorkloadSpec(arrival_rate_per_s=0.25, horizon_s=3600.0)

    rows = []
    for build_negotiator in ALL_BASELINES(build_scenario(spec).manager):
        # A fresh scenario per negotiator: identical deployment and
        # workload, independent resource state.
        scenario = build_scenario(spec)
        negotiator = type(build_negotiator)(scenario.manager)
        requests = generate_requests(
            workload, scenario.document_ids(), list(scenario.clients),
            rng=SEED,
        )
        stats = run_workload(
            scenario, negotiator, requests,
            config=RunConfig(adaptation_enabled=False),
        )
        rows.append(stats.summary_row(negotiator.name))

    print(
        render_table(
            RunStats.summary_headers(), rows,
            title="One busy hour, identical workload (seed %d)" % SEED,
        )
    )
    print()
    print("The smart negotiator serves the most requests: when the best")
    print("configuration is saturated it degrades to the next classified")
    print("offer instead of blocking (FAILEDWITHOFFER instead of")
    print("FAILEDTRYLATER), exactly the §4 step-5 behaviour.")


if __name__ == "__main__":
    main()
