#!/usr/bin/env python3
"""Quickstart: negotiate one news article end to end.

Builds the smallest complete deployment (one metadata database, two
media servers, a three-link network, one client workstation), selects a
user profile, runs the six-step negotiation procedure of the paper, and
walks through user confirmation and playout start.

Run:  python examples/quickstart.py
"""

from repro import (
    NegotiationStatus,
    ProfileManager,
    QoSManager,
    make_news_article,
)
from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.session import EventLoop, SessionRuntime
from repro.ui import information_window, main_window
from repro.util.clock import ManualClock


def main() -> None:
    # 1. Content: a news article with a grid of variants (two codecs x
    #    two colours x two frame rates for the video, CD/telephone audio
    #    in English and French, a photo and the article text).
    document = make_news_article("doc.quickstart")
    database = MetadataDatabase()
    database.insert_document(document)

    # 2. Infrastructure: two CMFS machines behind a backbone, one client
    #    access network.
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6, link_id="L-client")
    topology.connect("backbone", "server-a-net", 155e6, link_id="L-a")
    topology.connect("backbone", "server-b-net", 155e6, link_id="L-b")
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    transport = TransportSystem(topology)

    # 3. The QoS manager — the paper's component under study.
    clock = ManualClock()
    manager = QoSManager(
        database=database, transport=transport, servers=servers, clock=clock
    )

    # 4. The user: a profile from the profile manager, a client machine.
    profiles = ProfileManager()
    print(main_window(profiles))
    profile = profiles.get("balanced")
    client = ClientMachine("alice", access_point="client-net")

    # 5. Steps 1-5: negotiate.
    result = manager.negotiate(document.document_id, profile, client)
    print()
    print(information_window(result))
    assert result.status is NegotiationStatus.SUCCEEDED, result.status

    # 6. Step 6: the user confirms within choicePeriod; playout starts.
    loop = EventLoop(clock)
    runtime = SessionRuntime(manager, loop)
    session = runtime.start_session(result, profile, client)
    print()
    print(f"session {session.session_id} playing offer "
          f"{result.chosen.offer.offer_id} "
          f"(servers {sorted(result.chosen.offer.servers_used())}, "
          f"cost {result.chosen.offer.cost})")

    # 7. Play the document to the end.
    loop.run()
    print(f"session finished: {session.state.value}, "
          f"interruptions={session.record.interruptions}")
    assert transport.flow_count == 0, "all flows must be released"


if __name__ == "__main__":
    main()
