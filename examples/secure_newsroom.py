#!/usr/bin/env python3
"""Server preferences and security floors (paper §8 conclusion).

"The user profiles may include ... e.g. the user prefers certain servers
over others, security, etc."  A newsroom has three servers: the hardened
in-house archive (CONFIDENTIAL), a regional mirror (PROTECTED) and a
cheap public CDN node (PUBLIC).  Three users request the same article:

* an **editor** who must stay on CONFIDENTIAL infrastructure;
* a **correspondent** who merely prefers the regional mirror;
* a **subscriber** with no preferences at all.

Run:  python examples/secure_newsroom.py
"""

from dataclasses import replace

from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.core import (
    ProfileManager,
    QoSManager,
    SecurityLevel,
    ServerAttributes,
    ServerDirectory,
    UserPreferences,
)
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem


def build():
    # §2: "Copies of the same file are considered also as variants" —
    # the anchor video is replicated on all three servers, so the
    # negotiation has genuinely interchangeable configurations and the
    # server preference alone decides between them.
    from repro.documents import (
        AudioGrade,
        AudioQoS,
        Codecs,
        ColorMode,
        DocumentBuilder,
        Language,
        MonomediaBuilder,
        VideoQoS,
    )

    tv = VideoQoS(color=ColorMode.COLOR, frame_rate=25, resolution=720)
    video = MonomediaBuilder("doc.exclusive.video", "video", "anchor", 120.0)
    for server_id in ("archive", "mirror", "cdn"):
        video.add_variant(Codecs.MPEG1, tv, server_id)
    video.add_variant(
        Codecs.MPEG1,
        VideoQoS(color=ColorMode.GREY, frame_rate=15, resolution=360),
        "cdn",
    )
    audio = MonomediaBuilder("doc.exclusive.audio", "audio", "track", 120.0)
    for server_id in ("archive", "mirror"):
        audio.add_variant(
            Codecs.MPEG_AUDIO,
            AudioQoS(grade=AudioGrade.CD, language=Language.ENGLISH),
            server_id,
        )
    document = (
        DocumentBuilder("doc.exclusive", "the exclusive")
        .add(video)
        .add(audio)
        .parallel("doc.exclusive.video", "doc.exclusive.audio")
        .copyright(0.5)
        .build()
    )
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6, link_id="L-client")
    for server_id in ("archive", "mirror", "cdn"):
        topology.connect(
            f"{server_id}-net", "backbone", 155e6, link_id=f"L-{server_id}"
        )
    servers = {
        server_id: MediaServer(server_id)
        for server_id in ("archive", "mirror", "cdn")
    }
    directory = ServerDirectory(
        {
            "archive": ServerAttributes(security=SecurityLevel.CONFIDENTIAL),
            "mirror": ServerAttributes(security=SecurityLevel.PROTECTED),
            "cdn": ServerAttributes(security=SecurityLevel.PUBLIC),
        }
    )
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
        directory=directory,
    )
    return document, manager


def main() -> None:
    document, manager = build()
    base = ProfileManager().get("balanced")
    client = ClientMachine("desk-7", access_point="client-net")

    users = {
        "editor (security >= confidential)": replace(
            base, preferences=UserPreferences(
                min_security=SecurityLevel.CONFIDENTIAL
            )
        ),
        "correspondent (prefers the mirror)": replace(
            base, preferences=UserPreferences(
                server_preference={"mirror": 25.0}
            )
        ),
        "subscriber (no preferences)": base,
    }

    for label, profile in users.items():
        result = manager.negotiate(document.document_id, profile, client)
        servers_used = (
            sorted(result.chosen.offer.servers_used())
            if result.chosen
            else []
        )
        print(f"{label}:")
        print(f"  status  : {result.status}")
        print(f"  servers : {', '.join(servers_used) or '-'}")
        if result.user_offer is not None:
            print(f"  offer   : {result.user_offer.describe()}")
        if result.commitment is not None:
            result.commitment.reject(manager.clock.now())
        print()

    print("Security floors filter variants in step 2 (like an unsupported")
    print("codec); preference weights refine the step-4 ordering inside")
    print("each static-negotiation-status class without overriding it.")


if __name__ == "__main__":
    main()
