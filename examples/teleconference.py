#!/usr/bin/env python3
"""Beyond presentational playback: a teleconference over the same API.

The paper's conclusion: "The QoS GUI is customized in our implementation
for a range of presentational applications; however it can be used for
any application handling MM information, such as teleconferencing
systems."  A conference is modelled as one long 'document' per remote
site (the camera feed is a video monomedia with bitrate variants, the
microphone an audio monomedia), negotiated per participant with the
unchanged six-step procedure; adaptation handles a mid-call backbone
brown-out across every leg at once.

Run:  python examples/teleconference.py
"""

from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.core import QoSManager, make_profile
from repro.documents import (
    AudioGrade,
    AudioQoS,
    Codecs,
    ColorMode,
    DocumentBuilder,
    Language,
    MonomediaBuilder,
    VideoQoS,
)
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.session import (
    CongestionEpisode,
    EventLoop,
    ScriptedInjector,
    SessionRuntime,
)
from repro.util.clock import ManualClock

SITES = ("montreal", "ottawa", "vancouver")
CALL_LENGTH_S = 600.0


def feed_document(site: str):
    """One site's outgoing feed: H.261-style tiers of the camera."""
    video = MonomediaBuilder(f"conf.{site}.video", "video",
                             f"{site} camera", CALL_LENGTH_S)
    for color, rate, resolution in (
        (ColorMode.COLOR, 25, 360),
        (ColorMode.COLOR, 15, 360),
        (ColorMode.GREY, 10, 180),
    ):
        video.add_variant(
            Codecs.MPEG1,
            VideoQoS(color=color, frame_rate=rate, resolution=resolution),
            f"mcu-{site}",
        )
    audio = MonomediaBuilder(f"conf.{site}.audio", "audio",
                             f"{site} microphone", CALL_LENGTH_S)
    for grade in (AudioGrade.CD, AudioGrade.TELEPHONE):
        audio.add_variant(
            Codecs.MPEG_AUDIO,
            AudioQoS(grade=grade, language=Language.NONE),
            f"mcu-{site}",
        )
    return (
        DocumentBuilder(f"conf.{site}", f"feed from {site}")
        .add(video)
        .add(audio)
        .parallel(f"conf.{site}.video", f"conf.{site}.audio")
        .build()
    )


def main() -> None:
    database = MetadataDatabase()
    topology = Topology()
    topology.connect("viewer-net", "backbone", 100e6, link_id="L-viewer")
    servers = {}
    for site in SITES:
        database.insert_document(feed_document(site))
        server = MediaServer(f"mcu-{site}")
        servers[server.server_id] = server
        topology.connect(
            server.access_point, "backbone", 155e6, link_id=f"L-{site}"
        )
    clock = ManualClock()
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
        clock=clock,
    )
    loop = EventLoop(clock)
    runtime = SessionRuntime(manager, loop, monitor_period_s=0.5)

    # Conferencing priorities: intelligibility first — audio weighs
    # three times the video, frame rate matters more than colour.
    profile = make_profile(
        "conference",
        desired_video=VideoQoS(color=ColorMode.COLOR, frame_rate=25,
                               resolution=360),
        worst_video=VideoQoS(color=ColorMode.GREY, frame_rate=5,
                             resolution=180),
        desired_audio=AudioQoS(grade=AudioGrade.CD, language=Language.NONE),
        worst_audio=AudioQoS(grade=AudioGrade.TELEPHONE,
                             language=Language.NONE),
        max_cost=30.0,
    )
    profile = type(profile)(
        name=profile.name,
        desired=profile.desired,
        worst=profile.worst,
        importance=profile.importance.with_media_weight("audio", 3.0),
    )
    viewer = ClientMachine("conference-room", access_point="viewer-net")

    print(f"joining a {len(SITES)}-site conference "
          f"({CALL_LENGTH_S / 60:.0f} minutes):\n")
    sessions = {}
    for site in SITES:
        result = manager.negotiate(f"conf.{site}", profile, viewer)
        offer = result.user_offer
        print(f"  {site:<10} {result.status}  video {offer.video}  "
              f"audio {offer.audio}  {offer.cost}")
        sessions[site] = runtime.start_session(result, profile, viewer)

    # Minute 3: the backbone link to Vancouver's MCU browns out for 90 s.
    ScriptedInjector(
        topology, servers,
        [CongestionEpisode("link", "L-vancouver", 180.0, 90.0, 0.999)],
    ).arm(loop)
    loop.run()

    print("\ncall ended; per-leg record:")
    for site, session in sessions.items():
        record = session.record
        print(f"  {site:<10} {session.state.value:<10} "
              f"adaptations={record.adaptations} "
              f"interruption={record.total_interruption_s:.1f}s "
              f"degraded={record.degraded_time_s:.1f}s")
    assert manager.committer.transport.flow_count == 0


if __name__ == "__main__":
    main()
