#!/usr/bin/env python3
"""Capacity planning with the substrate models.

Uses the CMFS disk/admission model and the cost tables directly —
the questions an operator of the news-on-demand service would ask:

* how many concurrent streams does one server sustain per quality level?
* what does each quality level cost the user per minute (Eq. 1)?
* where does the bottleneck move as servers are added?

Run:  python examples/capacity_planning.py
"""

from repro.cmfs import AdmissionController, DiskModel, MediaServer
from repro.core import QoSMapper, default_cost_model
from repro.documents import (
    ColorMode,
    Codecs,
    MonomediaBuilder,
    VideoQoS,
)
from repro.network import GuaranteeType
from repro.util.tables import render_table
from repro.util.units import format_bitrate

QUALITY_LEVELS = [
    ("super-color 25f/s 1080px", ColorMode.SUPER_COLOR, 25, 1080),
    ("color 25f/s 720px (TV)", ColorMode.COLOR, 25, 720),
    ("color 15f/s 720px", ColorMode.COLOR, 15, 720),
    ("grey 25f/s 720px", ColorMode.GREY, 25, 720),
    ("grey 15f/s 360px", ColorMode.GREY, 15, 360),
    ("b&w 5f/s 180px", ColorMode.BLACK_AND_WHITE, 5, 180),
]


def variant_for(label, color, rate, resolution):
    builder = MonomediaBuilder("m.plan", "video", label, 60.0)
    builder.add_variant(
        Codecs.MPEG1,
        VideoQoS(color=color, frame_rate=rate, resolution=resolution),
        "server-x",
    )
    return builder.build().variants[0]


def main() -> None:
    disk = DiskModel()
    admission = AdmissionController(disk=disk)
    mapper = QoSMapper()
    cost_model = default_cost_model()

    rows = []
    for label, color, rate, resolution in QUALITY_LEVELS:
        variant = variant_for(label, color, rate, resolution)
        spec = mapper.flow_spec(variant)
        streams_disk = disk.max_streams_at_rate(spec.max_bit_rate)
        item = cost_model.monomedia_cost(
            variant, spec, GuaranteeType.GUARANTEED
        )
        per_minute = (item.network_cost + item.server_cost) * (60.0 / 60.0)
        rows.append(
            (
                label,
                format_bitrate(spec.avg_bit_rate),
                format_bitrate(spec.max_bit_rate),
                streams_disk,
                str(per_minute) + "/min",
            )
        )

    print(
        render_table(
            ("quality level", "avg rate", "peak rate",
             "streams/disk", "user cost"),
            rows,
            title="Single-disk CMFS capacity and Eq.1 tariffs per quality level",
        )
    )
    print()

    # Bottleneck migration: admit TV-quality streams until refusal, for
    # growing fleet sizes, and report the first limiting resource.
    variant = variant_for(*QUALITY_LEVELS[1])
    spec = QoSMapper().flow_spec(variant)
    rows = []
    for fleet in (1, 2, 4):
        servers = [MediaServer(f"s{i}") for i in range(fleet)]
        admitted = 0
        limit = ""
        while True:
            server = servers[admitted % fleet]
            decision = server.can_admit(spec.max_bit_rate)
            if not decision:
                limit = decision.limiting_resource
                break
            server.admit(f"v{admitted}", spec.max_bit_rate)
            admitted += 1
            if admitted > 10_000:  # safety
                break
        rows.append((fleet, admitted, limit))
    print(
        render_table(
            ("servers", "TV-quality streams admitted", "limiting resource"),
            rows,
            title="Fleet scaling at TV quality",
        )
    )


if __name__ == "__main__":
    main()
