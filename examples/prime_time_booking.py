#!/usr/bin/env python3
"""Future reservations: booking the evening news ahead of time.

Extension after the authors' companion work [Haf 96] ("QoS Negotiation
with Future Reservations"): instead of negotiating live resources at
playout time, users *book* capacity windows on interval ledgers that
mirror the deployment, and claim the booking when their slot starts.

The scene: 18 households want the 19:00 news.  Walk-ins all collide on
the same window; advance bookers are shifted to the nearest free slot.

Run:  python examples/prime_time_booking.py
"""

from repro.core import ProfileManager, QoSManager
from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.documents import make_news_article
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.reservations import AdvanceBookingPlan, AdvanceNegotiator

PRIME_TIME = 19 * 3600.0
SLOT = 150.0
HOUSEHOLDS = 18


def build():
    document = make_news_article("doc.evening-news", duration_s=120.0)
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6, link_id="L-client")
    topology.connect("backbone", "server-a-net", 155e6, link_id="L-a")
    topology.connect("backbone", "server-b-net", 155e6, link_id="L-b")
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
    )
    return document, manager


def main() -> None:
    document, manager = build()
    advance = AdvanceNegotiator(manager)
    profile = ProfileManager().get("balanced")
    client = ClientMachine("household", access_point="client-net")

    print(f"{HOUSEHOLDS} households book the {document.title!r} slot at "
          f"t={PRIME_TIME:.0f}s\n")

    plans = []
    for household in range(1, HOUSEHOLDS + 1):
        for shift in range(0, 13):
            start = PRIME_TIME + shift * SLOT
            plan = advance.negotiate_advance(
                document.document_id, profile, client, start_s=start
            )
            if isinstance(plan, AdvanceBookingPlan):
                delay = shift * SLOT
                note = "prime time" if shift == 0 else f"shifted +{delay:.0f}s"
                print(f"  household {household:2d}: {plan.status} "
                      f"[{plan.start_s:.0f}s, {plan.end_s:.0f}s) ({note})")
                plans.append(plan)
                break
        else:
            print(f"  household {household:2d}: no slot within the evening")

    print(f"\nbooked {len(plans)}/{HOUSEHOLDS}; ledger state:")
    for ledger in advance.planner.ledgers():
        if len(ledger):
            peak = ledger.peak_usage(PRIME_TIME, PRIME_TIME + 14 * SLOT)
            print(f"  {ledger.resource_id:<12} {len(ledger):3d} bookings, "
                  f"peak {peak / 1e6:6.1f} / {ledger.capacity / 1e6:6.1f} Mbps")

    # The first slot arrives: claim the earliest booking.
    first = plans[0]
    result = advance.claim(first, profile, client)
    print(f"\nclaiming {first.plan_id} at slot start: {result.status} "
          f"({manager.committer.transport.flow_count} live flows)")
    result.commitment.confirm(manager.clock.now())
    result.commitment.release()
    for plan in plans[1:]:
        advance.cancel(plan)
    print("remaining bookings cancelled; "
          f"live flows: {manager.committer.transport.flow_count}")


if __name__ == "__main__":
    main()
