#!/usr/bin/env python3
"""Walk through every QoS GUI window of paper §8 (Figures 3-7).

Renders each window in sequence exactly as a user session would see
them: main window → profile component window → per-medium editors →
negotiation → information window; then a failed negotiation showing the
red (!) constraint buttons and the offer bars.

Run:  python examples/gui_walkthrough.py
"""

from repro import ProfileManager, QoSManager, make_profile, make_news_article
from repro.client import ClientMachine
from repro.cmfs import MediaServer
from repro.documents import ColorMode, VideoQoS
from repro.metadata import MetadataDatabase
from repro.network import Topology, TransportSystem
from repro.ui import (
    audio_profile_window,
    cost_profile_window,
    information_window,
    main_window,
    profile_component_window,
    video_profile_window,
)


def build_manager():
    document = make_news_article("doc.gui")
    database = MetadataDatabase()
    database.insert_document(document)
    topology = Topology()
    topology.connect("client-net", "backbone", 100e6)
    topology.connect("backbone", "server-a-net", 155e6)
    topology.connect("backbone", "server-b-net", 155e6)
    servers = {
        server.server_id: server
        for server in (MediaServer("server-a"), MediaServer("server-b"))
    }
    manager = QoSManager(
        database=database,
        transport=TransportSystem(topology),
        servers=servers,
    )
    return document, manager


def main() -> None:
    document, manager = build_manager()
    profiles = ProfileManager()
    client = ClientMachine("alice", access_point="client-net")

    print("1. The main window (Play with QoS pressed):\n")
    print(main_window(profiles))

    profile = profiles.get("balanced")
    print("\n2. Double-click 'balanced' -> profile component window:\n")
    print(profile_component_window(profile))

    print("\n3. Double-click the video profile -> editor window:\n")
    print(video_profile_window(profile))
    print()
    print(audio_profile_window(profile))
    print()
    print(cost_profile_window(profile))

    print("\n4. OK pressed -> negotiation runs -> information window:\n")
    result = manager.negotiate(document.document_id, profile, client)
    print(information_window(result))

    print("\n5. A profile the deployment cannot satisfy (super-color")
    print("   HDTV video): the component window activates the violated")
    print("   constraint buttons and the editor shows the offer bars:\n")
    greedy = make_profile(
        "greedy",
        desired_video=VideoQoS(
            color=ColorMode.SUPER_COLOR, frame_rate=60, resolution=1080
        ),
        worst_video=VideoQoS(
            color=ColorMode.SUPER_COLOR, frame_rate=50, resolution=1080
        ),
        max_cost=50.0,
    )
    result2 = manager.negotiate(document.document_id, greedy, client)
    violated = set()
    if result2.user_offer is not None:
        violated = set(greedy.worst.qos_violations(result2.user_offer))
    print(profile_component_window(greedy, violated_media=violated))
    print()
    print(video_profile_window(greedy, offer=result2.user_offer))
    print()
    print(information_window(result2))


if __name__ == "__main__":
    main()
